//! Protocol safety: every committed history a scheduler produces must lie
//! in its claimed class, verified with the offline Definition-level
//! checkers from `relser-core` on random and scenario workloads.
//!
//! This is the load-bearing test file of the protocols crate: it ties the
//! online schedulers back to the paper's theory.

use proptest::prelude::*;
use relser_protocols::altruistic::AltruisticLocking;
use relser_protocols::compat::CompatSet2Pl;
use relser_protocols::driver::{run, RunConfig};
use relser_protocols::rsg_sgt::RsgSgt;
#[cfg(feature = "oracle")]
use relser_protocols::rsg_sgt::RsgSgtOracle;
use relser_protocols::sgt::ConflictSgt;
use relser_protocols::two_pl::TwoPhaseLocking;
use relser_protocols::unit_locking::UnitLocking;
use relser_protocols::Scheduler;

use relser_core::classes::is_relatively_serializable;
use relser_core::sg::is_conflict_serializable;
use relser_core::spec::AtomicitySpec;
use relser_core::spec_builders::compatibility_sets;
use relser_core::txn::TxnSet;
use relser_workload::{random_spec, random_txns, RandomConfig};

fn workload(seed: u64) -> TxnSet {
    let cfg = RandomConfig {
        txns: 5,
        ops_per_txn: (2, 4),
        objects: 4,
        theta: 0.6,
        write_ratio: 0.5,
    };
    random_txns(&cfg, seed)
}

fn drive(txns: &TxnSet, scheduler: &mut dyn Scheduler, seed: u64) -> relser_core::Schedule {
    let cfg = RunConfig {
        seed,
        max_steps: 2_000_000,
    };
    run(txns, scheduler, &cfg)
        .unwrap_or_else(|e| panic!("{} livelocked: {e}", scheduler.name()))
        .history
}

proptest! {
    // Default case count (256, or $PROPTEST_CASES) — these drivers are
    // fast and the safety properties deserve the coverage: they caught
    // three real protocol soundness bugs during development.
    #![proptest_config(ProptestConfig::default())]

    /// Strict 2PL histories are conflict serializable.
    #[test]
    fn two_pl_histories_are_csr(wl_seed in 0u64..1000, run_seed in 0u64..1000) {
        let txns = workload(wl_seed);
        let h = drive(&txns, &mut TwoPhaseLocking::new(&txns), run_seed);
        prop_assert!(is_conflict_serializable(&txns, &h), "{}", h.display(&txns));
    }

    /// Conflict-SGT histories are conflict serializable.
    #[test]
    fn sgt_histories_are_csr(wl_seed in 0u64..1000, run_seed in 0u64..1000) {
        let txns = workload(wl_seed);
        let h = drive(&txns, &mut ConflictSgt::new(&txns), run_seed);
        prop_assert!(is_conflict_serializable(&txns, &h), "{}", h.display(&txns));
    }

    /// Altruistic-locking histories are conflict serializable even with
    /// donations and wakes in play.
    #[test]
    fn altruistic_histories_are_csr(wl_seed in 0u64..1000, run_seed in 0u64..1000) {
        let txns = workload(wl_seed);
        let h = drive(&txns, &mut AltruisticLocking::new(&txns), run_seed);
        prop_assert!(is_conflict_serializable(&txns, &h), "{}", h.display(&txns));
    }

    /// The spec-aware altruistic variant is still conflict serializable
    /// (it donates strictly later than the classic variant), hence also
    /// relatively serializable under its spec.
    #[test]
    fn spec_altruistic_histories_are_csr(
        wl_seed in 0u64..1000, spec_seed in 0u64..1000, run_seed in 0u64..1000
    ) {
        let txns = workload(wl_seed);
        let spec = random_spec(&txns, 0.5, spec_seed);
        let h = drive(&txns, &mut AltruisticLocking::with_spec(&txns, &spec), run_seed);
        prop_assert!(is_conflict_serializable(&txns, &h), "{}", h.display(&txns));
        prop_assert!(is_relatively_serializable(&txns, &h, &spec));
    }

    /// RSG-SGT histories are relatively serializable under the spec the
    /// scheduler was configured with (the paper's protocol claim).
    #[test]
    fn rsg_sgt_histories_are_relatively_serializable(
        wl_seed in 0u64..1000, spec_seed in 0u64..1000, run_seed in 0u64..1000
    ) {
        let txns = workload(wl_seed);
        let spec = random_spec(&txns, 0.5, spec_seed);
        let h = drive(&txns, &mut RsgSgt::new(&txns, &spec), run_seed);
        prop_assert!(
            is_relatively_serializable(&txns, &h, &spec),
            "{}", h.display(&txns)
        );
    }

    /// Compatibility-set 2PL histories are relatively serializable under
    /// the corresponding compatibility-set specification.
    #[test]
    fn compat_2pl_histories_are_relatively_serializable(
        wl_seed in 0u64..1000, run_seed in 0u64..1000, split in 1usize..4
    ) {
        let txns = workload(wl_seed);
        let groups: Vec<usize> = (0..txns.len()).map(|t| t % split.max(1)).collect();
        let spec = compatibility_sets(&txns, &groups).unwrap();
        let h = drive(&txns, &mut CompatSet2Pl::new(&txns, &groups), run_seed);
        prop_assert!(
            is_relatively_serializable(&txns, &h, &spec),
            "groups {groups:?}: {}", h.display(&txns)
        );
    }

    /// Unit-locking histories are relatively serializable under the
    /// driving specification.
    #[test]
    fn unit_locking_histories_are_relatively_serializable(
        wl_seed in 0u64..1000, spec_seed in 0u64..1000, run_seed in 0u64..1000
    ) {
        let txns = workload(wl_seed);
        let spec = random_spec(&txns, 0.5, spec_seed);
        let h = drive(&txns, &mut UnitLocking::new(&txns, &spec), run_seed);
        prop_assert!(
            is_relatively_serializable(&txns, &h, &spec),
            "{}", h.display(&txns)
        );
    }

    /// The retained full-rebuild oracle is equally safe (it is the
    /// reference the incremental engine is compared against).
    #[cfg(feature = "oracle")]
    #[test]
    fn rsg_sgt_oracle_histories_are_relatively_serializable(
        wl_seed in 0u64..1000, spec_seed in 0u64..1000, run_seed in 0u64..1000
    ) {
        let txns = workload(wl_seed);
        let spec = random_spec(&txns, 0.5, spec_seed);
        let h = drive(&txns, &mut RsgSgtOracle::new(&txns, &spec), run_seed);
        prop_assert!(
            is_relatively_serializable(&txns, &h, &spec),
            "{}", h.display(&txns)
        );
    }

    /// Incremental and rebuild formulations produce the *same committed
    /// history* under the same driver seed (decision-for-decision
    /// equivalence, end to end). The heavier 1,000-case equivalence suite
    /// lives in `tests/incremental_equivalence.rs`.
    #[cfg(feature = "oracle")]
    #[test]
    fn rsg_sgt_formulations_agree_end_to_end(
        wl_seed in 0u64..1000, spec_seed in 0u64..1000, run_seed in 0u64..1000
    ) {
        let txns = workload(wl_seed);
        let spec = random_spec(&txns, 0.5, spec_seed);
        let a = drive(&txns, &mut RsgSgt::new(&txns, &spec), run_seed);
        let b = drive(&txns, &mut RsgSgtOracle::new(&txns, &spec), run_seed);
        prop_assert_eq!(a.ops(), b.ops());
    }

    /// Under the absolute spec, RSG-SGT accepts exactly like conflict
    /// serializability demands — its histories are CSR.
    #[test]
    fn rsg_sgt_under_absolute_spec_matches_csr(
        wl_seed in 0u64..1000, run_seed in 0u64..1000
    ) {
        let txns = workload(wl_seed);
        let spec = AtomicitySpec::absolute(&txns);
        let h = drive(&txns, &mut RsgSgt::new(&txns, &spec), run_seed);
        prop_assert!(is_conflict_serializable(&txns, &h), "{}", h.display(&txns));
    }
}

/// Scenario smoke tests: the three motivating workloads all complete
/// under the spec-aware protocols and verify offline.
#[test]
fn scenario_workloads_complete_and_verify() {
    // Banking.
    let sc = relser_workload::banking::banking(&Default::default(), 7);
    for seed in [1u64, 2, 3] {
        let h = drive(&sc.txns, &mut RsgSgt::new(&sc.txns, &sc.spec), seed);
        assert!(is_relatively_serializable(&sc.txns, &h, &sc.spec));
        let h2 = drive(&sc.txns, &mut UnitLocking::new(&sc.txns, &sc.spec), seed);
        assert!(is_relatively_serializable(&sc.txns, &h2, &sc.spec));
    }
    // CAD.
    let sc = relser_workload::cad::cad(&Default::default(), 8);
    for seed in [1u64, 2] {
        let h = drive(&sc.txns, &mut RsgSgt::new(&sc.txns, &sc.spec), seed);
        assert!(is_relatively_serializable(&sc.txns, &h, &sc.spec));
    }
    // Long-lived.
    let sc = relser_workload::longlived::long_lived(&Default::default(), 9);
    for seed in [1u64, 2] {
        let h = drive(&sc.txns, &mut UnitLocking::new(&sc.txns, &sc.spec), seed);
        assert!(is_relatively_serializable(&sc.txns, &h, &sc.spec));
        let h2 = drive(&sc.txns, &mut AltruisticLocking::new(&sc.txns), seed);
        assert!(is_conflict_serializable(&sc.txns, &h2));
    }
}

/// The concurrency claim, measured: on a long-lived workload the
/// spec-aware protocols block less than strict 2PL for the same seeds.
#[test]
fn spec_aware_protocols_block_less_on_long_lived_workloads() {
    let sc = relser_workload::longlived::long_lived(&Default::default(), 11);
    let mut blocked_2pl = 0u64;
    let mut blocked_unit = 0u64;
    for seed in 0..20u64 {
        let cfg = RunConfig {
            seed,
            max_steps: 2_000_000,
        };
        blocked_2pl += run(&sc.txns, &mut TwoPhaseLocking::new(&sc.txns), &cfg)
            .unwrap()
            .blocked;
        blocked_unit += run(&sc.txns, &mut UnitLocking::new(&sc.txns, &sc.spec), &cfg)
            .unwrap()
            .blocked;
    }
    assert!(
        blocked_unit < blocked_2pl,
        "unit locking blocked {blocked_unit} vs 2PL {blocked_2pl}"
    );
}
