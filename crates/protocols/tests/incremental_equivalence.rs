//! Satellite property suite for the incremental RSG maintenance engine:
//! on ≥ 1,000 randomized workloads, the incremental [`RsgSgt`] makes
//! **byte-identical** per-request decisions to the retained full-rebuild
//! [`RsgSgtOracle`] — through grants, rejections, aborts, restarts,
//! commits, **and arena compactions interleaved at pseudo-random points**
//! — and every committed history passes the offline
//! `Rsg::build(..).is_acyclic()` checker (Theorem 1).
#![cfg(feature = "oracle")]

use proptest::prelude::*;
use relser_core::ids::{OpId, TxnId};
use relser_core::rsg::Rsg;
use relser_core::schedule::Schedule;
use relser_protocols::rsg_sgt::{RsgSgt, RsgSgtOracle};
use relser_protocols::{Decision, Scheduler};
use relser_workload::{random_spec, random_txns, RandomConfig};

proptest! {
    // The ISSUE acceptance bar: ≥ 1,000 randomized workloads.
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Lockstep feed: both formulations see the same pseudo-random
    /// request stream (restarting aborted transactions from scratch) and
    /// must agree on every single decision and on the admitted prefix
    /// after every step.
    #[test]
    fn decisions_are_byte_identical_and_histories_verify(
        wl_seed in 0u64..100_000,
        spec_seed in 0u64..100_000,
        feed_seed in 0u64..100_000,
        n_txns in 2usize..6,
        objects in 2usize..5,
        write_pct in 0u32..=100,
        // Force a compaction roughly every `compact_every` steps (0 off);
        // the oracle has no arena, so decisions must stay identical.
        compact_every in 0usize..6,
    ) {
        let cfg = RandomConfig {
            txns: n_txns,
            ops_per_txn: (1, 4),
            objects,
            theta: 0.5,
            write_ratio: write_pct as f64 / 100.0,
        };
        let txns = random_txns(&cfg, wl_seed);
        let spec = random_spec(&txns, 0.5, spec_seed);

        let mut oracle = RsgSgtOracle::new(&txns, &spec);
        let mut inc = RsgSgt::new(&txns, &spec);
        let n = txns.len();
        let mut cursor = vec![0u32; n];
        let mut done = vec![false; n];
        for t in 0..n as u32 {
            oracle.begin(TxnId(t));
            inc.begin(TxnId(t));
        }
        let mut state = feed_seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut steps = 0;
        while done.iter().any(|d| !d) && steps < 2000 {
            steps += 1;
            if compact_every > 0 && steps % compact_every == 0 {
                inc.force_compact();
            }
            let mut t = (next() as usize) % n;
            while done[t] {
                t = (t + 1) % n;
            }
            let op = OpId::new(TxnId(t as u32), cursor[t]);
            let a = oracle.request(op);
            let b = inc.request(op);
            prop_assert_eq!(&a, &b, "decision divergence at {:?}", op);
            match a {
                Decision::Granted => {
                    cursor[t] += 1;
                    if cursor[t] as usize == txns.txn(TxnId(t as u32)).len() {
                        oracle.commit(TxnId(t as u32));
                        inc.commit(TxnId(t as u32));
                        done[t] = true;
                    }
                }
                Decision::Aborted(_) => {
                    oracle.abort(TxnId(t as u32));
                    inc.abort(TxnId(t as u32));
                    cursor[t] = 0;
                    oracle.begin(TxnId(t as u32));
                    inc.begin(TxnId(t as u32));
                }
                Decision::Blocked { .. } => unreachable!("RSG-SGT never blocks"),
            }
            prop_assert_eq!(oracle.admitted(), inc.admitted(), "prefix divergence");
        }
        prop_assert!(done.iter().all(|d| *d), "lockstep feed livelocked");

        // The committed history satisfies Theorem 1 offline.
        let history = Schedule::new(&txns, inc.admitted().to_vec())
            .expect("committed prefix is a complete schedule");
        prop_assert!(
            Rsg::build(&txns, &history, &spec).is_acyclic(),
            "history not relatively serializable: {}",
            history.display(&txns)
        );
    }
}
