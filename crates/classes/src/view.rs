//! View equivalence and view serializability.
//!
//! §5 of the paper draws the historical analogy: view serializability was
//! the intuitive-but-intractable class of the traditional theory, and
//! conflict serializability the tractable restriction — just as relative
//! consistency is intractable and relative serializability its tractable
//! superset. This module makes the analogy measurable: view
//! serializability is decided by brute force over serial schedules
//! (NP-hard in general).

use relser_core::ids::OpId;
use relser_core::schedule::Schedule;
use relser_core::txn::TxnSet;

/// The reads-from relation plus final writes of one schedule: the "view".
///
/// `reads_from[k]` pairs the k-th read (in schedule order) with the write
/// it reads from (`None` = initial database state); `final_writes[o]` is
/// the last write of each object (`None` if never written).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct View {
    reads_from: Vec<(OpId, Option<OpId>)>,
    final_writes: Vec<Option<OpId>>,
}

/// Computes the view of `schedule`.
pub fn view(txns: &TxnSet, schedule: &Schedule) -> View {
    let num_objects = txns.objects().len();
    let mut last_write: Vec<Option<OpId>> = vec![None; num_objects];
    let mut reads_from = Vec::new();
    for &op_id in schedule.ops() {
        let op = txns.op(op_id).expect("validated schedule");
        if op.is_write() {
            last_write[op.object.index()] = Some(op_id);
        } else {
            reads_from.push((op_id, last_write[op.object.index()]));
        }
    }
    // Reads are collected in schedule order; normalize by (txn, index) so
    // two schedules over the same TxnSet compare structurally.
    reads_from.sort_by_key(|&(r, _)| (r.txn, r.index));
    View {
        reads_from,
        final_writes: last_write,
    }
}

/// Are the schedules view-equivalent (same reads-from and final writes)?
pub fn view_equivalent(txns: &TxnSet, a: &Schedule, b: &Schedule) -> bool {
    view(txns, a) == view(txns, b)
}

/// Is `schedule` view-equivalent to some *serial* schedule? Brute force
/// over all `n!` serial orders.
pub fn is_view_serializable(txns: &TxnSet, schedule: &Schedule) -> bool {
    let target = view(txns, schedule);
    crate::enumerate::all_serial_schedules(txns)
        .iter()
        .any(|s| view(txns, s) == target)
}

/// **Relative view serializability** — the footnote-1 direction: instead
/// of relaxing the correct class (as the paper does), strengthen the
/// equivalence from conflict to *view* equivalence over the same correct
/// class. `S` is relatively view serializable iff some schedule
/// view-equivalent to `S` is relatively serial (Definition 2).
///
/// Brute force over the whole universe — exponential, small universes
/// only. Since conflict equivalence implies view equivalence, this class
/// contains relative serializability; the tests exhibit the strictness of
/// that containment (blind writes).
pub fn is_relatively_view_serializable(
    txns: &TxnSet,
    schedule: &Schedule,
    spec: &relser_core::spec::AtomicitySpec,
) -> bool {
    let target = view(txns, schedule);
    let mut found = false;
    crate::enumerate::for_each_schedule(txns, |c| {
        if view(txns, c) == target && relser_core::classes::is_relatively_serial(txns, c, spec) {
            found = true;
            return false;
        }
        true
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use relser_core::sg::is_conflict_serializable;

    #[test]
    fn identical_schedules_are_view_equivalent() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x]"]).unwrap();
        let s = txns.parse_schedule("r1[x] r2[x] w1[x]").unwrap();
        assert!(view_equivalent(&txns, &s, &s));
    }

    #[test]
    fn reads_from_distinguishes_schedules() {
        let txns = TxnSet::parse(&["w1[x]", "r2[x]"]).unwrap();
        let a = txns.parse_schedule("w1[x] r2[x]").unwrap(); // reads T1
        let b = txns.parse_schedule("r2[x] w1[x]").unwrap(); // reads initial
        assert!(!view_equivalent(&txns, &a, &b));
        // Both are serial, hence view serializable.
        assert!(is_view_serializable(&txns, &a));
        assert!(is_view_serializable(&txns, &b));
    }

    #[test]
    fn conflict_serializable_implies_view_serializable() {
        // Exhaustive on a small universe.
        let txns = TxnSet::parse(&["r1[x] w1[x]", "w2[x] r2[y]", "w3[y]"]).unwrap();
        crate::enumerate::for_each_schedule(&txns, |s| {
            if is_conflict_serializable(&txns, s) {
                assert!(is_view_serializable(&txns, s), "{}", s.display(&txns));
            }
            true
        });
    }

    #[test]
    fn blind_writes_view_but_not_conflict_serializable() {
        // The textbook separation: blind writes.
        // T1 = r1[x] w1[x], T2 = w2[x], T3 = w3[x].
        // S = r1[x] w2[x] w1[x] w3[x] is view-equivalent to T1 T2 T3
        // (all reads from initial, final write w3[x]) but its SG is cyclic.
        let txns = TxnSet::parse(&["r1[x] w1[x]", "w2[x]", "w3[x]"]).unwrap();
        let s = txns.parse_schedule("r1[x] w2[x] w1[x] w3[x]").unwrap();
        assert!(!is_conflict_serializable(&txns, &s));
        assert!(is_view_serializable(&txns, &s));
    }

    #[test]
    fn lost_update_is_not_view_serializable() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let s = txns.parse_schedule("r1[x] r2[x] w1[x] w2[x]").unwrap();
        assert!(!is_view_serializable(&txns, &s));
    }

    #[test]
    fn final_write_matters() {
        let txns = TxnSet::parse(&["w1[x]", "w2[x]"]).unwrap();
        let a = txns.parse_schedule("w1[x] w2[x]").unwrap();
        let b = txns.parse_schedule("w2[x] w1[x]").unwrap();
        assert!(!view_equivalent(&txns, &a, &b));
    }

    #[test]
    fn relative_view_serializability_contains_relative_serializability() {
        // Conflict equivalence implies view equivalence, so every
        // RSG-accepted schedule is also relatively view serializable.
        // Exhaustive over the Figure 2 universe (30 schedules).
        let fig = relser_core::paper::Figure2::new();
        crate::enumerate::for_each_schedule(&fig.txns, |s| {
            if relser_core::classes::is_relatively_serializable(&fig.txns, s, &fig.spec) {
                assert!(
                    is_relatively_view_serializable(&fig.txns, s, &fig.spec),
                    "{}",
                    s.display(&fig.txns)
                );
            }
            true
        });
    }

    #[test]
    fn blind_writes_separate_the_view_variant() {
        // Under absolute atomicity, relatively view serializable =
        // view serializable (relatively serial ⊇ serial and view-equiv
        // closure) — and the blind-writes schedule separates it from the
        // conflict-based class.
        let txns = TxnSet::parse(&["r1[x] w1[x]", "w2[x]", "w3[x]"]).unwrap();
        let spec = relser_core::spec::AtomicitySpec::absolute(&txns);
        let s = txns.parse_schedule("r1[x] w2[x] w1[x] w3[x]").unwrap();
        assert!(!relser_core::classes::is_relatively_serializable(
            &txns, &s, &spec
        ));
        assert!(is_relatively_view_serializable(&txns, &s, &spec));
    }

    #[test]
    fn relative_view_class_grows_with_looser_specs() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let s = txns.parse_schedule("r1[x] r2[x] w1[x] w2[x]").unwrap();
        let absolute = relser_core::spec::AtomicitySpec::absolute(&txns);
        assert!(!is_relatively_view_serializable(&txns, &s, &absolute));
        let free = relser_core::spec::AtomicitySpec::free(&txns);
        assert!(is_relatively_view_serializable(&txns, &s, &free));
    }

    #[test]
    fn view_of_write_only_schedule_has_no_reads() {
        let txns = TxnSet::parse(&["w1[x]", "w2[y]"]).unwrap();
        let s = txns.parse_schedule("w1[x] w2[y]").unwrap();
        let v = view(&txns, &s);
        assert!(v.reads_from.is_empty());
        assert_eq!(v.final_writes.len(), 2);
    }
}
