//! Transaction chopping \[SSV92\] — the related-work baseline the paper's
//! §4 cites: "Shasha et al. have proposed a chopping graph to refine user
//! transactions such that only the smaller units of the transactions
//! instead of the entire one need to be executed using strict two phase
//! locking."
//!
//! A *chopping* splits each transaction into consecutive pieces — in our
//! terms, a **uniform** atomicity specification (the same breakpoints
//! toward every observer). The chopping is *correct* iff the **chopping
//! graph** — pieces as vertices, C-edges between conflicting pieces of
//! different transactions, S-edges between sibling pieces — has no
//! **SC-cycle** (a cycle with at least one S- and one C-edge). The
//! standard linear-time test: no two pieces of the same transaction may
//! share a connected component of the C-edge subgraph.
//!
//! The bridge to the paper's theory, verified exhaustively in the tests:
//! for a correct chopping, every schedule that keeps each piece atomic
//! (i.e. is *relatively atomic* under the uniform specification) is
//! conflict serializable — chopping is the uniform, serializability-
//! preserving special case of relative atomicity.

use relser_core::error::{Error, Result};
use relser_core::ids::TxnId;
use relser_core::spec::AtomicitySpec;
use relser_core::txn::TxnSet;

/// A chopping: per-transaction breakpoints (uniform across observers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chopping {
    /// `breaks[t]` = strictly increasing breakpoints in `1..len(T_t)`.
    pub breaks: Vec<Vec<u32>>,
}

impl Chopping {
    /// The trivial chopping: every transaction is one piece.
    pub fn unchopped(txns: &TxnSet) -> Self {
        Chopping {
            breaks: vec![Vec::new(); txns.len()],
        }
    }

    /// Builds and validates a chopping.
    pub fn new(txns: &TxnSet, breaks: Vec<Vec<u32>>) -> Result<Self> {
        if breaks.len() != txns.len() {
            return Err(Error::BadSpec(format!(
                "chopping has {} entries for {} transactions",
                breaks.len(),
                txns.len()
            )));
        }
        for (t, b) in breaks.iter().enumerate() {
            let len = txns.txn(TxnId(t as u32)).len() as u32;
            for w in b.windows(2) {
                if w[0] >= w[1] {
                    return Err(Error::BadSpec(format!(
                        "chopping of T{} is not strictly increasing",
                        t + 1
                    )));
                }
            }
            if b.iter().any(|&x| x == 0 || x >= len) {
                return Err(Error::BadSpec(format!(
                    "chopping of T{} has out-of-range breakpoints",
                    t + 1
                )));
            }
        }
        Ok(Chopping { breaks })
    }

    /// Number of pieces of transaction `t`.
    pub fn piece_count(&self, t: TxnId) -> usize {
        self.breaks[t.index()].len() + 1
    }

    /// The piece index containing operation index `j` of transaction `t`.
    pub fn piece_of(&self, t: TxnId, j: u32) -> usize {
        self.breaks[t.index()].partition_point(|&b| b <= j)
    }

    /// Lowers the chopping to the equivalent *uniform* relative atomicity
    /// specification (the same units toward every observer).
    pub fn to_spec(&self, txns: &TxnSet) -> AtomicitySpec {
        let mut spec = AtomicitySpec::absolute(txns);
        for i in txns.txn_ids() {
            for j in txns.txn_ids() {
                if i != j {
                    spec.set_breakpoints(i, j, &self.breaks[i.index()])
                        .expect("validated chopping breakpoints");
                }
            }
        }
        spec
    }
}

/// Is the chopping correct per \[SSV92\] — i.e. is the chopping graph free
/// of SC-cycles?
///
/// ```
/// use relser_core::txn::TxnSet;
/// use relser_classes::chopping::{is_correct_chopping, Chopping};
/// let txns = TxnSet::parse(&["w1[x] w1[y]", "r2[x] r2[y]"]).unwrap();
/// // Splitting T1 lets T2 observe x and y inconsistently: SC-cycle.
/// let bad = Chopping::new(&txns, vec![vec![1], vec![]]).unwrap();
/// assert!(!is_correct_chopping(&txns, &bad));
/// assert!(is_correct_chopping(&txns, &Chopping::unchopped(&txns)));
/// ```
///
/// Uses the standard characterization: union the pieces along C-edges
/// (conflicting pieces of different transactions); the chopping is correct
/// iff no two pieces of one transaction land in the same C-component.
pub fn is_correct_chopping(txns: &TxnSet, chopping: &Chopping) -> bool {
    // Enumerate pieces with global ids.
    let mut piece_base = Vec::with_capacity(txns.len());
    let mut total = 0usize;
    for t in txns.txn_ids() {
        piece_base.push(total);
        total += chopping.piece_count(t);
    }
    let mut uf = UnionFind::new(total);

    // C-edges: conflicting operations of different transactions.
    for a in txns.txn_ids() {
        for b in txns.txn_ids() {
            if b.0 <= a.0 {
                continue;
            }
            for (ja, opa) in txns.txn(a).ops().iter().enumerate() {
                for (jb, opb) in txns.txn(b).ops().iter().enumerate() {
                    if opa.conflicts_with(*opb) {
                        let pa = piece_base[a.index()] + chopping.piece_of(a, ja as u32);
                        let pb = piece_base[b.index()] + chopping.piece_of(b, jb as u32);
                        uf.union(pa, pb);
                    }
                }
            }
        }
    }

    // Correct iff no two pieces of one transaction share a C-component.
    for t in txns.txn_ids() {
        let base = piece_base[t.index()];
        let k = chopping.piece_count(t);
        for p in 0..k {
            for q in p + 1..k {
                if uf.find(base + p) == uf.find(base + q) {
                    return false;
                }
            }
        }
    }
    true
}

/// The finest correct chopping obtainable by greedily splitting each
/// transaction at every point that keeps the chopping correct (a simple
/// baseline refinement, not necessarily globally optimal).
pub fn greedy_finest_chopping(txns: &TxnSet) -> Chopping {
    let mut chopping = Chopping::unchopped(txns);
    loop {
        let mut improved = false;
        for t in txns.txn_ids() {
            let len = txns.txn(t).len() as u32;
            for b in 1..len {
                if chopping.breaks[t.index()].contains(&b) {
                    continue;
                }
                let mut candidate = chopping.clone();
                let row = &mut candidate.breaks[t.index()];
                row.push(b);
                row.sort_unstable();
                if is_correct_chopping(txns, &candidate) {
                    chopping = candidate;
                    improved = true;
                }
            }
        }
        if !improved {
            return chopping;
        }
    }
}

/// Minimal union-find.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relser_core::classes::is_relatively_atomic;
    use relser_core::sg::is_conflict_serializable;

    #[test]
    fn unchopped_is_always_correct() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        assert!(is_correct_chopping(&txns, &Chopping::unchopped(&txns)));
    }

    #[test]
    fn textbook_incorrect_chopping() {
        // T1 = r1[x] w1[y], T2 reads both x and y: chopping T1 lets T2 see
        // x and y in inconsistent versions — two pieces of T1 share a
        // C-component through T2's pieces... with T2 unchopped: piece(T2)
        // conflicts with both pieces of T1 → same C-component → SC-cycle.
        let txns = TxnSet::parse(&["w1[x] w1[y]", "r2[x] r2[y]"]).unwrap();
        let bad = Chopping::new(&txns, vec![vec![1], vec![]]).unwrap();
        assert!(!is_correct_chopping(&txns, &bad));
    }

    #[test]
    fn disjoint_tail_makes_chopping_correct() {
        // T1's second piece touches an object nobody else uses: safe.
        let txns = TxnSet::parse(&["w1[x] w1[z]", "r2[x] r2[y]"]).unwrap();
        let good = Chopping::new(&txns, vec![vec![1], vec![]]).unwrap();
        assert!(is_correct_chopping(&txns, &good));
    }

    #[test]
    fn validation_rejects_bad_breakpoints() {
        let txns = TxnSet::parse(&["w1[x] w1[y]"]).unwrap();
        assert!(Chopping::new(&txns, vec![vec![0]]).is_err());
        assert!(Chopping::new(&txns, vec![vec![2]]).is_err());
        assert!(Chopping::new(&txns, vec![vec![1, 1]]).is_err());
        assert!(Chopping::new(&txns, vec![]).is_err());
        assert!(Chopping::new(&txns, vec![vec![1]]).is_ok());
    }

    #[test]
    fn piece_of_counts_breakpoints() {
        let txns = TxnSet::parse(&["w1[a] w1[b] w1[c] w1[d]"]).unwrap();
        let c = Chopping::new(&txns, vec![vec![1, 3]]).unwrap();
        assert_eq!(c.piece_count(TxnId(0)), 3);
        assert_eq!(c.piece_of(TxnId(0), 0), 0);
        assert_eq!(c.piece_of(TxnId(0), 1), 1);
        assert_eq!(c.piece_of(TxnId(0), 2), 1);
        assert_eq!(c.piece_of(TxnId(0), 3), 2);
    }

    /// The bridge theorem, checked exhaustively: under a *correct*
    /// chopping's uniform specification, every relatively atomic schedule
    /// is conflict serializable.
    #[test]
    fn correct_chopping_preserves_serializability_exhaustively() {
        let txns = TxnSet::parse(&["w1[x] w1[z]", "r2[x] r2[y]", "w3[y]"]).unwrap();
        let chopping = Chopping::new(&txns, vec![vec![1], vec![], vec![]]).unwrap();
        assert!(is_correct_chopping(&txns, &chopping));
        let spec = chopping.to_spec(&txns);
        crate::enumerate::for_each_schedule(&txns, |s| {
            if is_relatively_atomic(&txns, s, &spec) {
                assert!(
                    is_conflict_serializable(&txns, s),
                    "correct chopping admitted a non-serializable schedule: {}",
                    s.display(&txns)
                );
            }
            true
        });
    }

    /// And the converse failure: an incorrect chopping admits relatively
    /// atomic schedules that are NOT conflict serializable.
    #[test]
    fn incorrect_chopping_admits_non_serializable_schedules() {
        let txns = TxnSet::parse(&["w1[x] w1[y]", "r2[x] r2[y]"]).unwrap();
        let bad = Chopping::new(&txns, vec![vec![1], vec![]]).unwrap();
        assert!(!is_correct_chopping(&txns, &bad));
        let spec = bad.to_spec(&txns);
        let mut witness = None;
        crate::enumerate::for_each_schedule(&txns, |s| {
            if is_relatively_atomic(&txns, s, &spec) && !is_conflict_serializable(&txns, s) {
                witness = Some(s.clone());
                false
            } else {
                true
            }
        });
        let w = witness.expect("an anomaly exists");
        // The classic inconsistent read: w1[x] r2[x] r2[y] w1[y].
        assert!(!is_conflict_serializable(&txns, &w));
    }

    #[test]
    fn greedy_finest_chopping_is_correct_and_maximal_here() {
        // Independent transactions can be chopped to single operations.
        let txns = TxnSet::parse(&["w1[a] w1[b]", "w2[c] w2[d]"]).unwrap();
        let c = greedy_finest_chopping(&txns);
        assert!(is_correct_chopping(&txns, &c));
        assert_eq!(c.piece_count(TxnId(0)), 2);
        assert_eq!(c.piece_count(TxnId(1)), 2);

        // Conflicting reads force coarse pieces.
        let txns2 = TxnSet::parse(&["w1[x] w1[y]", "r2[x] r2[y]"]).unwrap();
        let c2 = greedy_finest_chopping(&txns2);
        assert!(is_correct_chopping(&txns2, &c2));
        // At most one of the two transactions may be chopped.
        assert!(c2.piece_count(TxnId(0)) == 1 || c2.piece_count(TxnId(1)) == 1);
    }
}
