//! Measured reproduction of the paper's Figure 5 — the lattice of schedule
//! classes:
//!
//! ```text
//!   relatively serializable
//!     ⊇ relatively serial            ⊇ relatively consistent
//!       ⊇ relatively atomic   (and)    ⊇ relatively atomic
//! ```
//!
//! [`count_classes`] enumerates every schedule over a (small) universe and
//! counts membership in each class, so the containments — including the
//! paper's headline strictness claims — become measured numbers rather
//! than assertions.

use crate::relatively_consistent::is_relatively_consistent;
use relser_core::classes::{
    is_relatively_atomic, is_relatively_serial, is_relatively_serializable,
};
use relser_core::schedule::Schedule;
use relser_core::sg::is_conflict_serializable;
use relser_core::spec::AtomicitySpec;
use relser_core::txn::TxnSet;

/// Exhaustive class membership counts over all schedules of one universe.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Total number of schedules enumerated.
    pub total: u64,
    /// Serial schedules.
    pub serial: u64,
    /// Conflict-serializable schedules (spec-independent).
    pub conflict_serializable: u64,
    /// Definition 1 (Farrag–Özsu "correct") schedules.
    pub relatively_atomic: u64,
    /// Farrag–Özsu relatively consistent schedules (NP-hard membership).
    pub relatively_consistent: u64,
    /// Definition 2 schedules.
    pub relatively_serial: u64,
    /// Theorem 1 (RSG-acyclic) schedules.
    pub relatively_serializable: u64,
}

impl ClassCounts {
    /// Do the counted sizes respect every containment of Figure 5?
    /// (Necessary, not sufficient — [`count_classes`] also asserts
    /// per-schedule containment.)
    pub fn sizes_consistent(&self) -> bool {
        self.serial <= self.relatively_atomic
            && self.relatively_atomic <= self.relatively_consistent
            && self.relatively_consistent <= self.relatively_serializable
            && self.relatively_atomic <= self.relatively_serial
            && self.relatively_serial <= self.relatively_serializable
            && self.relatively_serializable <= self.total
            && self.serial <= self.conflict_serializable
    }
}

/// Example schedules witnessing the *strictness* of each Figure 5
/// inclusion found during counting (when the universe contains them).
#[derive(Clone, Debug, Default)]
pub struct StrictnessWitnesses {
    /// Relatively atomic but not serial.
    pub atomic_not_serial: Option<Schedule>,
    /// Relatively consistent but not relatively atomic.
    pub consistent_not_atomic: Option<Schedule>,
    /// Relatively serial but not relatively consistent (the paper's
    /// Figure 4 phenomenon).
    pub serial_not_consistent: Option<Schedule>,
    /// Relatively serializable but not relatively serial.
    pub serializable_not_serial: Option<Schedule>,
    /// Relatively serializable but not relatively consistent.
    pub serializable_not_consistent: Option<Schedule>,
}

/// Enumerates every schedule over `txns`, counting class membership and
/// collecting strictness witnesses.
///
/// Panics if any *per-schedule* containment of Figure 5 is violated — the
/// enumeration doubles as a ground-truth consistency check of all
/// checkers.
pub fn count_classes(txns: &TxnSet, spec: &AtomicitySpec) -> (ClassCounts, StrictnessWitnesses) {
    let mut counts = ClassCounts::default();
    let mut witnesses = StrictnessWitnesses::default();
    crate::enumerate::for_each_schedule(txns, |s| {
        let serial = s.is_serial();
        let csr = is_conflict_serializable(txns, s);
        let ra = is_relatively_atomic(txns, s, spec);
        let rc = is_relatively_consistent(txns, s, spec);
        let rs = is_relatively_serial(txns, s, spec);
        let rsr = is_relatively_serializable(txns, s, spec);

        assert!(
            !serial || ra,
            "serial ⊄ relatively atomic: {}",
            s.display(txns)
        );
        assert!(!ra || rc, "atomic ⊄ consistent: {}", s.display(txns));
        assert!(!ra || rs, "atomic ⊄ serial(rel): {}", s.display(txns));
        assert!(!rc || rsr, "consistent ⊄ serializable: {}", s.display(txns));
        assert!(!rs || rsr, "rel-serial ⊄ serializable: {}", s.display(txns));

        counts.total += 1;
        counts.serial += u64::from(serial);
        counts.conflict_serializable += u64::from(csr);
        counts.relatively_atomic += u64::from(ra);
        counts.relatively_consistent += u64::from(rc);
        counts.relatively_serial += u64::from(rs);
        counts.relatively_serializable += u64::from(rsr);

        if ra && !serial && witnesses.atomic_not_serial.is_none() {
            witnesses.atomic_not_serial = Some(s.clone());
        }
        if rc && !ra && witnesses.consistent_not_atomic.is_none() {
            witnesses.consistent_not_atomic = Some(s.clone());
        }
        if rs && !rc && witnesses.serial_not_consistent.is_none() {
            witnesses.serial_not_consistent = Some(s.clone());
        }
        if rsr && !rs && witnesses.serializable_not_serial.is_none() {
            witnesses.serializable_not_serial = Some(s.clone());
        }
        if rsr && !rc && witnesses.serializable_not_consistent.is_none() {
            witnesses.serializable_not_consistent = Some(s.clone());
        }
        true
    });
    assert!(counts.sizes_consistent());
    (counts, witnesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relser_core::paper::{Figure1, Figure4};

    #[test]
    fn figure1_universe_lattice_is_strict() {
        let fig = Figure1::new();
        let (counts, witnesses) = count_classes(&fig.txns, &fig.spec);
        assert_eq!(counts.total, 4200);
        // Strict inclusions measured on the paper's own example universe.
        assert!(counts.serial < counts.relatively_atomic);
        assert!(counts.relatively_atomic < counts.relatively_consistent);
        assert!(counts.relatively_consistent <= counts.relatively_serializable);
        assert!(counts.relatively_serial < counts.relatively_serializable);
        // And the relaxed classes beat plain conflict serializability.
        assert!(counts.relatively_serializable > counts.conflict_serializable);
        assert!(witnesses.atomic_not_serial.is_some());
        assert!(witnesses.consistent_not_atomic.is_some());
        assert!(witnesses.serializable_not_serial.is_some());
    }

    #[test]
    fn figure4_universe_separates_serial_from_consistent() {
        let fig = Figure4::new();
        let (counts, witnesses) = count_classes(&fig.txns, &fig.spec);
        assert!(
            counts.relatively_serial > counts.relatively_consistent
                || witnesses.serial_not_consistent.is_some(),
            "figure 4's universe contains a relatively serial, non-consistent schedule"
        );
        let w = witnesses.serial_not_consistent.expect("witness exists");
        assert!(is_relatively_serial(&fig.txns, &w, &fig.spec));
        assert!(!is_relatively_consistent(&fig.txns, &w, &fig.spec));
    }

    #[test]
    fn absolute_spec_collapses_the_lattice() {
        // Under absolute atomicity: relatively atomic = serial,
        // relatively consistent = relatively serializable = conflict
        // serializable (Lemma 1 + §2 remarks).
        let txns = TxnSet::parse(&["r1[x] w1[x]", "w2[x] r2[y]", "w3[y]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let (counts, _) = count_classes(&txns, &spec);
        assert_eq!(counts.relatively_atomic, counts.serial);
        assert_eq!(counts.relatively_consistent, counts.conflict_serializable);
        assert_eq!(counts.relatively_serializable, counts.conflict_serializable);
    }

    #[test]
    fn free_spec_accepts_all_schedules() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let spec = AtomicitySpec::free(&txns);
        let (counts, _) = count_classes(&txns, &spec);
        assert_eq!(counts.relatively_atomic, counts.total);
        assert_eq!(counts.relatively_serializable, counts.total);
    }
}
