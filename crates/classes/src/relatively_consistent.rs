//! The Farrag–Özsu class: *relatively consistent* schedules.
//!
//! A schedule is **relatively consistent** \[FÖ89\] if it is
//! conflict-equivalent to some **relatively atomic** schedule
//! (Definition 1). Recognizing this class is NP-complete \[KB92\] — this is
//! precisely the complexity the paper's relative-serializability class
//! avoids. The checker here is the natural decision procedure: a memoized
//! depth-first search over the *linear extensions* of the precedence order
//! induced by the schedule (program order ∪ conflict order), looking for
//! one that is relatively atomic.
//!
//! ## Why the search state is small enough to memoize
//!
//! Any prefix of a linear extension is determined, up to feasibility, by
//! the per-transaction cursor vector `(c_1, …, c_n)` (how many operations
//! of each transaction have been emitted): program order forces the emitted
//! operations of `T_i` to be its first `c_i`. Both the conflict-order
//! constraints and the "no foreign operation inside an open atomic unit"
//! constraint of Definition 1 are functions of the cursor vector alone, so
//! the DFS memoizes failed cursor states. The state space is
//! `Π (len_i + 1)` — still exponential in the number of transactions
//! (matching the NP-completeness), but exact.

use relser_core::classes::is_relatively_atomic;
use relser_core::ids::{OpId, TxnId};
use relser_core::schedule::Schedule;
use relser_core::spec::AtomicitySpec;
use relser_core::txn::TxnSet;
use std::collections::HashSet;

/// Outcome statistics of one relatively-consistent search, for the
/// complexity experiments (E8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of DFS states expanded.
    pub states_expanded: u64,
    /// Number of states pruned by memoization.
    pub memo_hits: u64,
}

/// Is `schedule` conflict-equivalent to some relatively atomic schedule?
///
/// ```
/// use relser_core::paper::Figure4;
/// use relser_classes::relatively_consistent::is_relatively_consistent;
/// use relser_core::classes::is_relatively_serial;
/// // The paper's Figure 4 separation: relatively serial, yet not
/// // conflict-equivalent to any relatively atomic schedule.
/// let fig = Figure4::new();
/// assert!(is_relatively_serial(&fig.txns, &fig.s(), &fig.spec));
/// assert!(!is_relatively_consistent(&fig.txns, &fig.s(), &fig.spec));
/// ```
pub fn is_relatively_consistent(txns: &TxnSet, schedule: &Schedule, spec: &AtomicitySpec) -> bool {
    search(txns, schedule, spec).0.is_some()
}

/// Like [`is_relatively_consistent`], returning the witnessing relatively
/// atomic schedule when one exists.
pub fn relatively_consistent_witness(
    txns: &TxnSet,
    schedule: &Schedule,
    spec: &AtomicitySpec,
) -> Option<Schedule> {
    search(txns, schedule, spec).0
}

/// Full search entry point with statistics (used by the benchmarks).
pub fn search(
    txns: &TxnSet,
    schedule: &Schedule,
    spec: &AtomicitySpec,
) -> (Option<Schedule>, SearchStats) {
    let n = txns.len();
    let lens: Vec<u32> = txns.txns().iter().map(|t| t.len() as u32).collect();
    let total = txns.total_ops();

    // Conflict-order predecessors: preds[t][j] lists (t', j') pairs that
    // must be emitted before o_{t,j}.
    let mut preds: Vec<Vec<Vec<(u32, u32)>>> =
        lens.iter().map(|&l| vec![Vec::new(); l as usize]).collect();
    for (a, b) in schedule.conflict_pairs(txns) {
        preds[b.txn.index()][b.index as usize].push((a.txn.0, a.index));
    }

    let mut stats = SearchStats::default();
    let mut failed: HashSet<Vec<u32>> = HashSet::new();
    let mut cursor = vec![0u32; n];
    let mut prefix: Vec<OpId> = Vec::with_capacity(total);

    // An operation o_{t, c_t} is emittable iff:
    //  (a) all conflict predecessors are emitted, and
    //  (b) no *other* transaction has an open atomic unit relative to T_t.
    // A unit of T_i relative to T_t is open iff 0 < c_i < len_i and the
    // last emitted operation (c_i - 1) and the next one (c_i) share a unit.
    fn emittable(
        t: usize,
        cursor: &[u32],
        lens: &[u32],
        preds: &[Vec<Vec<(u32, u32)>>],
        spec: &AtomicitySpec,
    ) -> bool {
        let j = cursor[t];
        for &(pt, pj) in &preds[t][j as usize] {
            if cursor[pt as usize] <= pj {
                return false;
            }
        }
        for (i, &ci) in cursor.iter().enumerate() {
            if i == t || ci == 0 || ci >= lens[i] {
                continue;
            }
            let ti = TxnId(i as u32);
            let tt = TxnId(t as u32);
            if spec.unit_of_index(ti, tt, ci - 1) == spec.unit_of_index(ti, tt, ci) {
                return false; // T_i's unit toward T_t is open
            }
        }
        true
    }

    // Iterative DFS with explicit choice stack.
    let mut choice_stack: Vec<usize> = Vec::with_capacity(total);
    let mut next_try: usize = 0;
    loop {
        if prefix.len() == total {
            let witness = Schedule::new(txns, prefix).expect("search emits valid schedules");
            debug_assert!(witness.conflict_equivalent(schedule, txns));
            debug_assert!(is_relatively_atomic(txns, &witness, spec));
            return (Some(witness), stats);
        }
        let mut advanced = false;
        let mut t = next_try;
        while t < n {
            if cursor[t] < lens[t] && emittable(t, &cursor, &lens, &preds, spec) {
                // Tentatively emit o_{t, cursor[t]}.
                let mut after = cursor.clone();
                after[t] += 1;
                if !failed.contains(&after) {
                    prefix.push(OpId::new(TxnId(t as u32), cursor[t]));
                    cursor[t] += 1;
                    choice_stack.push(t);
                    stats.states_expanded += 1;
                    next_try = 0;
                    advanced = true;
                    break;
                }
                stats.memo_hits += 1;
            }
            t += 1;
        }
        if advanced {
            continue;
        }
        // Dead end: memoize this cursor state and backtrack.
        failed.insert(cursor.clone());
        match choice_stack.pop() {
            None => return (None, stats),
            Some(prev) => {
                prefix.pop();
                cursor[prev] -= 1;
                next_try = prev + 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relser_core::classes::{is_relatively_serial, is_relatively_serializable};
    use relser_core::paper::{Figure1, Figure4};

    #[test]
    fn relatively_atomic_schedules_are_relatively_consistent() {
        let fig = Figure1::new();
        let sra = fig.s_ra();
        assert!(is_relatively_atomic(&fig.txns, &sra, &fig.spec));
        let w = relatively_consistent_witness(&fig.txns, &sra, &fig.spec).unwrap();
        assert!(w.conflict_equivalent(&sra, &fig.txns));
    }

    #[test]
    fn figure1_s2_is_relatively_consistent() {
        // S2 ~ S_rs ~ (rearrangeable into a relatively atomic schedule).
        let fig = Figure1::new();
        let s2 = fig.s_2();
        assert!(is_relatively_consistent(&fig.txns, &s2, &fig.spec));
    }

    /// The paper's Figure 4: S is relatively serial but **not** relatively
    /// consistent — the separating witness for Figure 5's strict inclusion.
    #[test]
    fn figure4_schedule_is_not_relatively_consistent() {
        let fig = Figure4::new();
        let s = fig.s();
        assert!(is_relatively_serial(&fig.txns, &s, &fig.spec));
        assert!(is_relatively_serializable(&fig.txns, &s, &fig.spec));
        assert!(
            !is_relatively_consistent(&fig.txns, &s, &fig.spec),
            "paper: operations of T1 cannot be moved out of the atomic unit of T3"
        );
    }

    #[test]
    fn non_serializable_schedule_is_not_relatively_consistent() {
        // Under absolute atomicity, relatively consistent = conflict
        // serializable; the lost update is neither.
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let s = txns.parse_schedule("r1[x] r2[x] w1[x] w2[x]").unwrap();
        assert!(!is_relatively_consistent(&txns, &s, &spec));
    }

    #[test]
    fn absolute_spec_relatively_consistent_equals_conflict_serializable() {
        // Exhaustive check on a small universe.
        let txns = TxnSet::parse(&["r1[x] w1[x]", "w2[x] r2[y]", "w3[y]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        crate::enumerate::for_each_schedule(&txns, |s| {
            let rc = is_relatively_consistent(&txns, s, &spec);
            let csr = relser_core::sg::is_conflict_serializable(&txns, s);
            assert_eq!(rc, csr, "disagreement on {}", s.display(&txns));
            true
        });
    }

    #[test]
    fn witness_is_always_relatively_atomic_and_equivalent() {
        let fig = Figure1::new();
        let mut checked = 0;
        crate::enumerate::for_each_schedule(&fig.txns, |s| {
            if let Some(w) = relatively_consistent_witness(&fig.txns, s, &fig.spec) {
                assert!(is_relatively_atomic(&fig.txns, &w, &fig.spec));
                assert!(w.conflict_equivalent(s, &fig.txns));
            }
            checked += 1;
            checked < 300 // bounded sample of the 4200 schedules
        });
        assert_eq!(checked, 300);
    }

    #[test]
    fn search_stats_are_populated() {
        let fig = Figure4::new();
        let (witness, stats) = search(&fig.txns, &fig.s(), &fig.spec);
        assert!(witness.is_none());
        assert!(stats.states_expanded > 0);
    }

    #[test]
    fn free_spec_everything_relatively_consistent() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let spec = AtomicitySpec::free(&txns);
        crate::enumerate::for_each_schedule(&txns, |s| {
            assert!(is_relatively_consistent(&txns, s, &spec));
            true
        });
    }
}
