//! # relser-classes — schedule-class analysis
//!
//! The companion crate to [`relser_core`] holding everything that is
//! *intentionally expensive*:
//!
//! * [`enumerate`] — exhaustive enumeration of every schedule
//!   (interleaving) over a transaction set, used as a ground-truth oracle
//!   for the paper's Theorem 1 and Figure 5;
//! * [`relatively_consistent`] — the Farrag–Özsu class: schedules
//!   conflict-equivalent to a **relatively atomic** schedule. Recognizing
//!   this class is NP-complete \[KB92\]; the checker here is a memoized
//!   exponential search over linear extensions, used both as a baseline for
//!   the paper's complexity claim (experiment E8) and to reproduce
//!   Figure 4;
//! * [`view`] — view equivalence and view serializability, the historical
//!   analogue the paper's §5 discussion draws on;
//! * [`lattice`] — measured class counts and containment verification for
//!   the paper's Figure 5;
//! * [`chopping`] — Shasha–Simon–Valduriez transaction chopping \[SSV92\]
//!   (§4 related work): the SC-cycle test, lowering choppings to uniform
//!   relative-atomicity specifications, and the exhaustive bridge check
//!   that correct choppings preserve serializability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chopping;
pub mod enumerate;
pub mod lattice;
pub mod relatively_consistent;
pub mod view;

pub use lattice::{count_classes, ClassCounts};
pub use relatively_consistent::{is_relatively_consistent, relatively_consistent_witness};
pub use view::{is_relatively_view_serializable, is_view_serializable, view_equivalent};
