//! Exhaustive enumeration of all schedules over a transaction set.
//!
//! A schedule is an interleaving of the transactions' operation sequences,
//! so the number of schedules over transactions of lengths `l1..ln` is the
//! multinomial coefficient `(Σl)! / Πl!`. For the paper-sized universes
//! (≤ ~12 operations) this is a few thousand schedules — cheap enough to
//! serve as a ground-truth oracle for Theorem 1 and Figure 5.

use relser_core::ids::{OpId, TxnId};
use relser_core::schedule::Schedule;
use relser_core::txn::TxnSet;

/// Number of schedules over `txns`: the multinomial coefficient.
///
/// Returns `None` on overflow (u128).
pub fn schedule_count(txns: &TxnSet) -> Option<u128> {
    let mut total: u128 = 0;
    let mut result: u128 = 1;
    for t in txns.txns() {
        for k in 1..=t.len() as u128 {
            total += 1;
            // result *= total; result /= k — keep exact by multiplying
            // first (binomial products stay integral at every step).
            result = result.checked_mul(total)?;
            result /= k;
        }
    }
    Some(result)
}

/// Calls `f` with every schedule over `txns`, in lexicographic order of
/// transaction choice sequences. Enumeration stops early if `f` returns
/// `false`.
pub fn for_each_schedule(txns: &TxnSet, mut f: impl FnMut(&Schedule) -> bool) {
    let n = txns.len();
    if n == 0 {
        return;
    }
    let lens: Vec<u32> = txns.txns().iter().map(|t| t.len() as u32).collect();
    let total: usize = txns.total_ops();
    let mut cursor = vec![0u32; n];
    let mut order: Vec<OpId> = Vec::with_capacity(total);
    // DFS over choice sequences.
    let mut stack: Vec<usize> = Vec::with_capacity(total); // chosen txn per level
    let mut next_choice: usize = 0;
    loop {
        if order.len() == total {
            let schedule =
                Schedule::new(txns, order.clone()).expect("enumerated schedules are valid");
            if !f(&schedule) {
                return;
            }
            // Backtrack.
            match stack.pop() {
                None => return,
                Some(t) => {
                    order.pop();
                    cursor[t] -= 1;
                    next_choice = t + 1;
                }
            }
            continue;
        }
        // Find the next transaction with remaining operations.
        let mut t = next_choice;
        while t < n && cursor[t] >= lens[t] {
            t += 1;
        }
        if t == n {
            // Exhausted choices at this level: backtrack.
            match stack.pop() {
                None => return,
                Some(prev) => {
                    order.pop();
                    cursor[prev] -= 1;
                    next_choice = prev + 1;
                }
            }
            continue;
        }
        // Descend with choice t.
        order.push(OpId::new(TxnId(t as u32), cursor[t]));
        cursor[t] += 1;
        stack.push(t);
        next_choice = 0;
    }
}

/// Collects every schedule (use only for small universes).
pub fn all_schedules(txns: &TxnSet) -> Vec<Schedule> {
    let mut out = Vec::new();
    for_each_schedule(txns, |s| {
        out.push(s.clone());
        true
    });
    out
}

/// All schedules conflict-equivalent to `s` (including `s` itself),
/// by filtering the full enumeration. Exponential — small universes only.
///
/// This is the ground-truth machinery behind the Theorem 1 completeness
/// checks: `s` is relatively serializable iff its equivalence class
/// contains a relatively serial member.
pub fn conflict_equivalence_class(txns: &TxnSet, s: &Schedule) -> Vec<Schedule> {
    let mut out = Vec::new();
    for_each_schedule(txns, |c| {
        if c.conflict_equivalent(s, txns) {
            out.push(c.clone());
        }
        true
    });
    out
}

/// All serial schedules (one per permutation of the transactions).
pub fn all_serial_schedules(txns: &TxnSet) -> Vec<Schedule> {
    let n = txns.len();
    let mut perm: Vec<TxnId> = txns.txn_ids().collect();
    let mut out = Vec::new();
    // Heap's algorithm, iterative.
    let mut c = vec![0usize; n];
    out.push(txns.serial_schedule(&perm).expect("valid"));
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            out.push(txns.serial_schedule(&perm).expect("valid"));
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn count_matches_enumeration() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[y] w2[y]", "w3[z]"]).unwrap();
        // 5!/(2!2!1!) = 30.
        assert_eq!(schedule_count(&txns), Some(30));
        let mut n = 0usize;
        for_each_schedule(&txns, |_| {
            n += 1;
            true
        });
        assert_eq!(n, 30);
    }

    #[test]
    fn enumeration_is_duplicate_free_and_valid() {
        let txns = TxnSet::parse(&["r1[x] w1[x] r1[y]", "w2[x] w2[y]"]).unwrap();
        let mut seen = HashSet::new();
        for_each_schedule(&txns, |s| {
            assert!(seen.insert(s.ops().to_vec()), "duplicate schedule");
            true
        });
        assert_eq!(seen.len() as u128, schedule_count(&txns).unwrap());
    }

    #[test]
    fn early_exit_stops_enumeration() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[y] w2[y]"]).unwrap();
        let mut n = 0;
        for_each_schedule(&txns, |_| {
            n += 1;
            n < 3
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn single_transaction_has_one_schedule() {
        let txns = TxnSet::parse(&["r1[x] w1[x] r1[y]"]).unwrap();
        assert_eq!(schedule_count(&txns), Some(1));
        assert_eq!(all_schedules(&txns).len(), 1);
    }

    #[test]
    fn figure1_universe_count() {
        let fig = relser_core::paper::Figure1::new();
        // 10!/(4!·3!·3!) = 4200.
        assert_eq!(schedule_count(&fig.txns), Some(4200));
    }

    #[test]
    fn serial_schedules_are_all_permutations() {
        let txns = TxnSet::parse(&["r1[x]", "r2[x]", "r3[x]"]).unwrap();
        let serials = all_serial_schedules(&txns);
        assert_eq!(serials.len(), 6);
        let unique: HashSet<Vec<OpId>> = serials.iter().map(|s| s.ops().to_vec()).collect();
        assert_eq!(unique.len(), 6);
        assert!(serials.iter().all(Schedule::is_serial));
    }

    #[test]
    fn equivalence_class_contains_self_and_is_symmetric() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[y] w2[y]"]).unwrap();
        let s = txns.parse_schedule("r1[x] r2[y] w1[x] w2[y]").unwrap();
        let class = conflict_equivalence_class(&txns, &s);
        // No conflicts at all: everything is equivalent (6 interleavings
        // of 2+2 ops = 4!/2!2! = 6).
        assert_eq!(class.len(), 6);
        assert!(class.iter().any(|c| c == &s));
        // Every member's class is the same set.
        for c in &class {
            assert_eq!(conflict_equivalence_class(&txns, c).len(), 6);
        }
    }

    #[test]
    fn conflicting_ops_pin_the_class() {
        let txns = TxnSet::parse(&["w1[x]", "w2[x]"]).unwrap();
        let s = txns.parse_schedule("w1[x] w2[x]").unwrap();
        let class = conflict_equivalence_class(&txns, &s);
        assert_eq!(class.len(), 1, "total conflict order admits no freedom");
    }

    #[test]
    fn equivalence_classes_partition_the_universe() {
        let fig = relser_core::paper::Figure2::new();
        let all = all_schedules(&fig.txns);
        let mut covered = 0usize;
        let mut seen: Vec<Vec<relser_core::ids::OpId>> = Vec::new();
        for s in &all {
            if seen.iter().any(|ops| ops == s.ops()) {
                continue;
            }
            let class = conflict_equivalence_class(&fig.txns, s);
            covered += class.len();
            seen.extend(class.iter().map(|c| c.ops().to_vec()));
        }
        assert_eq!(covered, all.len());
    }

    #[test]
    fn first_enumerated_schedule_is_t1_first() {
        let txns = TxnSet::parse(&["r1[x]", "r2[x]"]).unwrap();
        let all = all_schedules(&txns);
        assert_eq!(all[0].display(&txns), "r1[x] r2[x]");
        assert_eq!(all[1].display(&txns), "r2[x] r1[x]");
    }
}
