//! The discrete-event simulation engine: transactions arrive, operations
//! take time, conflicts block or abort, restarts back off — and every
//! committed history is returned as a validated [`Schedule`] so the
//! offline checkers can audit the run.

use crate::clock::EventQueue;
use crate::metrics::{summarize, Metrics};
use crate::store::{execute, Store};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relser_core::ids::{OpId, TxnId};
use relser_core::schedule::Schedule;
use relser_core::txn::TxnSet;
use relser_protocols::{Decision, Scheduler};

/// When transactions enter the system.
#[derive(Clone, Debug)]
pub enum ArrivalPattern {
    /// Everybody at tick 0 (closed system, maximal contention).
    AllAtZero,
    /// Transaction `k` arrives at `k * gap`.
    EvenlySpaced {
        /// Ticks between consecutive arrivals.
        gap: u64,
    },
    /// Exponential inter-arrival times with the given mean (seeded by the
    /// simulation seed).
    Poisson {
        /// Mean inter-arrival gap in ticks.
        mean_gap: u64,
    },
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Arrival process.
    pub arrival: ArrivalPattern,
    /// Base service time per operation, in ticks.
    pub service_base: u64,
    /// Uniform extra service jitter in `0..=service_jitter` ticks.
    pub service_jitter: u64,
    /// Backoff before an aborted transaction restarts.
    pub restart_backoff: u64,
    /// Seed for jitter, arrivals, and wake ordering.
    pub seed: u64,
    /// Hard event cap (livelock guard).
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            arrival: ArrivalPattern::AllAtZero,
            service_base: 10,
            service_jitter: 3,
            restart_backoff: 25,
            seed: 1,
            max_events: 2_000_000,
        }
    }
}

/// The outcome of a completed simulation.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Aggregate timing metrics.
    pub metrics: Metrics,
    /// The committed history, validated against the transaction set.
    pub history: Schedule,
    /// Final object-store state after executing the history.
    pub final_store: Store,
}

#[derive(Clone, Debug)]
enum Event {
    Arrive(TxnId),
    OpDone(TxnId, u32),
    Retry(TxnId, u32),
}

/// Simulation failure: the event budget ran out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventLimitExceeded {
    /// The configured budget that was exhausted.
    pub max_events: u64,
}

impl std::fmt::Display for EventLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation exceeded {} events", self.max_events)
    }
}

impl std::error::Error for EventLimitExceeded {}

/// Runs all transactions of `txns` to commit under `scheduler`.
///
/// ```
/// use relser_core::paper::Figure1;
/// use relser_protocols::rsg_sgt::RsgSgt;
/// use relser_simdb::{simulate, SimConfig};
/// let fig = Figure1::new();
/// let mut sched = RsgSgt::new(&fig.txns, &fig.spec);
/// let report = simulate(&fig.txns, &mut sched, &SimConfig::default()).unwrap();
/// assert_eq!(report.metrics.commits, 3);
/// assert!(relser_core::classes::is_relatively_serializable(
///     &fig.txns, &report.history, &fig.spec,
/// ));
/// ```
pub fn simulate(
    txns: &TxnSet,
    scheduler: &mut dyn Scheduler,
    cfg: &SimConfig,
) -> Result<SimReport, EventLimitExceeded> {
    let n = txns.len();
    assert!(n > 0, "empty transaction set");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Precomputed per-operation service times (independent of event
    // interleaving, so jitter does not break determinism).
    let service: Vec<Vec<u64>> = txns
        .txns()
        .iter()
        .map(|t| {
            (0..t.len())
                .map(|_| cfg.service_base + rng.random_range(0..=cfg.service_jitter))
                .collect()
        })
        .collect();

    let mut q: EventQueue<Event> = EventQueue::new();
    let mut arrival_tick = vec![0u64; n];
    match cfg.arrival {
        ArrivalPattern::AllAtZero => {}
        ArrivalPattern::EvenlySpaced { gap } => {
            for (k, a) in arrival_tick.iter_mut().enumerate() {
                *a = k as u64 * gap;
            }
        }
        ArrivalPattern::Poisson { mean_gap } => {
            let mut t = 0.0f64;
            for a in arrival_tick.iter_mut() {
                let u: f64 = rng.random_range(f64::EPSILON..1.0);
                t += -u.ln() * mean_gap as f64;
                *a = t as u64;
            }
        }
    }
    for (t, &at) in arrival_tick.iter().enumerate() {
        q.schedule_at(at, Event::Arrive(TxnId(t as u32)));
    }

    let mut cursor = vec![0u32; n];
    let mut incarnation = vec![0u32; n];
    let mut blocked = vec![false; n];
    let mut done = vec![false; n];
    let mut in_flight = vec![false; n]; // an OpDone event pending
    let mut arrived = vec![false; n];
    let mut commit_tick = vec![0u64; n];
    let mut history: Vec<OpId> = Vec::with_capacity(txns.total_ops());
    let mut aborts = 0u64;
    let mut blocked_events = 0u64;
    let mut decision_ns: Vec<u64> = Vec::with_capacity(txns.total_ops());
    let mut events = 0u64;
    let mut committed = 0usize;

    // Concurrency integral bookkeeping.
    let mut busy_integral = 0u64;
    let mut last_tick = 0u64;
    let mut active_count = 0u64;

    // Requests the next operation for `t`; returns true if the scheduler
    // state changed (grant or abort). The argument list mirrors the
    // engine's whole mutable state on purpose: a free function keeps the
    // borrow checker happy inside the event loop.
    #[allow(clippy::too_many_arguments)]
    fn try_progress(
        t: usize,
        _txns: &TxnSet,
        scheduler: &mut dyn Scheduler,
        q: &mut EventQueue<Event>,
        service: &[Vec<u64>],
        cursor: &mut [u32],
        incarnation: &mut [u32],
        blocked: &mut [bool],
        in_flight: &mut [bool],
        history: &mut Vec<OpId>,
        aborts: &mut u64,
        blocked_events: &mut u64,
        decision_ns: &mut Vec<u64>,
        backoff: u64,
    ) -> bool {
        let txn = TxnId(t as u32);
        let op = OpId::new(txn, cursor[t]);
        let started = std::time::Instant::now();
        let decision = scheduler.request(op);
        decision_ns.push(started.elapsed().as_nanos() as u64);
        match decision {
            Decision::Granted => {
                blocked[t] = false;
                in_flight[t] = true;
                history.push(op);
                q.schedule_in(
                    service[t][cursor[t] as usize],
                    Event::OpDone(txn, incarnation[t]),
                );
                true
            }
            Decision::Blocked { .. } => {
                if !blocked[t] {
                    *blocked_events += 1;
                }
                blocked[t] = true;
                false
            }
            Decision::Aborted(_) => {
                *aborts += 1;
                scheduler.abort(txn);
                history.retain(|o| o.txn != txn);
                cursor[t] = 0;
                blocked[t] = false;
                incarnation[t] += 1;
                q.schedule_in(backoff, Event::Retry(txn, incarnation[t]));
                true
            }
        }
    }

    while let Some((tick, event)) = q.pop() {
        events += 1;
        if events > cfg.max_events {
            return Err(EventLimitExceeded {
                max_events: cfg.max_events,
            });
        }
        busy_integral += active_count * (tick - last_tick);
        last_tick = tick;

        let mut changed = false;
        match event {
            Event::Arrive(txn) => {
                let t = txn.index();
                arrived[t] = true;
                active_count += 1;
                scheduler.begin(txn);
                changed |= try_progress(
                    t,
                    txns,
                    scheduler,
                    &mut q,
                    &service,
                    &mut cursor,
                    &mut incarnation,
                    &mut blocked,
                    &mut in_flight,
                    &mut history,
                    &mut aborts,
                    &mut blocked_events,
                    &mut decision_ns,
                    cfg.restart_backoff,
                );
            }
            Event::Retry(txn, inc) => {
                let t = txn.index();
                if inc != incarnation[t] || done[t] {
                    continue;
                }
                scheduler.begin(txn);
                changed |= try_progress(
                    t,
                    txns,
                    scheduler,
                    &mut q,
                    &service,
                    &mut cursor,
                    &mut incarnation,
                    &mut blocked,
                    &mut in_flight,
                    &mut history,
                    &mut aborts,
                    &mut blocked_events,
                    &mut decision_ns,
                    cfg.restart_backoff,
                );
            }
            Event::OpDone(txn, inc) => {
                let t = txn.index();
                if inc != incarnation[t] || done[t] {
                    continue; // stale completion of an aborted incarnation
                }
                in_flight[t] = false;
                cursor[t] += 1;
                if cursor[t] as usize == txns.txn(txn).len() {
                    scheduler.commit(txn);
                    done[t] = true;
                    commit_tick[t] = tick;
                    committed += 1;
                    active_count -= 1;
                } else {
                    try_progress(
                        t,
                        txns,
                        scheduler,
                        &mut q,
                        &service,
                        &mut cursor,
                        &mut incarnation,
                        &mut blocked,
                        &mut in_flight,
                        &mut history,
                        &mut aborts,
                        &mut blocked_events,
                        &mut decision_ns,
                        cfg.restart_backoff,
                    );
                }
                changed = true;
            }
        }

        // Wake blocked transactions until fixpoint whenever anything
        // changed (a grant may have released unit/altruistic locks; a
        // commit releases everything).
        while changed {
            changed = false;
            for t in 0..n {
                if arrived[t] && blocked[t] && !done[t] && !in_flight[t] {
                    changed |= try_progress(
                        t,
                        txns,
                        scheduler,
                        &mut q,
                        &service,
                        &mut cursor,
                        &mut incarnation,
                        &mut blocked,
                        &mut in_flight,
                        &mut history,
                        &mut aborts,
                        &mut blocked_events,
                        &mut decision_ns,
                        cfg.restart_backoff,
                    );
                }
            }
        }
    }

    assert_eq!(
        committed, n,
        "simulation drained without committing all txns"
    );
    let history = Schedule::new(txns, history).expect("committed history is a valid schedule");
    let final_store = execute(txns, &history);
    let spans: Vec<(u64, u64)> = (0..n).map(|t| (arrival_tick[t], commit_tick[t])).collect();
    Ok(SimReport {
        metrics: summarize(&spans, aborts, blocked_events, busy_integral, &decision_ns),
        history,
        final_store,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relser_protocols::rsg_sgt::RsgSgt;
    use relser_protocols::two_pl::TwoPhaseLocking;
    use relser_protocols::unit_locking::UnitLocking;

    fn txns() -> TxnSet {
        TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]", "r3[y] w3[y]"]).unwrap()
    }

    #[test]
    fn simulation_commits_everything() {
        let t = txns();
        let mut sched = TwoPhaseLocking::new(&t);
        let r = simulate(&t, &mut sched, &SimConfig::default()).unwrap();
        assert_eq!(r.metrics.commits, 3);
        assert_eq!(r.history.len(), t.total_ops());
        assert!(relser_core::sg::is_conflict_serializable(&t, &r.history));
    }

    #[test]
    fn same_seed_same_report() {
        let t = txns();
        let cfg = SimConfig {
            seed: 9,
            ..Default::default()
        };
        let a = simulate(&t, &mut TwoPhaseLocking::new(&t), &cfg).unwrap();
        let b = simulate(&t, &mut TwoPhaseLocking::new(&t), &cfg).unwrap();
        assert_eq!(a.history, b.history);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.final_store, b.final_store);
    }

    #[test]
    fn arrivals_spread_lower_concurrency() {
        let t = txns();
        let all = simulate(
            &t,
            &mut TwoPhaseLocking::new(&t),
            &SimConfig {
                arrival: ArrivalPattern::AllAtZero,
                ..Default::default()
            },
        )
        .unwrap();
        let spaced = simulate(
            &t,
            &mut TwoPhaseLocking::new(&t),
            &SimConfig {
                arrival: ArrivalPattern::EvenlySpaced { gap: 1000 },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(spaced.metrics.mean_concurrency < all.metrics.mean_concurrency);
    }

    #[test]
    fn poisson_arrivals_are_deterministic_per_seed() {
        let t = txns();
        let cfg = SimConfig {
            arrival: ArrivalPattern::Poisson { mean_gap: 40 },
            seed: 5,
            ..Default::default()
        };
        let a = simulate(&t, &mut TwoPhaseLocking::new(&t), &cfg).unwrap();
        let b = simulate(&t, &mut TwoPhaseLocking::new(&t), &cfg).unwrap();
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn deadlock_prone_workload_finishes_with_aborts_somewhere() {
        let t = TxnSet::parse(&["w1[a] w1[b]", "w2[b] w2[a]"]).unwrap();
        let mut any_aborts = false;
        for seed in 0..20 {
            let cfg = SimConfig {
                seed,
                ..Default::default()
            };
            let r = simulate(&t, &mut TwoPhaseLocking::new(&t), &cfg).unwrap();
            assert_eq!(r.metrics.commits, 2);
            any_aborts |= r.metrics.aborts > 0;
        }
        assert!(any_aborts);
    }

    #[test]
    fn unit_locking_beats_2pl_on_long_lived_makespan() {
        // The §5 claim, measured end-to-end: the long transaction donates
        // finished steps, so short transactions overlap it instead of
        // queuing behind it.
        let sc = {
            let txns = TxnSet::parse(&[
                "r1[a] w1[a] r1[b] w1[b] r1[c] w1[c] r1[d] w1[d]",
                "r2[a] w2[a]",
                "r3[b] w3[b]",
                "r4[c] w4[c]",
            ])
            .unwrap();
            let mut spec = relser_core::spec::AtomicitySpec::absolute(&txns);
            for j in 1..4u32 {
                spec.set_breakpoints(TxnId(0), TxnId(j), &[2, 4, 6])
                    .unwrap();
            }
            (txns, spec)
        };
        let mut worse = 0;
        let mut better = 0;
        for seed in 0..10u64 {
            let cfg = SimConfig {
                seed,
                service_jitter: 0,
                ..Default::default()
            };
            let a = simulate(&sc.0, &mut TwoPhaseLocking::new(&sc.0), &cfg).unwrap();
            let b = simulate(&sc.0, &mut UnitLocking::new(&sc.0, &sc.1), &cfg).unwrap();
            assert!(relser_core::classes::is_relatively_serializable(
                &sc.0, &b.history, &sc.1
            ));
            if b.metrics.mean_latency < a.metrics.mean_latency {
                better += 1;
            } else if b.metrics.mean_latency > a.metrics.mean_latency {
                worse += 1;
            }
        }
        assert!(better > worse, "better={better} worse={worse}");
    }

    #[test]
    fn rsg_sgt_simulation_verifies_offline() {
        let fig = relser_core::paper::Figure1::new();
        for seed in 0..5u64 {
            let cfg = SimConfig {
                seed,
                ..Default::default()
            };
            let r = simulate(&fig.txns, &mut RsgSgt::new(&fig.txns, &fig.spec), &cfg).unwrap();
            assert!(relser_core::classes::is_relatively_serializable(
                &fig.txns, &r.history, &fig.spec
            ));
        }
    }

    #[test]
    fn event_limit_guards_against_livelock() {
        let t = txns();
        let cfg = SimConfig {
            max_events: 2,
            ..Default::default()
        };
        let err = simulate(&t, &mut TwoPhaseLocking::new(&t), &cfg).unwrap_err();
        assert_eq!(err.max_events, 2);
    }
}
