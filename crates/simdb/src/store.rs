//! An in-memory object store and a deterministic transaction executor.
//!
//! The executor gives schedules *semantics*: each transaction carries a
//! running register seeded by its id; a read folds the object's current
//! value into the register; a write stores a value derived from the
//! register and the operation's position. Two schedules with the same
//! reads-from relation and final writes therefore produce identical final
//! states — so conflict-equivalent schedules (which agree on both) are
//! *observationally* equivalent, and the RSG witness extraction can be
//! validated end-to-end, not just graph-theoretically.

use relser_core::schedule::Schedule;
use relser_core::txn::TxnSet;

/// A fixed-size object store holding one `u64` per object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Store {
    values: Vec<u64>,
}

impl Store {
    /// A store for every object of `txns`, all values zero.
    pub fn for_txns(txns: &TxnSet) -> Self {
        Store {
            values: vec![0; txns.objects().len()],
        }
    }

    /// The current value of object `o`.
    pub fn value(&self, o: relser_core::ids::ObjectId) -> u64 {
        self.values[o.index()]
    }

    /// All values in object-id order.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

/// A cheap 64-bit mixer (splitmix64 finalizer).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Executes `schedule` against a fresh store, returning the final state.
pub fn execute(txns: &TxnSet, schedule: &Schedule) -> Store {
    let mut store = Store::for_txns(txns);
    // Per-transaction running register.
    let mut reg: Vec<u64> = txns.txn_ids().map(|t| mix(t.0 as u64 + 1)).collect();
    for &op_id in schedule.ops() {
        let op = txns.op(op_id).expect("validated schedule");
        let r = &mut reg[op_id.txn.index()];
        if op.is_write() {
            let value = mix(*r ^ ((op_id.index as u64) << 32));
            store.values[op.object.index()] = value;
        } else {
            *r = mix(*r ^ store.values[op.object.index()]);
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use relser_core::paper::Figure1;

    #[test]
    fn execution_is_deterministic() {
        let fig = Figure1::new();
        let s = fig.s_ra();
        assert_eq!(execute(&fig.txns, &s), execute(&fig.txns, &s));
    }

    #[test]
    fn conflict_equivalent_schedules_produce_identical_states() {
        let fig = Figure1::new();
        let s2 = fig.s_2();
        let srs = fig.s_rs();
        assert!(s2.conflict_equivalent(&srs, &fig.txns));
        assert_eq!(execute(&fig.txns, &s2), execute(&fig.txns, &srs));
    }

    #[test]
    fn rsg_witness_is_observationally_equivalent() {
        let fig = Figure1::new();
        let s2 = fig.s_2();
        let rsg = relser_core::rsg::Rsg::build(&fig.txns, &s2, &fig.spec);
        let witness = rsg.witness(&fig.txns).unwrap();
        assert_eq!(execute(&fig.txns, &s2), execute(&fig.txns, &witness));
    }

    #[test]
    fn order_of_conflicting_writes_matters() {
        let txns = TxnSet::parse(&["w1[x]", "w2[x]"]).unwrap();
        let a = txns.parse_schedule("w1[x] w2[x]").unwrap();
        let b = txns.parse_schedule("w2[x] w1[x]").unwrap();
        assert_ne!(execute(&txns, &a), execute(&txns, &b));
    }

    #[test]
    fn reads_influence_later_writes() {
        // T1 reads x then writes y: flipping the preceding write of x
        // changes what T1 writes to y.
        let txns = TxnSet::parse(&["r1[x] w1[y]", "w2[x]"]).unwrap();
        let a = txns.parse_schedule("w2[x] r1[x] w1[y]").unwrap();
        let b = txns.parse_schedule("r1[x] w1[y] w2[x]").unwrap();
        let ya = execute(&txns, &a);
        let yb = execute(&txns, &b);
        let y = txns.objects().get("y").unwrap();
        assert_ne!(ya.value(y), yb.value(y));
    }

    #[test]
    fn fresh_store_is_zeroed() {
        let txns = TxnSet::parse(&["r1[x] r1[y]"]).unwrap();
        let store = Store::for_txns(&txns);
        assert_eq!(store.values(), &[0, 0]);
    }
}
