//! # relser-simdb — a discrete-event simulated database engine
//!
//! The PODS'94 paper motivates relative atomicity with *systems* benefits:
//! long-lived transactions and collaborative workloads gain concurrency
//! when atomicity is relaxed (§1, §5). The paper itself reports no
//! experiments; this crate supplies the missing testbed as a deterministic
//! discrete-event simulation:
//!
//! * [`clock`] — an event queue with integer ticks (deterministic
//!   ordering, no floating-point time);
//! * [`store`] — an in-memory object store plus a deterministic executor:
//!   writes derive from the values a transaction has read, so
//!   conflict-equivalent schedules provably produce identical final
//!   states — used to validate witnesses end-to-end;
//! * [`engine`] — runs a transaction set against any
//!   [`relser_protocols::Scheduler`]: arrivals, per-operation service
//!   times, blocking with wakeups, abort-restart with backoff;
//! * [`metrics`] — throughput, latency percentiles, abort counts, and
//!   mean effective concurrency.
//!
//! Everything is seeded and reproducible; the `paper-tables` harness in
//! `relser-bench` uses this crate to print experiment E11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod engine;
pub mod metrics;
pub mod store;

pub use engine::{simulate, ArrivalPattern, SimConfig, SimReport};
pub use store::{execute, Store};
