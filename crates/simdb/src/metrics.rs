//! Simulation metrics: throughput, latency percentiles, aborts, mean
//! effective concurrency, and real (wall-clock) scheduler decision cost.

/// Wall-clock cost of the scheduler's per-request decisions during one
/// run. Unlike every other metric this measures *host* nanoseconds, not
/// simulated ticks — it is how the rebuild-vs-incremental RSG-SGT
/// formulations are compared (ablation A3 / the `incremental` bench).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DecisionLatency {
    /// Number of `Scheduler::request` calls measured.
    pub decisions: u64,
    /// Total nanoseconds across all decisions.
    pub total_ns: u64,
    /// Mean nanoseconds per decision.
    pub mean_ns: f64,
    /// 95th-percentile nanoseconds per decision.
    pub p95_ns: u64,
    /// 99th-percentile nanoseconds per decision.
    pub p99_ns: u64,
    /// Slowest single decision.
    pub max_ns: u64,
}

impl DecisionLatency {
    /// Summarizes raw per-decision samples (empty samples → all zeros).
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return DecisionLatency::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let total: u64 = sorted.iter().sum();
        let quantile_idx =
            |q: f64| ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
        DecisionLatency {
            decisions: sorted.len() as u64,
            total_ns: total,
            mean_ns: total as f64 / sorted.len() as f64,
            p95_ns: sorted[quantile_idx(0.95)],
            p99_ns: sorted[quantile_idx(0.99)],
            max_ns: *sorted.last().unwrap(),
        }
    }

    /// Merges another summary into this one (per-shard → aggregate).
    ///
    /// Counts, totals, means, and maxima combine exactly. The p95/p99
    /// are conservative upper bounds (max of the two stream quantiles):
    /// without the raw samples the true merged quantile is
    /// unrecoverable, and for capacity reporting an over-estimate errs
    /// on the safe side. Callers holding raw samples should concatenate
    /// and re-run [`DecisionLatency::from_samples`] instead.
    pub fn merge(&mut self, other: &DecisionLatency) {
        self.decisions += other.decisions;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.mean_ns = if self.decisions == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.decisions as f64
        };
        self.p95_ns = self.p95_ns.max(other.p95_ns);
        self.p99_ns = self.p99_ns.max(other.p99_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// A log2-bucketed latency histogram (nanoseconds).
///
/// Bucket `k` counts samples in `[2^(k-1), 2^k)` ns (bucket 0 counts the
/// value 0). Shared between the simulator and `relser-server`: recording
/// is O(1) and branch-free, merging is element-wise, and quantiles are
/// answered with bucket-upper-bound precision — good enough for p50/p95/
/// p99 reporting without retaining per-sample vectors on the hot path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 65],
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 65],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        let bucket = (64 - ns.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, ns.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Mean sample, ns (0 if empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Largest recorded sample, ns.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`; 0 if empty). The true sample lies within 2x.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(k);
            }
        }
        self.max_ns
    }

    /// Median: upper bound of the bucket holding the 50th-percentile
    /// sample. See [`LatencyHistogram::quantile_ns`].
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// Upper bound of the bucket holding the 99th-percentile sample.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Upper bound of the bucket holding the 99.9th-percentile sample —
    /// the tail the wire-to-wire latency report is about.
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }

    /// Upper bound of bucket `k` in nanoseconds.
    #[inline]
    fn bucket_upper(k: usize) -> u64 {
        match k {
            0 => 0,
            64 => u64::MAX,
            _ => 1u64 << k,
        }
    }

    /// Non-empty buckets as `(upper_bound_ns, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(k, &c)| (Self::bucket_upper(k), c))
            .collect()
    }
}

impl std::fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.0}ns p50<{}ns p95<{}ns p99<{}ns max={}ns",
            self.count,
            self.mean_ns(),
            self.quantile_ns(0.50),
            self.quantile_ns(0.95),
            self.quantile_ns(0.99),
            self.max_ns,
        )
    }
}

/// Aggregate statistics of one simulation run.
///
/// Equality deliberately ignores [`Metrics::scheduler_latency`]: it is
/// wall-clock noise, while everything else is a deterministic function of
/// the seed (the determinism property tests rely on this).
#[derive(Clone, Debug)]
pub struct Metrics {
    /// Committed transactions.
    pub commits: u64,
    /// Abort/restart events.
    pub aborts: u64,
    /// Blocked-request events.
    pub blocked_events: u64,
    /// Total ticks from first arrival to last commit.
    pub makespan: u64,
    /// Commits per 1000 ticks.
    pub throughput_per_kilotick: f64,
    /// Mean commit latency (commit tick − arrival tick).
    pub mean_latency: f64,
    /// 95th-percentile commit latency.
    pub p95_latency: u64,
    /// Time-averaged number of in-flight transactions.
    pub mean_concurrency: f64,
    /// Wall-clock cost of the scheduler's decisions (not part of `==`).
    pub scheduler_latency: DecisionLatency,
}

impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        self.commits == other.commits
            && self.aborts == other.aborts
            && self.blocked_events == other.blocked_events
            && self.makespan == other.makespan
            && self.throughput_per_kilotick == other.throughput_per_kilotick
            && self.mean_latency == other.mean_latency
            && self.p95_latency == other.p95_latency
            && self.mean_concurrency == other.mean_concurrency
    }
}

impl Metrics {
    /// Merges another run's metrics into this one, for aggregating
    /// per-shard (or per-partition) statistics into a single report.
    ///
    /// Counters sum exactly. `makespan` takes the maximum — shards run
    /// concurrently over the same wall of ticks, so the aggregate span is
    /// the slowest shard's. Throughput is recomputed from the merged
    /// commit count over that span. Mean latency is commit-weighted and
    /// exact; `p95_latency` is the conservative maximum of the stream
    /// p95s (the raw per-commit samples are gone). Mean concurrency sums:
    /// each shard's in-flight transactions coexist on the wall clock, so
    /// time-averaged populations add (shards with a shorter makespan are
    /// scaled onto the merged span).
    pub fn merge(&mut self, other: &Metrics) {
        let merged_span = self.makespan.max(other.makespan).max(1);
        let commits = self.commits + other.commits;
        self.mean_latency = if commits == 0 {
            0.0
        } else {
            (self.mean_latency * self.commits as f64 + other.mean_latency * other.commits as f64)
                / commits as f64
        };
        self.mean_concurrency = (self.mean_concurrency * self.makespan as f64
            + other.mean_concurrency * other.makespan as f64)
            / merged_span as f64;
        self.commits = commits;
        self.aborts += other.aborts;
        self.blocked_events += other.blocked_events;
        self.makespan = merged_span;
        self.throughput_per_kilotick = commits as f64 * 1000.0 / merged_span as f64;
        self.p95_latency = self.p95_latency.max(other.p95_latency);
        self.scheduler_latency.merge(&other.scheduler_latency);
    }
}

/// Builds [`Metrics`] from per-transaction observations.
///
/// `spans` are `(arrival, commit)` tick pairs; `busy_integral` is the
/// running integral of in-flight transactions over time (Σ active·Δt);
/// `decision_ns` holds one wall-clock sample per `Scheduler::request`.
pub fn summarize(
    spans: &[(u64, u64)],
    aborts: u64,
    blocked_events: u64,
    busy_integral: u64,
    decision_ns: &[u64],
) -> Metrics {
    assert!(!spans.is_empty(), "no committed transactions to summarize");
    let first_arrival = spans.iter().map(|&(a, _)| a).min().unwrap_or(0);
    let last_commit = spans.iter().map(|&(_, c)| c).max().unwrap_or(0);
    let makespan = last_commit.saturating_sub(first_arrival).max(1);
    let mut latencies: Vec<u64> = spans.iter().map(|&(a, c)| c.saturating_sub(a)).collect();
    latencies.sort_unstable();
    let mean_latency = latencies.iter().sum::<u64>() as f64 / latencies.len() as f64;
    let p95_idx = ((latencies.len() as f64 * 0.95).ceil() as usize).clamp(1, latencies.len()) - 1;
    Metrics {
        commits: spans.len() as u64,
        aborts,
        blocked_events,
        makespan,
        throughput_per_kilotick: spans.len() as f64 * 1000.0 / makespan as f64,
        mean_latency,
        p95_latency: latencies[p95_idx],
        mean_concurrency: busy_integral as f64 / makespan as f64,
        scheduler_latency: DecisionLatency::from_samples(decision_ns),
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "commits={} aborts={} blocked={} makespan={} thru/kt={:.2} lat(mean)={:.1} lat(p95)={} conc={:.2} sched(mean)={:.0}ns sched(p95)={}ns",
            self.commits,
            self.aborts,
            self.blocked_events,
            self.makespan,
            self.throughput_per_kilotick,
            self.mean_latency,
            self.p95_latency,
            self.mean_concurrency,
            self.scheduler_latency.mean_ns,
            self.scheduler_latency.p95_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let spans = vec![(0, 10), (0, 20), (5, 25)];
        let m = summarize(&spans, 2, 7, 40, &[]);
        assert_eq!(m.commits, 3);
        assert_eq!(m.aborts, 2);
        assert_eq!(m.blocked_events, 7);
        assert_eq!(m.makespan, 25);
        assert!((m.throughput_per_kilotick - 120.0).abs() < 1e-9);
        assert!((m.mean_latency - (10.0 + 20.0 + 20.0) / 3.0).abs() < 1e-9);
        assert_eq!(m.p95_latency, 20);
        assert!((m.mean_concurrency - 40.0 / 25.0).abs() < 1e-9);
    }

    #[test]
    fn single_txn_run() {
        let m = summarize(&[(3, 9)], 0, 0, 6, &[]);
        assert_eq!(m.makespan, 6);
        assert_eq!(m.p95_latency, 6);
        assert_eq!(m.commits, 1);
    }

    #[test]
    fn zero_span_clamps_makespan() {
        let m = summarize(&[(5, 5)], 0, 0, 0, &[]);
        assert_eq!(m.makespan, 1);
    }

    #[test]
    #[should_panic(expected = "no committed transactions")]
    fn empty_spans_panic() {
        summarize(&[], 0, 0, 0, &[]);
    }

    #[test]
    fn display_contains_key_figures() {
        let m = summarize(&[(0, 10)], 1, 2, 10, &[100, 200]);
        let s = m.to_string();
        assert!(s.contains("commits=1"));
        assert!(s.contains("aborts=1"));
        assert!(s.contains("sched(mean)=150ns"));
    }

    #[test]
    fn decision_latency_summary() {
        let d = DecisionLatency::from_samples(&[100, 300, 200, 1000]);
        assert_eq!(d.decisions, 4);
        assert_eq!(d.total_ns, 1600);
        assert!((d.mean_ns - 400.0).abs() < 1e-9);
        assert_eq!(d.p95_ns, 1000);
        assert_eq!(d.p99_ns, 1000);
        assert_eq!(d.max_ns, 1000);
        assert_eq!(
            DecisionLatency::from_samples(&[]),
            DecisionLatency::default()
        );
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let mut h = LatencyHistogram::new();
        for ns in [0u64, 1, 100, 100, 1000, 50_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.total_ns(), 51_201);
        assert_eq!(h.max_ns(), 50_000);
        // The p50 sample is 100 → bucket upper bound 128.
        assert_eq!(h.quantile_ns(0.50), 128);
        // The max sample 50_000 → bucket upper bound 65536.
        assert_eq!(h.quantile_ns(1.0), 65_536);
        assert_eq!(h.quantile_ns(0.0), 0);
        let display = h.to_string();
        assert!(display.contains("n=6"), "{display}");
    }

    #[test]
    fn histogram_merge_is_elementwise() {
        let mut a = LatencyHistogram::new();
        a.record(10);
        let mut b = LatencyHistogram::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 1_000_000);
        assert_eq!(a.nonzero_buckets().len(), 2);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.quantile_ns(1.0), u64::MAX);
        let empty = LatencyHistogram::new();
        assert_eq!(empty.quantile_ns(0.95), 0);
        assert_eq!(empty.mean_ns(), 0.0);
    }

    #[test]
    fn histogram_named_quantiles_track_the_samples() {
        // 1000 samples 1..=1000: the pXX accessors must bracket the exact
        // rank statistic within one log2 bucket (upper bound ≥ exact,
        // and < 2x above it).
        let mut h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record(ns);
        }
        for (got, exact) in [(h.p50_ns(), 500u64), (h.p99_ns(), 990), (h.p999_ns(), 999)] {
            assert!(got >= exact, "upper bound {got} below exact {exact}");
            assert!(got < exact * 2, "upper bound {got} over 2x exact {exact}");
        }
        // Ordering between the named quantiles always holds.
        assert!(h.p50_ns() <= h.p99_ns());
        assert!(h.p99_ns() <= h.p999_ns());
        // p999 is a bucket upper bound, so it can exceed the exact max —
        // but never the max's own bucket upper bound.
        assert!(h.p999_ns() <= h.max_ns().next_power_of_two());
    }

    #[test]
    fn histogram_named_quantiles_survive_merge() {
        // Quantiles over a merged histogram equal quantiles over one
        // histogram fed the union stream — merge loses nothing the
        // buckets can express. The tail (p999) lives entirely in the
        // right-hand stream, so the merged p999 must come from it.
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..2000u64 {
            let ns = if i < 1990 {
                100 + i % 50
            } else {
                1_000_000 + i
            };
            whole.record(ns);
            if i % 3 == 0 {
                left.record(ns);
            } else {
                right.record(ns);
            }
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged.p50_ns(), whole.p50_ns());
        assert_eq!(merged.p99_ns(), whole.p99_ns());
        assert_eq!(merged.p999_ns(), whole.p999_ns());
        assert!(merged.p999_ns() >= 1 << 20, "tail samples drive p999");
        assert!(merged.p50_ns() <= 256, "bulk samples drive p50");
        // Empty histograms answer 0 for every named quantile.
        let empty = LatencyHistogram::new();
        assert_eq!(empty.p50_ns(), 0);
        assert_eq!(empty.p999_ns(), 0);
    }

    #[test]
    fn metrics_merge_matches_single_stream_accumulation() {
        // Two shards' spans with identical per-commit latency and a shared
        // origin: every merged field (including p95) is then exact, so the
        // merge must equal summarizing the union stream directly.
        let shard_a = vec![(0, 10), (2, 12), (4, 14)];
        let shard_b = vec![(0, 10), (6, 16)];
        let union: Vec<(u64, u64)> = shard_a.iter().chain(&shard_b).copied().collect();
        let mut merged = summarize(&shard_a, 1, 3, 20, &[]);
        merged.merge(&summarize(&shard_b, 2, 4, 12, &[]));
        let single = summarize(&union, 3, 7, 32, &[]);
        assert_eq!(merged.commits, single.commits);
        assert_eq!(merged.aborts, single.aborts);
        assert_eq!(merged.blocked_events, single.blocked_events);
        assert_eq!(merged.makespan, single.makespan);
        assert!((merged.throughput_per_kilotick - single.throughput_per_kilotick).abs() < 1e-9);
        assert!((merged.mean_latency - single.mean_latency).abs() < 1e-9);
        assert_eq!(merged.p95_latency, single.p95_latency);
        assert!(
            (merged.mean_concurrency - single.mean_concurrency).abs() < 1e-9,
            "{} vs {}",
            merged.mean_concurrency,
            single.mean_concurrency
        );
    }

    #[test]
    fn histogram_merge_matches_single_stream_accumulation() {
        // Satellite check: splitting one sample stream across two
        // histograms and merging is byte-identical (PartialEq on the
        // whole struct) to recording the stream into one histogram.
        let samples: Vec<u64> = (0..200u64).map(|i| i * i * 37 % 100_000).collect();
        let mut whole = LatencyHistogram::new();
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            if i % 2 == 0 {
                left.record(s);
            } else {
                right.record(s);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn decision_latency_merge_is_exact_on_sums_conservative_on_p95() {
        let a = DecisionLatency::from_samples(&[100, 200, 300]);
        let b = DecisionLatency::from_samples(&[400, 500]);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.decisions, 5);
        assert_eq!(merged.total_ns, 1500);
        assert!((merged.mean_ns - 300.0).abs() < 1e-9);
        assert_eq!(merged.max_ns, 500);
        // p95 is an upper bound on the true merged p95.
        let exact = DecisionLatency::from_samples(&[100, 200, 300, 400, 500]);
        assert!(merged.p95_ns >= exact.p95_ns);
        // Merging into the empty summary reproduces the other side.
        let mut empty = DecisionLatency::default();
        empty.merge(&b);
        assert_eq!(empty, b);
    }

    #[test]
    fn metrics_equality_ignores_wall_clock_latency() {
        let a = summarize(&[(0, 10)], 0, 0, 10, &[100]);
        let b = summarize(&[(0, 10)], 0, 0, 10, &[999_999]);
        assert_eq!(a, b, "scheduler latency is not part of ==");
    }
}
