//! A deterministic discrete-event queue.
//!
//! Time is measured in integer **ticks**; events at the same tick are
//! ordered by insertion sequence, so simulations are reproducible
//! byte-for-byte across runs and platforms.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic future-event list.
#[derive(Clone, Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64, EventBox<E>)>>,
    seq: u64,
    now: u64,
}

/// Wrapper giving events a total order without requiring `Ord` on `E`.
#[derive(Clone, Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time (the tick of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `event` at absolute tick `at` (clamped to `now`).
    pub fn schedule_at(&mut self, at: u64, event: E) {
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.seq, EventBox(event))));
        self.seq += 1;
    }

    /// Schedules `event` `delay` ticks from now.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Pops the next event, advancing the clock. `None` when empty.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse((at, _, EventBox(e))) = self.heap.pop()?;
        self.now = at;
        Some((at, e))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5, "c");
        q.schedule_at(1, "a");
        q.schedule_at(3, "b");
        assert_eq!(q.pop(), Some((1, "a")));
        assert_eq!(q.now(), 1);
        assert_eq!(q.pop(), Some((3, "b")));
        assert_eq!(q.pop(), Some((5, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_at(7, 1);
        q.schedule_at(7, 2);
        q.schedule_at(7, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(10, "first");
        q.pop();
        q.schedule_in(5, "second");
        assert_eq!(q.pop(), Some((15, "second")));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(10, "first");
        q.pop();
        q.schedule_at(3, "late");
        assert_eq!(q.pop(), Some((10, "late")));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
