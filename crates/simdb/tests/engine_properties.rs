//! Property tests for the discrete-event engine: determinism, metric
//! sanity, and safety of committed histories across protocols, arrival
//! patterns, and fault injection.

use proptest::prelude::*;
use relser_core::classes::is_relatively_serializable;
use relser_core::sg::is_conflict_serializable;
use relser_core::spec::AtomicitySpec;
use relser_protocols::altruistic::AltruisticLocking;
use relser_protocols::chaos::ChaosScheduler;
use relser_protocols::rsg_sgt::{RsgSgt, RsgSgtOracle};
use relser_protocols::sgt::ConflictSgt;
use relser_protocols::two_pl::TwoPhaseLocking;
use relser_protocols::unit_locking::UnitLocking;
use relser_protocols::Scheduler;
use relser_simdb::{simulate, ArrivalPattern, SimConfig};
use relser_workload::{random_spec, random_txns, RandomConfig};

fn workload(seed: u64) -> relser_core::TxnSet {
    random_txns(
        &RandomConfig {
            txns: 4,
            ops_per_txn: (2, 4),
            objects: 4,
            theta: 0.4,
            write_ratio: 0.5,
        },
        seed,
    )
}

fn arrival(kind: u8) -> ArrivalPattern {
    match kind % 3 {
        0 => ArrivalPattern::AllAtZero,
        1 => ArrivalPattern::EvenlySpaced { gap: 20 },
        _ => ArrivalPattern::Poisson { mean_gap: 25 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical config ⇒ identical report, for every protocol and
    /// arrival pattern.
    #[test]
    fn simulation_is_deterministic(
        wl in 0u64..500, seed in 0u64..500, kind in any::<u8>(), proto in 0u8..4
    ) {
        let txns = workload(wl);
        let spec = random_spec(&txns, 0.4, wl);
        let cfg = SimConfig { seed, arrival: arrival(kind), ..Default::default() };
        let mk = |p: u8| -> Box<dyn Scheduler> {
            match p {
                0 => Box::new(TwoPhaseLocking::new(&txns)),
                1 => Box::new(ConflictSgt::new(&txns)),
                2 => Box::new(RsgSgt::new(&txns, &spec)),
                _ => Box::new(UnitLocking::new(&txns, &spec)),
            }
        };
        let a = simulate(&txns, mk(proto).as_mut(), &cfg).unwrap();
        let b = simulate(&txns, mk(proto).as_mut(), &cfg).unwrap();
        prop_assert_eq!(a.history, b.history);
        prop_assert_eq!(a.metrics, b.metrics);
        prop_assert_eq!(a.final_store, b.final_store);
    }

    /// Metric invariants: commits equal the transaction count, makespan
    /// positive, p95 ≥ mean is not guaranteed but p95 ≤ makespan is, and
    /// mean concurrency never exceeds the transaction count.
    #[test]
    fn metrics_are_sane(wl in 0u64..500, seed in 0u64..500, kind in any::<u8>()) {
        let txns = workload(wl);
        let cfg = SimConfig { seed, arrival: arrival(kind), ..Default::default() };
        let r = simulate(&txns, &mut TwoPhaseLocking::new(&txns), &cfg).unwrap();
        prop_assert_eq!(r.metrics.commits as usize, txns.len());
        prop_assert!(r.metrics.makespan >= 1);
        prop_assert!(r.metrics.p95_latency as u64 <= r.metrics.makespan);
        prop_assert!(r.metrics.mean_concurrency <= txns.len() as f64 + 1e-9);
        prop_assert!(r.metrics.mean_latency >= 0.0);
        prop_assert_eq!(r.history.len(), txns.total_ops());
    }

    /// Safety under fault injection: chaos-wrapped protocols still commit
    /// only verifiable histories, for both RSG-SGT formulations.
    #[test]
    fn chaos_preserves_safety(
        wl in 0u64..300, seed in 0u64..300, prob in 0.05f64..0.4
    ) {
        let txns = workload(wl);
        let spec = random_spec(&txns, 0.5, wl ^ 0x5a);
        let cfg = SimConfig { seed, max_events: 4_000_000, ..Default::default() };

        let mut a = ChaosScheduler::new(RsgSgt::new(&txns, &spec), prob, seed);
        let ra = simulate(&txns, &mut a, &cfg).unwrap();
        prop_assert!(is_relatively_serializable(&txns, &ra.history, &spec));

        let mut b = ChaosScheduler::new(RsgSgtOracle::new(&txns, &spec), prob, seed);
        let rb = simulate(&txns, &mut b, &cfg).unwrap();
        prop_assert!(is_relatively_serializable(&txns, &rb.history, &spec));

        let mut c = ChaosScheduler::new(AltruisticLocking::new(&txns), prob, seed ^ 1);
        let rc = simulate(&txns, &mut c, &cfg).unwrap();
        prop_assert!(is_conflict_serializable(&txns, &rc.history));
    }

    /// Spec monotonicity end-to-end: a history committed by RSG-SGT under
    /// some spec also verifies under any looser spec.
    #[test]
    fn committed_histories_verify_under_looser_specs(
        wl in 0u64..300, seed in 0u64..300
    ) {
        let txns = workload(wl);
        let spec = random_spec(&txns, 0.3, wl);
        let cfg = SimConfig { seed, ..Default::default() };
        let r = simulate(&txns, &mut RsgSgt::new(&txns, &spec), &cfg).unwrap();
        prop_assert!(is_relatively_serializable(&txns, &r.history, &spec));
        let free = AtomicitySpec::free(&txns);
        prop_assert!(is_relatively_serializable(&txns, &r.history, &free));
    }

    /// Store execution is a function of the history alone: two protocols
    /// producing conflict-equivalent histories agree on the final state.
    #[test]
    fn final_state_depends_only_on_conflict_class(
        wl in 0u64..300, seed in 0u64..300
    ) {
        let txns = workload(wl);
        let cfg = SimConfig { seed, ..Default::default() };
        let a = simulate(&txns, &mut TwoPhaseLocking::new(&txns), &cfg).unwrap();
        let b = simulate(&txns, &mut ConflictSgt::new(&txns), &cfg).unwrap();
        if a.history.conflict_equivalent(&b.history, &txns) {
            prop_assert_eq!(a.final_store, b.final_store);
        }
    }
}
