//! Property tests for the scenario generators: structural invariants that
//! must hold for every configuration and seed.

use proptest::prelude::*;
use relser_workload::banking::{banking, BankTxnKind, BankingConfig};
use relser_workload::cad::{cad, CadConfig};
use relser_workload::longlived::{long_lived, LongLivedConfig};
use relser_workload::{random_spec, random_txns, RandomConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Banking: the spec is exactly as documented — bank audit absolute
    /// both ways, same-family customers free, credit audits atomic toward
    /// their own family only.
    #[test]
    fn banking_spec_invariants(
        families in 1usize..4, accounts in 1usize..4, customers in 1usize..3, seed in any::<u64>()
    ) {
        let cfg = BankingConfig {
            families,
            accounts_per_family: accounts,
            customers_per_family: customers,
            transfers_per_customer: 2,
            credit_audits: true,
            bank_audit: true,
        };
        let sc = banking(&cfg, seed);
        prop_assert_eq!(sc.txns.len(), families * customers + families + 1);
        for i in sc.txns.txn_ids() {
            for j in sc.txns.txn_ids() {
                if i == j { continue; }
                let free = !sc.spec.breakpoints(i, j).is_empty()
                    || sc.txns.txn(i).len() == 1;
                match (sc.kinds[i.index()], sc.kinds[j.index()]) {
                    (BankTxnKind::BankAudit, _) | (_, BankTxnKind::BankAudit) => {
                        prop_assert!(sc.spec.breakpoints(i, j).is_empty());
                    }
                    (BankTxnKind::Customer { family: a }, BankTxnKind::Customer { family: b }) => {
                        let _ = (a, b);
                        prop_assert!(free, "customers are mutually free");
                    }
                    (BankTxnKind::CreditAudit { family }, BankTxnKind::Customer { family: cf })
                    | (BankTxnKind::Customer { family: cf }, BankTxnKind::CreditAudit { family }) => {
                        if family == cf {
                            prop_assert!(sc.spec.breakpoints(i, j).is_empty());
                        } else {
                            prop_assert!(free);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// CAD: cross-team breakpoints are exactly the non-zero phase starts;
    /// teams never write each other's modules.
    #[test]
    fn cad_spec_invariants(
        teams in 1usize..4, designers in 1usize..3, phases in 1usize..4, seed in any::<u64>()
    ) {
        let cfg = CadConfig {
            teams,
            designers_per_team: designers,
            modules_per_team: 2,
            phases,
            interface_read_prob: 0.5,
        };
        let sc = cad(&cfg, seed);
        prop_assert_eq!(sc.txns.len(), teams * designers);
        for i in sc.txns.txn_ids() {
            prop_assert_eq!(sc.phase_starts[i.index()].len(), phases);
            for j in sc.txns.txn_ids() {
                if i == j { continue; }
                if sc.team_of[i.index()] != sc.team_of[j.index()] {
                    let expected: Vec<u32> = sc.phase_starts[i.index()]
                        .iter().copied().filter(|&b| b > 0).collect();
                    prop_assert_eq!(sc.spec.breakpoints(i, j), expected.as_slice());
                }
            }
            for op in sc.txns.txn(i).ops() {
                let name = sc.txns.objects().name(op.object);
                let team = sc.team_of[i.index()];
                prop_assert!(
                    name == "interface" || name.starts_with(&format!("team{team}_")),
                    "{name}"
                );
                if name == "interface" {
                    prop_assert!(!op.is_write(), "interface is read-only");
                }
            }
        }
    }

    /// Long-lived: long transactions expose exactly the step boundaries;
    /// short transactions stay absolute.
    #[test]
    fn long_lived_spec_invariants(
        longs in 1usize..3, steps in 1usize..6, shorts in 0usize..6, seed in any::<u64>()
    ) {
        let cfg = LongLivedConfig {
            long_txns: longs,
            steps,
            long_writes: true,
            short_txns: shorts,
            short_objects: 1,
            objects: 8,
            theta: 0.0,
        };
        let sc = long_lived(&cfg, seed);
        prop_assert_eq!(sc.txns.len(), longs + shorts);
        for i in sc.txns.txn_ids() {
            let is_long = sc.is_long(i.index());
            for j in sc.txns.txn_ids() {
                if i == j { continue; }
                if is_long {
                    prop_assert_eq!(sc.spec.breakpoints(i, j).len(), steps - 1);
                } else {
                    prop_assert!(sc.spec.breakpoints(i, j).is_empty());
                }
            }
        }
    }

    /// Random specs interpolate between absolute and free.
    #[test]
    fn random_spec_extremes_and_monotonic_density(seed in any::<u64>()) {
        let txns = random_txns(&RandomConfig::default(), seed);
        prop_assert!(random_spec(&txns, 0.0, seed).is_absolute());
        let free = random_spec(&txns, 1.0, seed);
        for i in txns.txn_ids() {
            for j in txns.txn_ids() {
                if i != j {
                    prop_assert_eq!(
                        free.breakpoints(i, j).len() as u32,
                        txns.txn(i).len() as u32 - 1
                    );
                }
            }
        }
    }
}
