//! Seeded random universes: transaction sets, specifications, schedules.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relser_core::ids::{OpId, TxnId};
use relser_core::op::AccessMode;
use relser_core::schedule::Schedule;
use relser_core::spec::AtomicitySpec;
use relser_core::txn::TxnSet;

/// Parameters of a random universe.
#[derive(Clone, Debug)]
pub struct RandomConfig {
    /// Number of transactions.
    pub txns: usize,
    /// Operations per transaction, inclusive range.
    pub ops_per_txn: (usize, usize),
    /// Number of distinct objects.
    pub objects: usize,
    /// Zipf skew of object popularity (0 = uniform).
    pub theta: f64,
    /// Probability an operation is a write.
    pub write_ratio: f64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            txns: 4,
            ops_per_txn: (2, 5),
            objects: 6,
            theta: 0.0,
            write_ratio: 0.5,
        }
    }
}

/// Generates a random transaction set.
pub fn random_txns(cfg: &RandomConfig, seed: u64) -> TxnSet {
    assert!(cfg.txns > 0 && cfg.objects > 0);
    assert!(cfg.ops_per_txn.0 >= 1 && cfg.ops_per_txn.0 <= cfg.ops_per_txn.1);
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(cfg.objects, cfg.theta);
    let names: Vec<String> = (0..cfg.objects).map(|i| format!("o{i}")).collect();
    let mut set = TxnSet::new();
    for _ in 0..cfg.txns {
        let len = rng.random_range(cfg.ops_per_txn.0..=cfg.ops_per_txn.1);
        let ops: Vec<(AccessMode, &str)> = (0..len)
            .map(|_| {
                let mode = if rng.random_bool(cfg.write_ratio) {
                    AccessMode::Write
                } else {
                    AccessMode::Read
                };
                (mode, names[zipf.sample(&mut rng)].as_str())
            })
            .collect();
        set.add(&ops).expect("non-empty random transaction");
    }
    set
}

/// Generates a random relative atomicity specification: each ordered pair
/// gets each possible breakpoint independently with probability
/// `breakpoint_prob` (0.0 reproduces the absolute spec, 1.0 the free one).
pub fn random_spec(txns: &TxnSet, breakpoint_prob: f64, seed: u64) -> AtomicitySpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spec = AtomicitySpec::absolute(txns);
    for i in txns.txn_ids() {
        for j in txns.txn_ids() {
            if i == j {
                continue;
            }
            let len = txns.txn(i).len() as u32;
            let breaks: Vec<u32> = (1..len)
                .filter(|_| rng.random_bool(breakpoint_prob))
                .collect();
            spec.set_breakpoints(i, j, &breaks)
                .expect("valid breakpoints");
        }
    }
    spec
}

/// Generates a uniformly random schedule (interleaving) over `txns`.
pub fn random_schedule(txns: &TxnSet, seed: u64) -> Schedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remaining: Vec<u32> = txns.txns().iter().map(|t| t.len() as u32).collect();
    let mut cursor: Vec<u32> = vec![0; txns.len()];
    let mut left: u32 = remaining.iter().sum();
    let mut order = Vec::with_capacity(left as usize);
    while left > 0 {
        // Pick a transaction weighted by remaining operations: this yields
        // the uniform distribution over interleavings.
        let mut pick = rng.random_range(0..left);
        let mut t = 0usize;
        loop {
            if pick < remaining[t] {
                break;
            }
            pick -= remaining[t];
            t += 1;
        }
        order.push(OpId::new(TxnId(t as u32), cursor[t]));
        cursor[t] += 1;
        remaining[t] -= 1;
        left -= 1;
    }
    Schedule::new(txns, order).expect("constructed schedule is valid")
}

/// Produces a conflict-equivalent variant of `s` by a random walk of
/// adjacent swaps of non-conflicting, different-transaction neighbors.
pub fn conflict_equivalent_shuffle(
    txns: &TxnSet,
    s: &Schedule,
    swaps: usize,
    seed: u64,
) -> Schedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = s.ops().to_vec();
    let n = ops.len();
    if n >= 2 {
        for _ in 0..swaps {
            let i = rng.random_range(0..n - 1);
            let (a, b) = (ops[i], ops[i + 1]);
            if a.txn == b.txn {
                continue;
            }
            let oa = txns.op(a).expect("valid");
            let ob = txns.op(b).expect("valid");
            if !oa.conflicts_with(ob) {
                ops.swap(i, i + 1);
            }
        }
    }
    Schedule::new(txns, ops).expect("swaps preserve validity")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = RandomConfig::default();
        let a = random_txns(&cfg, 7);
        let b = random_txns(&cfg, 7);
        assert_eq!(a, b);
        let c = random_txns(&cfg, 8);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn txn_sizes_respect_config() {
        let cfg = RandomConfig {
            txns: 10,
            ops_per_txn: (3, 3),
            objects: 2,
            ..Default::default()
        };
        let t = random_txns(&cfg, 1);
        assert_eq!(t.len(), 10);
        assert!(t.txns().iter().all(|x| x.len() == 3));
        assert!(t.objects().len() <= 2);
    }

    #[test]
    fn spec_probability_extremes() {
        let cfg = RandomConfig::default();
        let t = random_txns(&cfg, 2);
        assert!(random_spec(&t, 0.0, 3).is_absolute());
        let free = random_spec(&t, 1.0, 3);
        assert_eq!(free, AtomicitySpec::free(&t));
    }

    #[test]
    fn random_schedules_are_valid_and_deterministic() {
        let cfg = RandomConfig::default();
        let t = random_txns(&cfg, 5);
        let s1 = random_schedule(&t, 11);
        let s2 = random_schedule(&t, 11);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), t.total_ops());
    }

    #[test]
    fn random_schedules_vary_with_seed() {
        let cfg = RandomConfig {
            txns: 4,
            ops_per_txn: (4, 4),
            ..Default::default()
        };
        let t = random_txns(&cfg, 5);
        let distinct: std::collections::HashSet<Vec<OpId>> = (0..20)
            .map(|seed| random_schedule(&t, seed).ops().to_vec())
            .collect();
        assert!(
            distinct.len() > 10,
            "only {} distinct schedules",
            distinct.len()
        );
    }

    #[test]
    fn shuffle_preserves_conflict_equivalence() {
        let cfg = RandomConfig::default();
        let t = random_txns(&cfg, 9);
        let s = random_schedule(&t, 10);
        for seed in 0..10 {
            let v = conflict_equivalent_shuffle(&t, &s, 50, seed);
            assert!(v.conflict_equivalent(&s, &t), "seed {seed}");
        }
    }

    #[test]
    fn shuffle_actually_moves_independent_ops() {
        let t = TxnSet::parse(&["r1[x] r1[x]", "r2[y] r2[y]"]).unwrap();
        let s = t.parse_schedule("r1[x] r1[x] r2[y] r2[y]").unwrap();
        let moved =
            (0..20).any(|seed| conflict_equivalent_shuffle(&t, &s, 30, seed).ops() != s.ops());
        assert!(moved);
    }
}
