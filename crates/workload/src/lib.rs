//! # relser-workload — workload & specification generators
//!
//! Seeded, reproducible generators for the universes the reproduction's
//! tests, examples, and benchmarks run on:
//!
//! * [`random`] — random transaction sets, relative atomicity
//!   specifications, schedules, and conflict-equivalent shuffles, with
//!   uniform or Zipf object popularity ([`zipf`]);
//! * [`banking`] — the banking scenario the paper (after Lynch \[Lyn83\])
//!   uses to motivate relative atomicity: customers grouped into families
//!   sharing accounts, family-scoped *credit audits*, and a global *bank
//!   audit* that must stay absolutely atomic;
//! * [`cad`] — the computer-aided-design scenario: teams of specialized
//!   experts with free interleaving inside a team and phase-boundary
//!   atomicity across teams;
//! * [`longlived`] — long-lived transactions à la altruistic locking
//!   \[SGMA87\]: one long scan exposing per-step breakpoints amid short
//!   absolute transactions;
//! * [`stream`] — the open-system adapter: a seeded arrival order over a
//!   transaction set that server worker threads drain concurrently
//!   (one atomic fetch per claim).
//!
//! All generators take explicit seeds (`StdRng::seed_from_u64`), so every
//! experiment in EXPERIMENTS.md is reproducible run-to-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banking;
pub mod cad;
pub mod longlived;
pub mod random;
pub mod stream;
pub mod zipf;

pub use random::{
    conflict_equivalent_shuffle, random_schedule, random_spec, random_txns, RandomConfig,
};
