//! A small Zipf(θ) sampler over `{0, …, n-1}`.
//!
//! Implemented in-house because `rand_distr` is not in the approved
//! dependency set. Uses the standard inverse-CDF method over precomputed
//! cumulative weights — O(n) setup, O(log n) per sample — which is exact
//! and plenty fast at workload-generation scale.

use rand::Rng;

/// Zipf-distributed index sampler: item `i` (0-based) has weight
/// `1 / (i+1)^theta`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` items with skew `theta >= 0`
    /// (`theta = 0` is uniform; typical hot-spot workloads use 0.8–1.2).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(theta >= 0.0 && theta.is_finite(), "bad theta {theta}");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Samplers are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = rng.random_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 800.0, "{counts:?}");
        }
    }

    #[test]
    fn skew_prefers_low_indices() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4], "{counts:?}");
        assert!(counts[0] > 2 * counts[9], "{counts:?}");
        // Ratio item0/item1 ≈ 2 for theta = 1.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.6..2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn samples_always_in_range() {
        let z = Zipf::new(3, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn single_item_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zero_items_panics() {
        Zipf::new(0, 1.0);
    }
}
