//! Long-lived transactions — the application §5 highlights via altruistic
//! locking \[SGMA87\]: "a long-lived transaction does not need to be atomic
//! for its entire duration with respect to all other transactions. Rather,
//! different atomic units may be allowed, thus providing more flexibility
//! and concurrency."
//!
//! The generated mix has one (or more) long *scan/update* transactions
//! that touch a sequence of objects step by step, plus many short
//! transactions touching one or two objects. Specification: the long
//! transaction exposes a breakpoint after every step to every short
//! transaction (it has "finished with" those objects, exactly the
//! altruistic-locking donation); short transactions stay absolutely
//! atomic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relser_core::op::AccessMode;
use relser_core::spec::AtomicitySpec;
use relser_core::txn::TxnSet;

/// Parameters of the long-lived mix.
#[derive(Clone, Debug)]
pub struct LongLivedConfig {
    /// Number of long transactions.
    pub long_txns: usize,
    /// Steps (objects visited) per long transaction.
    pub steps: usize,
    /// Does each long step write (read+write) or only read?
    pub long_writes: bool,
    /// Number of short transactions.
    pub short_txns: usize,
    /// Objects touched per short transaction (1 or 2).
    pub short_objects: usize,
    /// Total number of objects.
    pub objects: usize,
    /// Zipf skew for short-transaction object choice.
    pub theta: f64,
}

impl Default for LongLivedConfig {
    fn default() -> Self {
        LongLivedConfig {
            long_txns: 1,
            steps: 6,
            long_writes: true,
            short_txns: 6,
            short_objects: 2,
            objects: 8,
            theta: 0.0,
        }
    }
}

/// A generated long-lived mix.
#[derive(Clone, Debug)]
pub struct LongLivedScenario {
    /// Long transactions first (ids `0..long_txns`), then short ones.
    pub txns: TxnSet,
    /// Long transactions expose per-step breakpoints; short transactions
    /// are absolute.
    pub spec: AtomicitySpec,
    /// Number of long transactions (prefix of the id space).
    pub long_txns: usize,
}

impl LongLivedScenario {
    /// Is `t` (by index) one of the long transactions?
    pub fn is_long(&self, t: usize) -> bool {
        t < self.long_txns
    }
}

/// Generates the long-lived mix.
pub fn long_lived(cfg: &LongLivedConfig, seed: u64) -> LongLivedScenario {
    assert!(cfg.objects > 0 && cfg.steps > 0);
    assert!((1..=2).contains(&cfg.short_objects));
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = crate::zipf::Zipf::new(cfg.objects, cfg.theta);
    let name = |o: usize| format!("obj{o}");

    let mut set = TxnSet::new();
    // Long transactions: a scan over `steps` distinct-ish objects.
    let mut step_starts: Vec<Vec<u32>> = Vec::new();
    for _ in 0..cfg.long_txns {
        let mut names: Vec<(AccessMode, String)> = Vec::new();
        let mut starts = Vec::new();
        for s in 0..cfg.steps {
            starts.push(names.len() as u32);
            let o = if cfg.objects >= cfg.steps {
                s % cfg.objects // a clean scan across distinct objects
            } else {
                rng.random_range(0..cfg.objects)
            };
            names.push((AccessMode::Read, name(o)));
            if cfg.long_writes {
                names.push((AccessMode::Write, name(o)));
            }
        }
        let ops: Vec<(AccessMode, &str)> = names.iter().map(|(m, n)| (*m, n.as_str())).collect();
        set.add(&ops).expect("long txn non-empty");
        step_starts.push(starts);
    }
    // Short transactions.
    for _ in 0..cfg.short_txns {
        let mut names: Vec<(AccessMode, String)> = Vec::new();
        for _ in 0..cfg.short_objects {
            let o = zipf.sample(&mut rng);
            names.push((AccessMode::Read, name(o)));
            names.push((AccessMode::Write, name(o)));
        }
        let ops: Vec<(AccessMode, &str)> = names.iter().map(|(m, n)| (*m, n.as_str())).collect();
        set.add(&ops).expect("short txn non-empty");
    }

    let mut spec = AtomicitySpec::absolute(&set);
    for i in set.txn_ids() {
        if (i.index()) >= cfg.long_txns {
            continue; // short transactions stay absolute
        }
        let breaks: Vec<u32> = step_starts[i.index()]
            .iter()
            .copied()
            .filter(|&b| b > 0)
            .collect();
        for j in set.txn_ids() {
            if i != j {
                spec.set_breakpoints(i, j, &breaks).expect("valid");
            }
        }
    }
    LongLivedScenario {
        txns: set,
        spec,
        long_txns: cfg.long_txns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relser_core::ids::TxnId;

    #[test]
    fn shape_and_roles() {
        let sc = long_lived(&LongLivedConfig::default(), 1);
        assert_eq!(sc.txns.len(), 7);
        assert!(sc.is_long(0));
        assert!(!sc.is_long(1));
        assert_eq!(sc.txns.txn(TxnId(0)).len(), 12); // 6 steps × (r+w)
    }

    #[test]
    fn long_txn_exposes_step_breakpoints() {
        let sc = long_lived(&LongLivedConfig::default(), 2);
        let long = TxnId(0);
        let short = TxnId(3);
        assert_eq!(sc.spec.breakpoints(long, short), &[2, 4, 6, 8, 10]);
        // Short transactions stay absolute.
        assert!(sc.spec.breakpoints(short, long).is_empty());
    }

    #[test]
    fn read_only_long_txn() {
        let cfg = LongLivedConfig {
            long_writes: false,
            ..Default::default()
        };
        let sc = long_lived(&cfg, 3);
        let long = sc.txns.txn(TxnId(0));
        assert!(long.ops().iter().all(|o| !o.is_write()));
        assert_eq!(long.len(), 6);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = LongLivedConfig::default();
        assert_eq!(long_lived(&cfg, 4).txns, long_lived(&cfg, 4).txns);
    }

    #[test]
    fn long_scan_visits_distinct_objects_when_possible() {
        let sc = long_lived(&LongLivedConfig::default(), 5);
        let long = sc.txns.txn(TxnId(0));
        let objects: std::collections::HashSet<_> = long.ops().iter().map(|o| o.object).collect();
        assert_eq!(objects.len(), 6);
    }
}
