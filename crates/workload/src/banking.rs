//! The banking scenario from the paper's introduction (after Lynch
//! \[Lyn83\]).
//!
//! "Customers are grouped into families each of which shares a common set
//! of accounts. The bank may wish to take a complete bank audit of all
//! accounts, while creditors may require a credit audit of specific
//! families. In this case the bank audit should be atomic with respect to
//! all other transactions and vice versa. The relative atomicity
//! specifications for credit audits and customer transactions are much
//! less severe. Finally, customer transactions in the same family can be
//! arbitrarily interleaved."
//!
//! Concretely:
//!
//! * **bank audit** — reads every account; single atomic unit toward every
//!   transaction, and every transaction is a single unit toward it;
//! * **credit audit (family f)** — reads every account of `f`; atomic
//!   toward customers of `f` (they would corrupt the audit), but exposes a
//!   breakpoint after every read to transactions of *other* families;
//! * **customer (family f)** — transfers between accounts of `f`; freely
//!   interleavable by same-family customers and by other families'
//!   customers (disjoint data), but a single unit toward audits that cover
//!   its family.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relser_core::op::AccessMode;
use relser_core::spec::AtomicitySpec;
use relser_core::txn::TxnSet;

/// What role a generated transaction plays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BankTxnKind {
    /// A customer transaction operating within `family`.
    Customer {
        /// Owning family index.
        family: usize,
    },
    /// A credit audit reading all accounts of `family`.
    CreditAudit {
        /// Audited family index.
        family: usize,
    },
    /// A bank-wide audit reading every account.
    BankAudit,
}

/// Parameters of the banking scenario.
#[derive(Clone, Debug)]
pub struct BankingConfig {
    /// Number of families.
    pub families: usize,
    /// Accounts per family.
    pub accounts_per_family: usize,
    /// Customer transactions per family.
    pub customers_per_family: usize,
    /// Transfers (read+write pairs) per customer transaction.
    pub transfers_per_customer: usize,
    /// Generate one credit audit per family?
    pub credit_audits: bool,
    /// Generate the global bank audit?
    pub bank_audit: bool,
}

impl Default for BankingConfig {
    fn default() -> Self {
        BankingConfig {
            families: 2,
            accounts_per_family: 3,
            customers_per_family: 2,
            transfers_per_customer: 2,
            credit_audits: true,
            bank_audit: true,
        }
    }
}

/// A generated banking universe.
#[derive(Clone, Debug)]
pub struct BankingScenario {
    /// The transactions.
    pub txns: TxnSet,
    /// The relative atomicity specification described in the module docs.
    pub spec: AtomicitySpec,
    /// Role of each transaction, indexed by `TxnId`.
    pub kinds: Vec<BankTxnKind>,
}

/// Generates the banking scenario.
///
/// ```
/// use relser_workload::banking::{banking, BankingConfig};
/// let sc = banking(&BankingConfig::default(), 7);
/// // 2 families x 2 customers + 2 credit audits + 1 bank audit.
/// assert_eq!(sc.txns.len(), 7);
/// // The bank audit is absolutely atomic toward everyone.
/// let audit = relser_core::ids::TxnId(6);
/// assert!(sc.spec.breakpoints(audit, relser_core::ids::TxnId(0)).is_empty());
/// ```
pub fn banking(cfg: &BankingConfig, seed: u64) -> BankingScenario {
    assert!(cfg.families > 0 && cfg.accounts_per_family > 0);
    assert!(cfg.transfers_per_customer > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let account = |f: usize, a: usize| format!("f{f}_acct{a}");

    let mut set = TxnSet::new();
    let mut kinds = Vec::new();

    // Customers.
    for f in 0..cfg.families {
        for _ in 0..cfg.customers_per_family {
            let mut names: Vec<String> = Vec::new();
            for _ in 0..cfg.transfers_per_customer {
                let src = rng.random_range(0..cfg.accounts_per_family);
                let mut dst = rng.random_range(0..cfg.accounts_per_family);
                if cfg.accounts_per_family > 1 {
                    while dst == src {
                        dst = rng.random_range(0..cfg.accounts_per_family);
                    }
                }
                names.push(account(f, src));
                names.push(account(f, src));
                names.push(account(f, dst));
                names.push(account(f, dst));
            }
            let ops: Vec<(AccessMode, &str)> = names
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    // r src, w src, r dst, w dst per transfer.
                    let mode = if i % 2 == 0 {
                        AccessMode::Read
                    } else {
                        AccessMode::Write
                    };
                    (mode, n.as_str())
                })
                .collect();
            set.add(&ops).expect("customer txn non-empty");
            kinds.push(BankTxnKind::Customer { family: f });
        }
    }

    // Credit audits.
    if cfg.credit_audits {
        for f in 0..cfg.families {
            let names: Vec<String> = (0..cfg.accounts_per_family)
                .map(|a| account(f, a))
                .collect();
            let ops: Vec<(AccessMode, &str)> = names
                .iter()
                .map(|n| (AccessMode::Read, n.as_str()))
                .collect();
            set.add(&ops).expect("credit audit non-empty");
            kinds.push(BankTxnKind::CreditAudit { family: f });
        }
    }

    // Bank audit.
    if cfg.bank_audit {
        let names: Vec<String> = (0..cfg.families)
            .flat_map(|f| (0..cfg.accounts_per_family).map(move |a| account(f, a)))
            .collect();
        let ops: Vec<(AccessMode, &str)> = names
            .iter()
            .map(|n| (AccessMode::Read, n.as_str()))
            .collect();
        set.add(&ops).expect("bank audit non-empty");
        kinds.push(BankTxnKind::BankAudit);
    }

    // Specification.
    let mut spec = AtomicitySpec::absolute(&set);
    let family_of = |k: &BankTxnKind| match *k {
        BankTxnKind::Customer { family } | BankTxnKind::CreditAudit { family } => Some(family),
        BankTxnKind::BankAudit => None,
    };
    for i in set.txn_ids() {
        for j in set.txn_ids() {
            if i == j {
                continue;
            }
            let ki = kinds[i.index()];
            let kj = kinds[j.index()];
            let all_breaks: Vec<u32> = (1..set.txn(i).len() as u32).collect();
            let free = match (ki, kj) {
                // Bank audit: absolutely atomic in both directions.
                (BankTxnKind::BankAudit, _) | (_, BankTxnKind::BankAudit) => false,
                // Credit audit of f vs customer of f: atomic. Other
                // families: free.
                (BankTxnKind::CreditAudit { family }, BankTxnKind::Customer { family: cf }) => {
                    family != cf
                }
                (BankTxnKind::Customer { family: cf }, BankTxnKind::CreditAudit { family }) => {
                    family != cf
                }
                // Audits of different families never share accounts; free.
                (BankTxnKind::CreditAudit { .. }, BankTxnKind::CreditAudit { .. }) => {
                    family_of(&ki) != family_of(&kj)
                }
                // Customers: arbitrarily interleavable.
                (BankTxnKind::Customer { .. }, BankTxnKind::Customer { .. }) => true,
            };
            if free {
                spec.set_breakpoints(i, j, &all_breaks).expect("valid");
            }
        }
    }
    BankingScenario {
        txns: set,
        spec,
        kinds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relser_core::ids::TxnId;

    #[test]
    fn scenario_shape() {
        let cfg = BankingConfig::default();
        let sc = banking(&cfg, 1);
        // 2 families × 2 customers + 2 credit audits + 1 bank audit = 7.
        assert_eq!(sc.txns.len(), 7);
        assert_eq!(sc.kinds.len(), 7);
        assert_eq!(sc.kinds[6], BankTxnKind::BankAudit);
        // Bank audit reads all 6 accounts.
        assert_eq!(sc.txns.txn(TxnId(6)).len(), 6);
    }

    #[test]
    fn bank_audit_is_absolutely_atomic_both_ways() {
        let sc = banking(&BankingConfig::default(), 2);
        let audit = TxnId(6);
        for j in sc.txns.txn_ids() {
            if j == audit {
                continue;
            }
            assert!(sc.spec.breakpoints(audit, j).is_empty());
            assert!(sc.spec.breakpoints(j, audit).is_empty());
        }
    }

    #[test]
    fn same_family_customers_fully_interleavable() {
        let sc = banking(&BankingConfig::default(), 3);
        // Customers 0 and 1 are family 0.
        let (a, b) = (TxnId(0), TxnId(1));
        let len = sc.txns.txn(a).len() as u32;
        assert_eq!(
            sc.spec.breakpoints(a, b),
            (1..len).collect::<Vec<_>>().as_slice()
        );
    }

    #[test]
    fn credit_audit_atomic_toward_own_family_only() {
        let sc = banking(&BankingConfig::default(), 4);
        // kinds: 0,1 customers f0; 2,3 customers f1; 4 audit f0; 5 audit f1.
        let audit_f0 = TxnId(4);
        let cust_f0 = TxnId(0);
        let cust_f1 = TxnId(2);
        assert!(sc.spec.breakpoints(audit_f0, cust_f0).is_empty());
        assert!(!sc.spec.breakpoints(audit_f0, cust_f1).is_empty());
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let cfg = BankingConfig::default();
        assert_eq!(banking(&cfg, 5).txns, banking(&cfg, 5).txns);
    }

    #[test]
    fn customers_only_touch_their_family_accounts() {
        let sc = banking(&BankingConfig::default(), 6);
        for (t, kind) in sc.txns.txns().iter().zip(&sc.kinds) {
            if let BankTxnKind::Customer { family } = kind {
                for op in t.ops() {
                    let name = sc.txns.objects().name(op.object);
                    assert!(name.starts_with(&format!("f{family}_")), "{name}");
                }
            }
        }
    }
}
