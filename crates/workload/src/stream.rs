//! Open-system request stream adapter: turns a closed [`TxnSet`] into a
//! concurrent arrival stream that any number of worker threads can drain.
//!
//! The simulator and driver are closed systems — they own the whole
//! transaction set and pick the next requester themselves. A *server*
//! instead sees transactions arrive from outside and hands each to
//! whichever worker is free. [`RequestStream`] models that boundary: it
//! fixes a seeded arrival order over the transaction ids up front
//! (reproducible run-to-run) and lets workers claim the next arrival with
//! one atomic fetch — no locks, no coordination beyond the counter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relser_core::ids::TxnId;
use relser_core::txn::TxnSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A seeded arrival order over a transaction set, drained concurrently.
///
/// ```
/// use relser_core::txn::TxnSet;
/// use relser_workload::stream::RequestStream;
/// let txns = TxnSet::parse(&["r1[x]", "r2[y]", "r3[z]"]).unwrap();
/// let stream = RequestStream::shuffled(&txns, 7);
/// let mut seen: Vec<_> = std::iter::from_fn(|| stream.next()).collect();
/// seen.sort();
/// assert_eq!(seen.len(), 3);
/// assert!(stream.next().is_none());
/// ```
#[derive(Debug)]
pub struct RequestStream {
    order: Vec<TxnId>,
    cursor: AtomicUsize,
}

impl RequestStream {
    /// Arrival order = a seeded uniform shuffle of the transaction ids
    /// (Fisher–Yates). Two streams with the same seed over the same set
    /// produce the same arrival order.
    pub fn shuffled(txns: &TxnSet, seed: u64) -> Self {
        let mut order: Vec<TxnId> = txns.txn_ids().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        RequestStream {
            order,
            cursor: AtomicUsize::new(0),
        }
    }

    /// Arrival order = transaction-id order (deterministic, unshuffled).
    pub fn in_order(txns: &TxnSet) -> Self {
        RequestStream {
            order: txns.txn_ids().collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Claims the next arrival, or `None` when the stream is drained.
    /// Safe to call from any number of threads; each id is handed out
    /// exactly once.
    pub fn next(&self) -> Option<TxnId> {
        let k = self.cursor.fetch_add(1, Ordering::Relaxed);
        self.order.get(k).copied()
    }

    /// Total arrivals in the stream.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Is the stream empty (zero transactions)?
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Arrivals not yet claimed.
    pub fn remaining(&self) -> usize {
        self.order
            .len()
            .saturating_sub(self.cursor.load(Ordering::Relaxed))
    }

    /// The full arrival order (for replay / inspection).
    pub fn order(&self) -> &[TxnId] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn txns(n: usize) -> TxnSet {
        let sources: Vec<String> = (0..n).map(|i| format!("r{}[x{}]", i + 1, i)).collect();
        let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
        TxnSet::parse(&refs).unwrap()
    }

    #[test]
    fn same_seed_same_order() {
        let t = txns(20);
        let a = RequestStream::shuffled(&t, 9);
        let b = RequestStream::shuffled(&t, 9);
        assert_eq!(a.order(), b.order());
    }

    #[test]
    fn different_seeds_usually_differ() {
        let t = txns(20);
        let orders: HashSet<Vec<TxnId>> = (0..5)
            .map(|s| RequestStream::shuffled(&t, s).order().to_vec())
            .collect();
        assert!(orders.len() > 1);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let t = txns(50);
        let s = RequestStream::shuffled(&t, 3);
        let mut ids: Vec<TxnId> = s.order().to_vec();
        ids.sort();
        assert_eq!(ids, t.txn_ids().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_drain_hands_each_id_out_once() {
        let t = txns(64);
        let s = Arc::new(RequestStream::shuffled(&t, 1));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(id) = s.next() {
                    got.push(id);
                }
                got
            }));
        }
        let mut all: Vec<TxnId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        assert_eq!(all, t.txn_ids().collect::<Vec<_>>());
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn in_order_stream_preserves_ids() {
        let t = txns(5);
        let s = RequestStream::in_order(&t);
        assert_eq!(s.len(), 5);
        assert_eq!(s.next(), Some(TxnId(0)));
        assert_eq!(s.next(), Some(TxnId(1)));
        assert_eq!(s.remaining(), 3);
    }
}
