//! The computer-aided-design scenario from the paper's introduction and
//! §5: "users are divided into teams of specialized experts … within each
//! group any interleavings may be allowed while different atomicity units
//! can be specified among the different groups depending on the degree of
//! collaboration."
//!
//! Each team owns a set of design modules. A designer transaction performs
//! several *phases*; each phase edits one module of the designer's team
//! (read then write) and optionally reads a shared interface object.
//! Specification: free interleaving inside a team; toward other teams a
//! designer exposes breakpoints only at **phase boundaries** — other teams
//! may observe a design between phases but never mid-phase.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relser_core::op::AccessMode;
use relser_core::spec::AtomicitySpec;
use relser_core::txn::TxnSet;

/// Parameters of the CAD scenario.
#[derive(Clone, Debug)]
pub struct CadConfig {
    /// Number of teams.
    pub teams: usize,
    /// Designer transactions per team.
    pub designers_per_team: usize,
    /// Modules owned by each team.
    pub modules_per_team: usize,
    /// Phases per designer transaction.
    pub phases: usize,
    /// Probability a phase also reads the shared interface object.
    pub interface_read_prob: f64,
}

impl Default for CadConfig {
    fn default() -> Self {
        CadConfig {
            teams: 2,
            designers_per_team: 2,
            modules_per_team: 3,
            phases: 2,
            interface_read_prob: 0.5,
        }
    }
}

/// A generated CAD universe.
#[derive(Clone, Debug)]
pub struct CadScenario {
    /// The designer transactions, grouped team-by-team in id order.
    pub txns: TxnSet,
    /// Free within a team, phase-boundary units across teams.
    pub spec: AtomicitySpec,
    /// Team of each transaction, indexed by `TxnId`.
    pub team_of: Vec<usize>,
    /// Operation index where each phase starts, per transaction (phase
    /// boundaries exposed across teams).
    pub phase_starts: Vec<Vec<u32>>,
}

/// Generates the CAD scenario.
pub fn cad(cfg: &CadConfig, seed: u64) -> CadScenario {
    assert!(cfg.teams > 0 && cfg.designers_per_team > 0);
    assert!(cfg.modules_per_team > 0 && cfg.phases > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let module = |team: usize, m: usize| format!("team{team}_mod{m}");

    let mut set = TxnSet::new();
    let mut team_of = Vec::new();
    let mut phase_starts: Vec<Vec<u32>> = Vec::new();

    for team in 0..cfg.teams {
        for _ in 0..cfg.designers_per_team {
            let mut names: Vec<(AccessMode, String)> = Vec::new();
            let mut starts = Vec::new();
            for _ in 0..cfg.phases {
                starts.push(names.len() as u32);
                let m = rng.random_range(0..cfg.modules_per_team);
                if rng.random_bool(cfg.interface_read_prob) {
                    names.push((AccessMode::Read, "interface".to_string()));
                }
                names.push((AccessMode::Read, module(team, m)));
                names.push((AccessMode::Write, module(team, m)));
            }
            let ops: Vec<(AccessMode, &str)> =
                names.iter().map(|(m, n)| (*m, n.as_str())).collect();
            set.add(&ops).expect("designer txn non-empty");
            team_of.push(team);
            phase_starts.push(starts);
        }
    }

    let mut spec = AtomicitySpec::absolute(&set);
    for i in set.txn_ids() {
        for j in set.txn_ids() {
            if i == j {
                continue;
            }
            if team_of[i.index()] == team_of[j.index()] {
                // Same team: free interleaving.
                let all: Vec<u32> = (1..set.txn(i).len() as u32).collect();
                spec.set_breakpoints(i, j, &all).expect("valid");
            } else {
                // Cross team: breakpoints at phase boundaries only.
                let breaks: Vec<u32> = phase_starts[i.index()]
                    .iter()
                    .copied()
                    .filter(|&b| b > 0)
                    .collect();
                spec.set_breakpoints(i, j, &breaks).expect("valid");
            }
        }
    }
    CadScenario {
        txns: set,
        spec,
        team_of,
        phase_starts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relser_core::ids::TxnId;

    #[test]
    fn scenario_shape() {
        let sc = cad(&CadConfig::default(), 1);
        assert_eq!(sc.txns.len(), 4);
        assert_eq!(sc.team_of, vec![0, 0, 1, 1]);
        for (t, starts) in sc.txns.txns().iter().zip(&sc.phase_starts) {
            assert_eq!(starts.len(), 2);
            assert!(t.len() >= 4); // two phases of at least r+w
        }
    }

    #[test]
    fn same_team_is_free() {
        let sc = cad(&CadConfig::default(), 2);
        let (a, b) = (TxnId(0), TxnId(1));
        let len = sc.txns.txn(a).len() as u32;
        assert_eq!(sc.spec.breakpoints(a, b), (1..len).collect::<Vec<_>>());
    }

    #[test]
    fn cross_team_breaks_at_phase_boundaries() {
        let sc = cad(&CadConfig::default(), 3);
        let (a, other) = (TxnId(0), TxnId(2));
        let expected: Vec<u32> = sc.phase_starts[0]
            .iter()
            .copied()
            .filter(|&b| b > 0)
            .collect();
        assert_eq!(sc.spec.breakpoints(a, other), expected.as_slice());
        assert!(!expected.is_empty());
    }

    #[test]
    fn teams_touch_disjoint_modules() {
        let sc = cad(&CadConfig::default(), 4);
        for (t, &team) in sc.txns.txns().iter().zip(&sc.team_of) {
            for op in t.ops() {
                let name = sc.txns.objects().name(op.object);
                assert!(
                    name == "interface" || name.starts_with(&format!("team{team}_")),
                    "{name} accessed by team {team}"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CadConfig::default();
        assert_eq!(cad(&cfg, 9).txns, cad(&cfg, 9).txns);
    }
}
