//! Robustness end-to-end tests: shard-core supervision, exactly-once
//! client retries, graceful shutdown, whole-service restart, and the
//! seeded network chaos sweep — all over real loopback sockets.
//!
//! The contract every test closes on: **zero acked-commit loss, zero
//! duplicate commits**, and a merged committed history the offline
//! oracle re-certifies (`Rsg::build(..).is_acyclic()` on the committed
//! projection), cross-checked against the vector-clock certifier.

use relser_core::ids::{OpId, TxnId};
use relser_core::op::AccessMode;
use relser_core::project::Projection;
use relser_core::rsg::Rsg;
use relser_core::spec::AtomicitySpec;
use relser_core::txn::TxnSet;
use relser_net::wire::{Request, Response};
use relser_net::{
    drive_resilient, serve_net_supervised_in, ChaosPlan, NetConfig, ResilientConfig,
    ResilientStats, SuperviseNetConfig, SupervisedNetReport,
};
use relser_protocols::rsg_sgt::RsgSgt;
use relser_server::core::FaultPlan;
use relser_server::recovery::recover_sharded_segments_with_certifier;
use relser_server::Certifier;
use relser_wal::{MemSegmentStore, MemSegmentsHandle};
use relser_workload::stream::RequestStream;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A universe of single-object transactions (every transaction is
/// single-shard under any partition, so all of them are admissible over
/// the wire) with real conflicts: `n_txns` transactions contend on
/// `n_objects` objects.
fn single_object_universe(n_txns: usize, n_objects: usize) -> (TxnSet, AtomicitySpec) {
    let mut txns = TxnSet::new();
    for k in 0..n_txns {
        let name = format!("o{}", k % n_objects);
        if k % 3 == 0 {
            txns.add(&[(AccessMode::Write, name.as_str())]).unwrap();
        } else {
            txns.add(&[
                (AccessMode::Read, name.as_str()),
                (AccessMode::Write, name.as_str()),
            ])
            .unwrap();
        }
    }
    let spec = AtomicitySpec::absolute(&txns);
    (txns, spec)
}

fn stores_for(shards: usize) -> Vec<MemSegmentsHandle> {
    (0..shards).map(|_| MemSegmentStore::new().1).collect()
}

/// The acked-exactly-once contract plus offline re-certification:
/// every commit the client saw acked is in the recovered committed set,
/// no transaction was acked twice, and the merged history passes the
/// paper's oracle on the committed projection.
fn audit(
    txns: &TxnSet,
    spec: &AtomicitySpec,
    report: &SupervisedNetReport,
    stats: &ResilientStats,
) {
    let mut acked: Vec<TxnId> = stats.committed.iter().map(|&(t, _)| t).collect();
    let n = acked.len();
    acked.sort_unstable();
    acked.dedup();
    assert_eq!(acked.len(), n, "no transaction is acked committed twice");
    for txn in &acked {
        assert!(
            report.recovery.committed.contains(txn),
            "acked commit {txn:?} must survive in the recovered history"
        );
    }
    let mut recovered = report.recovery.committed.clone();
    let total = recovered.len();
    recovered.sort_unstable();
    recovered.dedup();
    assert_eq!(recovered.len(), total, "no duplicate commits in recovery");

    let p =
        Projection::subset(txns, spec, &report.recovery.committed).expect("committed projection");
    let history = p
        .schedule(&report.recovery.history)
        .expect("merged history is a schedule of the committed sub-universe");
    assert!(
        Rsg::build(&p.txns, &history, &p.spec).is_acyclic(),
        "merged committed history must re-certify (RSG acyclic)"
    );
}

/// Cross-checks the run's vector-clock recovery against the explicit
/// Theorem 1 oracle on the same retained segment streams.
fn cross_check(
    txns: &TxnSet,
    spec: &AtomicitySpec,
    stores: &[MemSegmentsHandle],
    report: &SupervisedNetReport,
) {
    let segments: Vec<Vec<(u64, Vec<u8>)>> = stores.iter().map(|h| h.segments()).collect();
    let oracle = recover_sharded_segments_with_certifier(
        txns,
        spec,
        |_| Box::new(RsgSgt::new(txns, spec)),
        &segments,
        Certifier::Theorem1Rsg,
    )
    .expect("oracle recovery");
    assert_eq!(
        oracle.committed, report.recovery.committed,
        "vclock and Rsg certifiers agree on the committed set"
    );
}

/// Kill shard 0's core mid-run: the supervisor must recover it in place
/// (restarts ≥ 1), the other shard must keep committing throughout, and
/// the client — quiet wire, retries only — must land every transaction
/// with no acked loss and no duplicates.
#[test]
fn shard_core_crash_recovers_in_place_without_losing_acks() {
    let (txns, spec) = single_object_universe(120, 8);
    let total = txns.len();
    let stream = RequestStream::shuffled(&txns, 3);
    let cfg = NetConfig::default();
    let sup = SuperviseNetConfig::default();
    let stores = stores_for(sup.shards);
    let faults = vec![
        FaultPlan {
            crash_at_command: Some(60),
            ..FaultPlan::default()
        },
        FaultPlan::default(),
    ];
    let rcfg = ResilientConfig::default();
    let (report, stats) = serve_net_supervised_in(
        &txns,
        &spec,
        |_| Box::new(RsgSgt::new(&txns, &spec)),
        &cfg,
        &sup,
        &faults,
        &stores,
        |addr| drive_resilient(addr, &txns, &stream, &rcfg, &ChaosPlan::quiet()),
    )
    .expect("serve_net_supervised");

    assert!(stats.lost.is_empty(), "nothing lost: {:?}", stats.lost);
    assert_eq!(stats.committed.len(), total, "every transaction committed");
    assert!(
        report.runs[0].restarts >= 1,
        "shard 0 crashed and was restarted in place"
    );
    assert!(!report.runs[0].gave_up && !report.runs[1].gave_up);
    assert!(
        !report.recovery.shards[1].committed.is_empty(),
        "the non-degraded shard kept committing"
    );
    assert!(
        report.metrics.supervisor_restarts >= 1,
        "supervisor restarts surface in the merged metrics"
    );
    audit(&txns, &spec, &report, &stats);
    cross_check(&txns, &spec, &stores, &report);
}

/// One request/response exchange on a blocking socket (no pipelining).
fn call(sock: &mut TcpStream, req: Request) -> Response {
    let mut out = Vec::new();
    req.encode_into(&mut out);
    sock.write_all(&out).expect("request write");
    read_response(sock).expect("a response before EOF")
}

fn read_response(sock: &mut TcpStream) -> Option<Response> {
    let mut buf = Vec::new();
    let mut tmp = [0u8; 256];
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok((resp, _)) = Response::decode(&buf) {
            return Some(resp);
        }
        if Instant::now() >= deadline {
            return None;
        }
        match sock.read(&mut tmp) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}

/// Graceful shutdown and whole-service restart:
///
/// * life 1 commits `T0` on a session, leaves `T1` live, and stays
///   connected through the shutdown — the server must answer with a
///   typed `Closing` farewell, and the acked commit must be durable;
/// * life 2 (same segment stores) resumes the session and **retries the
///   same commit under its original request id** — the durable retry
///   table must answer `Committed` again (exactly-once across restart),
///   and the unfinished `T1` must not have committed.
#[test]
fn graceful_shutdown_then_restart_keeps_acked_commits_exactly_once() {
    let (txns, spec) = single_object_universe(8, 4);
    let cfg = NetConfig::default();
    let sup = SuperviseNetConfig::default();
    let stores = stores_for(sup.shards);
    let session = 0xCAFE;
    let commit_req = 4;

    let (report1, mut sock) = serve_net_supervised_in(
        &txns,
        &spec,
        |_| Box::new(RsgSgt::new(&txns, &spec)),
        &cfg,
        &sup,
        &[],
        &stores,
        |addr| {
            let mut sock = TcpStream::connect(addr).expect("connect");
            sock.set_read_timeout(Some(Duration::from_millis(2)))
                .unwrap();
            let hello = call(
                &mut sock,
                Request::Hello {
                    req_id: 1,
                    session,
                    resume_from: 0,
                },
            );
            assert!(matches!(hello, Response::Welcome { req_id: 1 }));
            let t0 = TxnId(0);
            assert!(matches!(
                call(&mut sock, Request::Begin { req_id: 2, txn: t0 }),
                Response::Granted { req_id: 2 }
            ));
            let op = OpId { txn: t0, index: 0 };
            let object = txns.op(op).unwrap().object;
            assert!(matches!(
                call(
                    &mut sock,
                    Request::Write {
                        req_id: 3,
                        op,
                        object
                    }
                ),
                Response::Granted { req_id: 3 }
            ));
            assert!(matches!(
                call(
                    &mut sock,
                    Request::Commit {
                        req_id: commit_req,
                        txn: t0
                    }
                ),
                Response::Committed { req_id: 4 }
            ));
            // Leave T1 live across the shutdown.
            assert!(matches!(
                call(
                    &mut sock,
                    Request::Begin {
                        req_id: 5,
                        txn: TxnId(1)
                    }
                ),
                Response::Granted { req_id: 5 }
            ));
            sock // keep the socket open through the shutdown
        },
    )
    .expect("life 1");

    // The shutdown farewell: a typed Closing frame, not a silent close.
    let farewell = read_response(&mut sock);
    assert!(
        matches!(farewell, Some(Response::Closing { .. })),
        "graceful shutdown announces itself: {farewell:?}"
    );
    assert!(report1.net.closing_replies >= 1);
    assert!(report1.recovery.committed.contains(&TxnId(0)));
    assert!(
        !report1.recovery.committed.contains(&TxnId(1)),
        "the unfinished transaction was drained as an abort"
    );

    // Life 2: same stores — the service restarts from its logs.
    let (report2, ()) = serve_net_supervised_in(
        &txns,
        &spec,
        |_| Box::new(RsgSgt::new(&txns, &spec)),
        &cfg,
        &sup,
        &[],
        &stores,
        |addr| {
            let mut sock = TcpStream::connect(addr).expect("reconnect");
            sock.set_read_timeout(Some(Duration::from_millis(2)))
                .unwrap();
            let hello = call(
                &mut sock,
                Request::Hello {
                    req_id: 6,
                    session,
                    resume_from: commit_req,
                },
            );
            assert!(matches!(hello, Response::Welcome { req_id: 6 }));
            // The original verdict, again, under the original req_id.
            let retry = call(
                &mut sock,
                Request::Commit {
                    req_id: commit_req,
                    txn: TxnId(0),
                },
            );
            assert!(
                matches!(retry, Response::Committed { req_id: 4 }),
                "a retried commit gets its original verdict across a \
                 whole-service restart: {retry:?}"
            );
        },
    )
    .expect("life 2");

    assert!(
        report2.net.dup_commit_fast >= 1,
        "the retry was answered from the durable session table"
    );
    let n = report2
        .recovery
        .committed
        .iter()
        .filter(|&&t| t == TxnId(0))
        .count();
    assert_eq!(n, 1, "acked commit survives the restart exactly once");
}

/// The chaos sweep: seeded client-side wire faults (resets, torn
/// writes, slowloris stalls), server-side dropped replies, and a shard
/// core killed mid-run — all at once. The run must terminate with every
/// transaction committed exactly once, every acked commit durable, and
/// the merged history re-certified by both certifiers.
#[test]
fn chaos_sweep_commits_exactly_once_under_wire_and_core_faults() {
    let (txns, spec) = single_object_universe(160, 10);
    let total = txns.len();
    let stream = RequestStream::shuffled(&txns, 13);
    // Tight watchdogs (builder-configured) so lost replies resolve fast.
    let cfg = NetConfig::default().with_reply_timeout(Duration::from_millis(300));
    let sup = SuperviseNetConfig::default();
    let stores = stores_for(sup.shards);
    let faults = vec![
        FaultPlan {
            crash_at_command: Some(45),
            ..FaultPlan::default()
        },
        FaultPlan {
            drop_replies: vec![10, 30],
            ..FaultPlan::default()
        },
    ];
    let chaos = ChaosPlan::stormy(0xC4A05);
    let rcfg = ResilientConfig {
        connections: 6,
        streams: 4,
        deadline: Duration::from_millis(800),
        ..ResilientConfig::default()
    };
    let (report, stats) = serve_net_supervised_in(
        &txns,
        &spec,
        |_| Box::new(RsgSgt::new(&txns, &spec)),
        &cfg,
        &sup,
        &faults,
        &stores,
        |addr| drive_resilient(addr, &txns, &stream, &rcfg, &chaos),
    )
    .expect("chaos run");

    assert!(stats.wire_faults > 0, "the storm actually fired");
    assert!(
        stats.reconnects > 0,
        "faults forced reconnect-with-session-resume"
    );
    assert!(stats.lost.is_empty(), "nothing lost: {:?}", stats.lost);
    assert_eq!(
        stats.committed.len(),
        total,
        "every transaction committed exactly once despite the chaos"
    );
    assert!(
        report.runs[0].restarts >= 1,
        "the killed shard core was recovered in place"
    );
    audit(&txns, &spec, &report, &stats);
    cross_check(&txns, &spec, &stores, &report);
}

/// Satellite: the watchdog/deadline knobs exist, have sane defaults, and
/// the builders override them.
#[test]
fn timeout_defaults_and_builders() {
    let d = NetConfig::default();
    assert_eq!(d.reply_timeout, Duration::from_secs(5));
    assert_eq!(d.block_timeout, Duration::from_millis(100));
    let tuned = NetConfig::default()
        .with_reply_timeout(Duration::from_millis(250))
        .with_block_timeout(Duration::from_millis(40))
        .with_poll_quantum(Duration::from_micros(50))
        .with_reactors(3);
    assert_eq!(tuned.reply_timeout, Duration::from_millis(250));
    assert_eq!(tuned.block_timeout, Duration::from_millis(40));
    assert_eq!(tuned.poll_quantum, Duration::from_micros(50));
    assert_eq!(tuned.reactors, 3);

    let r = ResilientConfig::default();
    assert_eq!(r.deadline, Duration::from_secs(2));
    assert!(r.backoff < r.backoff_max);
    assert!(r.connections >= 1 && r.streams >= 1);
    assert!(r.max_reconnects >= 1);
}
