//! End-to-end tests over real sockets: the banking workload driven
//! through the TCP front-end, pipelined across ≥64 concurrent
//! connections, with every committed history re-certified by the offline
//! RSG oracle — plus the degrade-don't-die contracts (shed, corrupt
//! frames, lost replies) exercised wire-to-wire.
//!
//! Every test here ends the same way: take the server's granted-op log,
//! rebuild the schedule, and assert
//! `Rsg::build(&txns, &history, &spec).is_acyclic()` — the network layer
//! must never be able to commit a history the paper's oracle rejects.

use relser_core::ids::TxnId;
use relser_core::project::Projection;
use relser_core::rsg::Rsg;
use relser_core::spec::AtomicitySpec;
use relser_core::txn::TxnSet;
use relser_net::wire::{ErrorCode, Response};
use relser_net::{drive, serve_net, ClientStats, LoadConfig, NetConfig, NetReport};
use relser_protocols::rsg_sgt::RsgSgt;
use relser_protocols::two_pl::TwoPhaseLocking;
use relser_server::core::FaultPlan;
use relser_server::OverloadPolicy;
use relser_wal::{FsyncPolicy, MemStorage, WalWriter};
use relser_workload::banking::{banking, BankingConfig, BankingScenario};
use relser_workload::stream::RequestStream;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A banking universe big enough to keep 64 connections busy at once.
fn big_banking(seed: u64) -> BankingScenario {
    banking(
        &BankingConfig {
            families: 64,
            accounts_per_family: 3,
            customers_per_family: 3,
            transfers_per_customer: 2,
            credit_audits: true,
            bank_audit: true,
        },
        seed,
    )
}

/// Offline re-certification: project the universe onto the committed
/// transactions (runs with degraded connections commit a strict subset),
/// interpret the granted log as a schedule of that sub-universe, and
/// demand its RSG be acyclic under the projected specification.
fn recertify(txns: &TxnSet, spec: &AtomicitySpec, report: &NetReport) {
    for op in &report.log {
        assert!(
            report.committed.contains(&op.txn),
            "history holds ops of committed transactions only"
        );
    }
    let p = Projection::subset(txns, spec, &report.committed).expect("committed projection");
    let history = p
        .schedule(&report.log)
        .expect("granted log is a schedule of the committed sub-universe");
    let rsg = Rsg::build(&p.txns, &history, &p.spec);
    assert!(
        rsg.is_acyclic(),
        "committed history must be relatively serializable (RSG acyclic)"
    );
}

/// Every transaction the client says committed, the server committed —
/// and vice versa.
fn reconcile(report: &NetReport, stats: &ClientStats, total: usize) {
    assert_eq!(stats.committed as usize, report.committed.len());
    assert_eq!(
        stats.committed as usize + stats.lost.len(),
        total,
        "every transaction settled: committed or accounted lost"
    );
    for txn in &stats.lost {
        assert!(
            !report.committed.contains(txn),
            "a lost transaction must not appear committed ({txn:?})"
        );
    }
}

/// The acceptance test: banking over real TCP, 64 concurrent
/// connections, 4 transaction streams pipelined per connection, every
/// commit acknowledged wire-to-wire and the full history re-certified.
#[test]
fn banking_over_64_pipelined_connections_is_recertified() {
    let sc = big_banking(11);
    let total = sc.txns.len();
    let scheduler = Box::new(RsgSgt::new(&sc.txns, &sc.spec));
    let stream = RequestStream::shuffled(&sc.txns, 7);
    let cfg = NetConfig {
        reactors: 4,
        ..NetConfig::default()
    };
    let load = LoadConfig {
        connections: 64,
        streams: 4,
        ..LoadConfig::default()
    };
    let (report, stats) = serve_net(
        &sc.txns,
        scheduler,
        &cfg,
        &FaultPlan::default(),
        None,
        |addr| drive(addr, &sc.txns, &stream, &load),
    )
    .expect("serve_net");

    assert_eq!(stats.failed_connections, 0, "no connection may die");
    assert_eq!(stats.committed as usize, total, "every transaction commits");
    assert!(stats.lost.is_empty());
    assert_eq!(report.net.connections, 64);
    reconcile(&report, &stats, total);
    recertify(&sc.txns, &sc.spec, &report);

    // Wire-to-wire accounting: every stage of every request was timed.
    let committed_ops = sc.txns.total_ops() as u64;
    assert!(report.net.decode.count() > 0, "decode stage timed");
    assert!(report.admit.count() >= committed_ops, "admit stage timed");
    assert!(report.net.reply.count() > 0, "reply stage timed");
    assert!(report.net.wire.count() > 0, "wire-to-wire timed");
    assert!(report.metrics.queue_wait.count() > 0, "queue wait timed");
}

/// Same drive with a real (in-memory) WAL under `FsyncPolicy::Always`:
/// the fsync sits inside the wire-to-wire commit path and is timed as
/// its own stage.
#[test]
fn durable_commits_time_the_fsync_stage() {
    let sc = banking(&BankingConfig::default(), 3);
    let total = sc.txns.len();
    let scheduler = Box::new(RsgSgt::new(&sc.txns, &sc.spec));
    let stream = RequestStream::shuffled(&sc.txns, 5);
    let (mem, _handle) = MemStorage::new();
    let mut wal = WalWriter::new(Box::new(mem), FsyncPolicy::Always).expect("wal");
    let load = LoadConfig {
        connections: 4,
        streams: 2,
        ..LoadConfig::default()
    };
    let (report, stats) = serve_net(
        &sc.txns,
        scheduler,
        &NetConfig::default(),
        &FaultPlan::default(),
        Some(&mut wal),
        |addr| drive(addr, &sc.txns, &stream, &load),
    )
    .expect("serve_net");

    assert_eq!(stats.committed as usize, total);
    assert!(
        report.metrics.wal_sync.count() > 0,
        "fsyncs inside the commit path must be timed"
    );
    recertify(&sc.txns, &sc.spec, &report);
}

/// Under `OverloadPolicy::Shed` with a starved queue, overload surfaces
/// as explicit wire-level `Shed` responses — and since the client
/// retries them, the run still commits everything and re-certifies.
#[test]
fn shed_policy_answers_shed_on_the_wire() {
    let sc = big_banking(17);
    let total = sc.txns.len();
    let scheduler = Box::new(RsgSgt::new(&sc.txns, &sc.spec));
    let stream = RequestStream::shuffled(&sc.txns, 23);
    // A one-slot queue under 128 pipelined streams starves deferred
    // begins/commits for a long time by design; a generous reply
    // watchdog keeps the server from culling alive-but-starved
    // connections on slow (debug, loaded) machines — this test measures
    // shed semantics, not watchdog tuning.
    let cfg = NetConfig {
        reactors: 2,
        queue_capacity: 1,
        batch_max: 1,
        policy: OverloadPolicy::Shed,
        ..NetConfig::default()
    }
    .with_reply_timeout(Duration::from_secs(60));
    let load = LoadConfig {
        connections: 16,
        streams: 8,
        reply_timeout: Duration::from_secs(120),
        ..LoadConfig::default()
    };
    let (report, stats) = serve_net(
        &sc.txns,
        scheduler,
        &cfg,
        &FaultPlan::default(),
        None,
        |addr| drive(addr, &sc.txns, &stream, &load),
    )
    .expect("serve_net");

    assert_eq!(
        stats.failed_connections, 0,
        "no connection may die under pure shed backpressure: {stats:?}"
    );
    assert_eq!(
        stats.committed as usize, total,
        "sheds are retried, not lost: {stats:?}"
    );
    assert_eq!(
        stats.sheds, report.net.sheds,
        "client and server agree on sheds"
    );
    assert!(
        report.net.sheds > 0,
        "a one-slot queue under 128 pipelined streams must shed"
    );
    recertify(&sc.txns, &sc.spec, &report);
}

/// Strict 2PL over the wire: operations block server-side (the reactor
/// resubmits them on progress, never exposing `Blocked` to the client)
/// and deadlocks resolve as wire-level `Aborted` responses the client
/// restarts from. Conflict-serializable ⇒ RSG-acyclic under the
/// absolute specification (Lemma 1).
#[test]
fn two_pl_blocks_and_restarts_over_the_wire() {
    let sc = banking(&BankingConfig::default(), 29);
    let total = sc.txns.len();
    let absolute = AtomicitySpec::absolute(&sc.txns);
    let scheduler = Box::new(TwoPhaseLocking::new(&sc.txns));
    let stream = RequestStream::shuffled(&sc.txns, 31);
    let cfg = NetConfig {
        block_timeout: Duration::from_millis(50),
        ..NetConfig::default()
    };
    let load = LoadConfig {
        connections: 4,
        streams: 2,
        ..LoadConfig::default()
    };
    let (report, stats) = serve_net(
        &sc.txns,
        scheduler,
        &cfg,
        &FaultPlan::default(),
        None,
        |addr| drive(addr, &sc.txns, &stream, &load),
    )
    .expect("serve_net");

    assert_eq!(stats.committed as usize, total, "restarts retry to commit");
    recertify(&sc.txns, &absolute, &report);
}

/// A client that speaks garbage is answered `Error(BadRequest)` and
/// disconnected — while well-behaved connections on the same server
/// keep committing, and the history still re-certifies.
#[test]
fn corrupt_frames_close_one_connection_not_the_server() {
    let sc = banking(&BankingConfig::default(), 41);
    let total = sc.txns.len();
    let scheduler = Box::new(RsgSgt::new(&sc.txns, &sc.spec));
    let stream = RequestStream::shuffled(&sc.txns, 43);
    let load = LoadConfig {
        connections: 4,
        streams: 2,
        ..LoadConfig::default()
    };
    let (report, (stats, vandal_reply)) = serve_net(
        &sc.txns,
        scheduler,
        &NetConfig::default(),
        &FaultPlan::default(),
        None,
        |addr| {
            // The vandal: a valid length prefix with a corrupt body.
            let mut vandal = TcpStream::connect(addr).expect("connect");
            let mut garbage = 12u32.to_le_bytes().to_vec();
            garbage.extend_from_slice(&[0xde; 16]);
            vandal.write_all(&garbage).expect("write garbage");
            // Honest load on other connections, concurrently.
            let stats = drive(addr, &sc.txns, &stream, &load);
            // The vandal got a typed error, then EOF — nothing else.
            let mut buf = Vec::new();
            vandal.read_to_end(&mut buf).expect("read to eof");
            (stats, buf)
        },
    )
    .expect("serve_net");

    let (resp, n) = Response::decode(&vandal_reply).expect("typed error before close");
    assert_eq!(n, vandal_reply.len(), "error is the last thing sent");
    assert!(
        matches!(
            resp,
            Response::Error {
                req_id: 0,
                code: ErrorCode::BadRequest
            }
        ),
        "got {resp:?}"
    );
    assert_eq!(report.net.bad_frame_closes, 1);
    assert_eq!(stats.failed_connections, 0, "honest connections unharmed");
    assert_eq!(stats.committed as usize, total);
    recertify(&sc.txns, &sc.spec, &report);
}

/// An injected reply loss (the core silently drops one request's reply
/// cell) degrades exactly the connection that owned the request: the
/// server's watchdog answers `Error(ReplyLost)` and closes it, its
/// in-flight transactions are aborted and accounted lost by the client,
/// and everything else commits and re-certifies.
#[test]
fn lost_reply_degrades_only_its_connection() {
    let sc = big_banking(53);
    let total = sc.txns.len();
    let scheduler = Box::new(RsgSgt::new(&sc.txns, &sc.spec));
    let stream = RequestStream::shuffled(&sc.txns, 59);
    let faults = FaultPlan {
        drop_replies: vec![40],
        ..FaultPlan::default()
    };
    let cfg = NetConfig {
        // Short enough to fire inside the test's lifetime, long enough
        // that a scheduling stall on a loaded test machine cannot trip
        // the watchdog on an innocent connection.
        reply_timeout: Duration::from_secs(2),
        ..NetConfig::default()
    };
    let load = LoadConfig {
        connections: 8,
        streams: 4,
        ..LoadConfig::default()
    };
    let (report, stats) = serve_net(&sc.txns, scheduler, &cfg, &faults, None, |addr| {
        drive(addr, &sc.txns, &stream, &load)
    })
    .expect("serve_net");

    assert_eq!(report.net.reply_lost_closes, 1, "exactly one victim");
    assert_eq!(stats.failed_connections, 1);
    assert!(
        !stats.lost.is_empty() && stats.lost.len() <= load.streams,
        "the victim loses at most its in-flight streams, lost {}",
        stats.lost.len()
    );
    assert!(
        stats.committed as usize >= total - load.streams,
        "everyone else keeps committing"
    );
    reconcile(&report, &stats, total);
    recertify(&sc.txns, &sc.spec, &report);
}

/// Pipelining is real: with one connection and K streams, responses for
/// different streams interleave (the server answers out of lockstep),
/// yet program order holds per stream and the history re-certifies.
#[test]
fn single_connection_pipelines_multiple_streams() {
    let sc = banking(&BankingConfig::default(), 61);
    let total = sc.txns.len();
    let scheduler = Box::new(RsgSgt::new(&sc.txns, &sc.spec));
    let stream = RequestStream::in_order(&sc.txns);
    let load = LoadConfig {
        connections: 1,
        streams: 4,
        ..LoadConfig::default()
    };
    let (report, stats) = serve_net(
        &sc.txns,
        scheduler,
        &NetConfig::default(),
        &FaultPlan::default(),
        None,
        |addr| drive(addr, &sc.txns, &stream, &load),
    )
    .expect("serve_net");

    assert_eq!(stats.committed as usize, total);
    assert_eq!(report.net.connections, 1);
    // Program order per transaction, straight from the granted log.
    let mut last: std::collections::HashMap<TxnId, u32> = std::collections::HashMap::new();
    for op in &report.log {
        if let Some(prev) = last.insert(op.txn, op.index) {
            assert!(op.index > prev, "program order within a stream");
        }
    }
    recertify(&sc.txns, &sc.spec, &report);
}
