//! Property tests for the wire decoder: hostile bytes never panic, every
//! rejection is a typed [`WireError`], and corruption produced by the
//! same fault instruments the WAL is tested with ([`FaultFs`] bit flips,
//! torn tails) is caught by the shared CRC framing.
//!
//! The decoder's contract, stated as properties over random inputs:
//!
//! * **totality** — `Request::decode`/`Response::decode` return
//!   `Ok`/`Err` on *arbitrary* bytes, never panic, and never claim to
//!   have consumed more bytes than they were given;
//! * **prefix-stability** — truncating a valid stream mid-frame yields
//!   `Incomplete` (retriable: wait for more bytes), never a terminal
//!   error, and never a bogus decode;
//! * **corruption detection** — any single bit flip anywhere in a framed
//!   request stream is either detected as a typed error at the damaged
//!   frame, or (when the flip lands in a length prefix and re-frames the
//!   stream) every subsequent decode still terminates without panicking.

use proptest::prelude::*;
use relser_check::storage_faults::{FaultFs, FaultFsConfig};
use relser_core::ids::{ObjectId, OpId, TxnId};
use relser_net::wire::{Request, Response, MAX_PAYLOAD};
use relser_net::WireError;
use relser_wal::Storage;

/// Builds one of every request shape from fuzzed fields.
fn request(kind: u8, req_id: u64, a: u32, b: u32, c: u32) -> Request {
    match kind % 5 {
        0 => Request::Begin {
            req_id,
            txn: TxnId(a),
        },
        1 => Request::Read {
            req_id,
            op: OpId {
                txn: TxnId(a),
                index: b,
            },
            object: ObjectId(c),
        },
        2 => Request::Write {
            req_id,
            op: OpId {
                txn: TxnId(a),
                index: b,
            },
            object: ObjectId(c),
        },
        3 => Request::Commit {
            req_id,
            txn: TxnId(a),
        },
        _ => Request::Abort {
            req_id,
            txn: TxnId(a),
        },
    }
}

/// Decodes frames until the buffer is exhausted or an error stops the
/// stream, the way a connection would. Returns the decoded requests and
/// the terminal error, if any. Panics (the property under test) would
/// propagate.
fn drain(bytes: &[u8]) -> (Vec<Request>, Option<WireError>) {
    let mut out = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        match Request::decode(&bytes[at..]) {
            Ok((req, n)) => {
                assert!(n > 0 && at + n <= bytes.len(), "consumed stays in bounds");
                out.push(req);
                at += n;
            }
            Err(e) => return (out, Some(e)),
        }
    }
    (out, None)
}

proptest! {
    /// Arbitrary bytes: decoding is total — no panic, in-bounds
    /// consumption, and every failure is one of the typed variants.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let (_, err) = drain(&bytes);
        if let Some(e) = err {
            // Exercise the classification the reactor relies on: either
            // "wait for more bytes" or "close this connection".
            let _ = e.is_incomplete();
            prop_assert!(!e.to_string().is_empty());
        }
        match Response::decode(&bytes) {
            Ok((resp, n)) => prop_assert!(n <= bytes.len() && resp.req_id() == resp.req_id()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// A truncated valid stream decodes its whole frames and reports the
    /// cut tail as `Incomplete` — never a terminal error, which is what
    /// lets a connection keep the bytes and read more.
    #[test]
    fn truncation_is_incomplete_never_terminal(
        kinds in proptest::collection::vec(any::<u8>(), 1..8),
        req_id in any::<u64>(),
        a in any::<u32>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut bytes = Vec::new();
        for (i, k) in kinds.iter().enumerate() {
            request(*k, req_id.wrapping_add(i as u64), a, i as u32, a ^ 0xffff)
                .encode_into(&mut bytes);
        }
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let (decoded, err) = drain(&bytes[..cut]);
        prop_assert!(decoded.len() <= kinds.len());
        if let Some(e) = err {
            prop_assert!(e.is_incomplete(), "cut tail must be retriable, got {e}");
        }
    }

    /// One bit flip anywhere in a framed stream — injected by the same
    /// `FaultFs` shim the WAL durability sweeps use — either stops the
    /// stream with a typed error or leaves only intact frames decodable;
    /// a flipped frame is never silently accepted.
    #[test]
    fn faultfs_bit_flips_are_detected(
        kinds in proptest::collection::vec(any::<u8>(), 1..6),
        req_id in any::<u64>(),
        flip_byte_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let mut clean = Vec::new();
        for (i, k) in kinds.iter().enumerate() {
            request(*k, req_id.wrapping_add(i as u64), i as u32, 1, 2).encode_into(&mut clean);
        }
        let off = ((clean.len().saturating_sub(1)) as f64 * flip_byte_frac) as u64;
        let (mut fs, handle) = FaultFs::new(FaultFsConfig {
            bit_flip: Some((off, flip_bit)),
            ..FaultFsConfig::default()
        });
        fs.append(&clean).expect("in-memory append");
        let dirty = handle.bytes();
        prop_assert_ne!(&dirty, &clean);

        let (decoded, err) = drain(&dirty);
        // Every decoded frame must be one of the frames we actually sent
        // (possibly a suffix resync) — the flipped frame itself must not
        // survive. Re-encode and look for the bytes in the clean stream.
        for req in &decoded {
            let mut enc = Vec::new();
            req.encode_into(&mut enc);
            prop_assert!(
                clean.windows(enc.len()).any(|w| w == enc),
                "decoder accepted a frame that was never sent: {req:?}"
            );
        }
        // With exactly one flipped bit, at least one original frame is
        // damaged: either the stream errors, or fewer frames come out.
        prop_assert!(
            err.is_some() || decoded.len() < kinds.len(),
            "a corrupt frame must not decode cleanly"
        );
    }

    /// Length prefixes larger than `MAX_PAYLOAD` are rejected
    /// immediately as terminal — a hostile client cannot make the server
    /// buffer unbounded data.
    #[test]
    fn oversized_lengths_are_terminal(len in (MAX_PAYLOAD + 1)..u32::MAX, junk in any::<u32>()) {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&junk.to_le_bytes());
        let err = Request::decode(&bytes).expect_err("oversized length must not decode");
        prop_assert!(!err.is_incomplete(), "must be terminal, got {err}");
    }
}
