//! The readiness loop: one reactor thread multiplexes many nonblocking
//! connections over a fixed tick.
//!
//! There is no `epoll` wrapper in a `std`-only build, so readiness is
//! polled: every tick the reactor adopts newly accepted sockets, lets
//! each connection read/parse/submit/poll/flush, and sleeps one poll
//! quantum only when a full pass made no progress anywhere (an idle
//! server costs a few wakeups per millisecond, a busy one spins usefully).
//! The acceptor thread hands sockets over a channel, round-robin across
//! reactors, so N reactor threads scale the front-end the same way N
//! session threads scale the in-process service.

use crate::conn::{Conn, ReactorCtx};
use crate::metrics::NetMetrics;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::time::Duration;

/// Accepts connections until `stop`, distributing them round-robin over
/// the reactor channels. Returns the number accepted.
pub(crate) fn accept_loop(
    listener: &TcpListener,
    reactors: Vec<Sender<TcpStream>>,
    stop: &AtomicBool,
    quantum: Duration,
) -> u64 {
    let mut next = 0usize;
    let mut accepted = 0u64;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // A send can only fail if the reactor died; the stream
                // is dropped (connection refused at the protocol level).
                let _ = reactors[next % reactors.len()].send(stream);
                next += 1;
                accepted += 1;
            }
            Err(_) => std::thread::sleep(quantum),
        }
    }
    accepted
}

/// Runs one reactor until the server stops and its connections drain.
pub(crate) fn run_reactor(
    ctx: &ReactorCtx<'_>,
    incoming: Receiver<TcpStream>,
    stop: &AtomicBool,
    quantum: Duration,
) -> NetMetrics {
    let mut conns: Vec<Conn> = Vec::new();
    let mut m = NetMetrics::default();
    let mut acceptor_gone = false;
    loop {
        let mut busy = false;
        loop {
            match incoming.try_recv() {
                Ok(stream) => {
                    if let Ok(conn) = Conn::new(stream) {
                        conns.push(conn);
                        m.connections += 1;
                        busy = true;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    acceptor_gone = true;
                    break;
                }
            }
        }
        let stopping = stop.load(Ordering::Acquire);
        for conn in conns.iter_mut() {
            if stopping {
                // The load driver has returned; anything still open was
                // abandoned — abort its live transactions and close.
                conn.begin_shutdown(&mut m);
            }
            busy |= conn.tick(ctx, &mut m);
        }
        conns.retain(|c| !c.closed);
        if stopping && acceptor_gone && conns.is_empty() {
            break;
        }
        if !busy {
            std::thread::sleep(quantum);
        }
    }
    m
}
