//! The wire protocol: length-prefixed, CRC-32-framed request/response
//! messages over the shared [`relser_frame`] codec.
//!
//! Every message is one frame (`len:u32LE | crc:u32LE | payload`) whose
//! payload starts with a tag byte and a little-endian `req_id` the client
//! chooses; responses echo it, which is what makes **pipelining** work —
//! a connection may have many requests in flight and match answers by id,
//! in whatever order the server finishes them.
//!
//! The payloads are fixed-layout little-endian integers (no varints, no
//! strings): a request is at most [`MAX_PAYLOAD`] bytes, so a length
//! prefix beyond that is instantly recognized as stream corruption.
//! Decoding is *total*: any byte slice yields a message or a typed
//! [`WireError`], never a panic — the fuzz suite in `tests/` holds the
//! decoder to that over truncated, bit-flipped, and oversized inputs.

use relser_core::ids::{ObjectId, OpId, TxnId};
use relser_core::op::AccessMode;
use relser_frame::{begin_frame, decode_frame, finish_frame, FrameError};
use relser_protocols::AbortReason;
use std::fmt;

/// Upper bound on a wire payload. The largest real message is 25 bytes
/// (a session `Hello`); anything claiming more is corruption, rejected
/// before any buffering.
pub const MAX_PAYLOAD: u32 = 64;

/// A client-chosen request correlation id, echoed by the response.
pub type ReqId = u64;

/// A client → server message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Start (or restart, after an abort) transaction `txn`.
    /// Acknowledged with [`Response::Granted`] once enqueued — the
    /// admission queue is FIFO, so the begin is applied before any
    /// later command of the same connection.
    Begin {
        /// Correlation id.
        req_id: ReqId,
        /// The transaction to begin.
        txn: TxnId,
    },
    /// Request the read `op` (which must name a read of `object` in the
    /// server's transaction set — the server validates, a mismatch is a
    /// protocol error that closes the connection).
    Read {
        /// Correlation id.
        req_id: ReqId,
        /// The operation's identity in the transaction set.
        op: OpId,
        /// The object the client believes the operation reads.
        object: ObjectId,
    },
    /// Request the write `op`; validated like [`Request::Read`].
    Write {
        /// Correlation id.
        req_id: ReqId,
        /// The operation's identity in the transaction set.
        op: OpId,
        /// The object the client believes the operation writes.
        object: ObjectId,
    },
    /// Commit `txn`. Answered [`Response::Committed`] only after the
    /// commit record is in the write-ahead log (durable under
    /// `FsyncPolicy::Always`) — the fsync is inside the wire-to-wire
    /// latency the client observes.
    Commit {
        /// Correlation id.
        req_id: ReqId,
        /// The committing transaction.
        txn: TxnId,
    },
    /// Client-initiated abort of `txn` (giving up on it). Acknowledged
    /// with [`Response::Granted`] once enqueued.
    Abort {
        /// Correlation id.
        req_id: ReqId,
        /// The transaction to abort.
        txn: TxnId,
    },
    /// Opens (or resumes, after a reconnect) a client session. Answered
    /// [`Response::Welcome`]. A session id binds this connection to the
    /// server's durable retry table: every later `Commit` on the
    /// connection is recorded against it, so a retried commit — same
    /// session, same `req_id`, re-sent over a fresh connection — gets
    /// the **original** verdict back instead of being applied twice.
    Hello {
        /// Correlation id.
        req_id: ReqId,
        /// The client-chosen session id (stable across reconnects).
        session: u64,
        /// The highest `req_id` this client has seen acknowledged; purely
        /// diagnostic today (the retry table is authoritative).
        resume_from: u64,
    },
}

/// A server → client message, correlated to its request by `req_id`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The request was applied: a begin/abort was enqueued, or an
    /// operation was granted by the scheduler.
    Granted {
        /// Echo of the request's id.
        req_id: ReqId,
    },
    /// The commit is applied — and logged, durably under
    /// `FsyncPolicy::Always`.
    Committed {
        /// Echo of the request's id.
        req_id: ReqId,
    },
    /// The scheduler (or the server's waits-for timeout) aborted the
    /// operation's transaction; the client restarts the incarnation
    /// from its first operation.
    Aborted {
        /// Echo of the request's id.
        req_id: ReqId,
        /// Why the transaction died.
        reason: AbortReason,
    },
    /// The admission queue was full under the shed policy; nothing was
    /// enqueued. The client backs off and retries the same request.
    Shed {
        /// Echo of the request's id.
        req_id: ReqId,
    },
    /// A terminal per-connection error; the server closes this
    /// connection (and only this connection) after sending it.
    Error {
        /// Echo of the request's id (0 when no single request is at
        /// fault, e.g. a corrupt frame).
        req_id: ReqId,
        /// What went wrong.
        code: ErrorCode,
    },
    /// Session accepted ([`Request::Hello`] acknowledged); commits on
    /// this connection are retry-protected from here on.
    Welcome {
        /// Echo of the request's id.
        req_id: ReqId,
    },
    /// The shard serving this request crashed and is being recovered in
    /// place; nothing was enqueued. Retryable: the client backs off and
    /// re-sends (a retried `Commit` keeps its original `req_id`, so the
    /// retry table still deduplicates it). Other shards are unaffected.
    Recovering {
        /// Echo of the request's id.
        req_id: ReqId,
    },
    /// The server is draining for a graceful shutdown: in-flight work is
    /// being answered, the WAL is being synced, no new work is accepted.
    /// Sent with `req_id` 0 as a broadcast, then per refused request.
    Closing {
        /// Echo of the refused request's id (0 for the broadcast).
        req_id: ReqId,
    },
}

/// Why the server is giving up on one connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was malformed or inconsistent with the server's
    /// transaction set (wrong mode/object for the named operation,
    /// unknown transaction, or a corrupt frame).
    BadRequest = 0,
    /// The admission core never answered a request of this connection
    /// within the reply watchdog; the connection is degraded (its live
    /// transactions aborted) while the rest of the server keeps going.
    ReplyLost = 1,
    /// The server is shutting down (or its admission core fail-stopped).
    Shutdown = 2,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Option<ErrorCode> {
        match b {
            0 => Some(ErrorCode::BadRequest),
            1 => Some(ErrorCode::ReplyLost),
            2 => Some(ErrorCode::Shutdown),
            _ => None,
        }
    }
}

/// Why a byte stream does not start with a valid message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame layer rejected it; [`FrameError::is_incomplete`]
    /// distinguishes "wait for more bytes" from "the stream is corrupt".
    Frame(FrameError),
    /// A verified frame carried an unknown message tag.
    UnknownTag(u8),
    /// A verified frame's payload does not match its tag's layout.
    Malformed {
        /// The message tag of the malformed payload.
        tag: u8,
        /// The payload length that did not fit the layout.
        len: usize,
    },
}

impl WireError {
    /// Could more input turn this into a valid message? Only a short
    /// frame; everything else is terminal for the connection.
    pub fn is_incomplete(&self) -> bool {
        matches!(self, WireError::Frame(e) if e.is_incomplete())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Frame(e) => write!(f, "{e}"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            WireError::Malformed { tag, len } => {
                write!(f, "malformed payload for tag {tag}: {len} bytes")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        WireError::Frame(e)
    }
}

const REQ_BEGIN: u8 = 1;
const REQ_READ: u8 = 2;
const REQ_WRITE: u8 = 3;
const REQ_COMMIT: u8 = 4;
const REQ_ABORT: u8 = 5;
const REQ_HELLO: u8 = 6;

const RESP_GRANTED: u8 = 1;
const RESP_COMMITTED: u8 = 2;
const RESP_ABORTED: u8 = 3;
const RESP_SHED: u8 = 4;
const RESP_ERROR: u8 = 5;
const RESP_WELCOME: u8 = 6;
const RESP_RECOVERING: u8 = 7;
const RESP_CLOSING: u8 = 8;

fn reason_to_u8(r: &AbortReason) -> u8 {
    match r {
        AbortReason::Deadlock => 0,
        AbortReason::CycleRejected => 1,
        AbortReason::Injected => 2,
        AbortReason::Retired => 3,
    }
}

fn reason_from_u8(b: u8) -> Option<AbortReason> {
    match b {
        0 => Some(AbortReason::Deadlock),
        1 => Some(AbortReason::CycleRejected),
        2 => Some(AbortReason::Injected),
        3 => Some(AbortReason::Retired),
        _ => None,
    }
}

/// Appends `tag | req_id | fields...` framed onto `buf`.
fn put_frame(buf: &mut Vec<u8>, tag: u8, req_id: ReqId, fields: &[u32]) {
    let start = begin_frame(buf);
    buf.push(tag);
    buf.extend_from_slice(&req_id.to_le_bytes());
    for f in fields {
        buf.extend_from_slice(&f.to_le_bytes());
    }
    finish_frame(buf, start, MAX_PAYLOAD).expect("wire payload within bound");
}

fn put_frame_u8(buf: &mut Vec<u8>, tag: u8, req_id: ReqId, byte: u8) {
    let start = begin_frame(buf);
    buf.push(tag);
    buf.extend_from_slice(&req_id.to_le_bytes());
    buf.push(byte);
    finish_frame(buf, start, MAX_PAYLOAD).expect("wire payload within bound");
}

fn get_u32(p: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(p[at..at + 4].try_into().unwrap())
}

fn get_req_id(p: &[u8]) -> ReqId {
    ReqId::from_le_bytes(p[1..9].try_into().unwrap())
}

impl Request {
    /// The correlation id this request carries.
    pub fn req_id(&self) -> ReqId {
        match *self {
            Request::Begin { req_id, .. }
            | Request::Read { req_id, .. }
            | Request::Write { req_id, .. }
            | Request::Commit { req_id, .. }
            | Request::Abort { req_id, .. }
            | Request::Hello { req_id, .. } => req_id,
        }
    }

    /// The access mode an operation request claims (`None` for
    /// begin/commit/abort).
    pub fn mode(&self) -> Option<AccessMode> {
        match self {
            Request::Read { .. } => Some(AccessMode::Read),
            Request::Write { .. } => Some(AccessMode::Write),
            _ => None,
        }
    }

    /// Appends this request, framed, onto `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match *self {
            Request::Begin { req_id, txn } => put_frame(buf, REQ_BEGIN, req_id, &[txn.0]),
            Request::Read { req_id, op, object } => {
                put_frame(buf, REQ_READ, req_id, &[op.txn.0, op.index, object.0])
            }
            Request::Write { req_id, op, object } => {
                put_frame(buf, REQ_WRITE, req_id, &[op.txn.0, op.index, object.0])
            }
            Request::Commit { req_id, txn } => put_frame(buf, REQ_COMMIT, req_id, &[txn.0]),
            Request::Abort { req_id, txn } => put_frame(buf, REQ_ABORT, req_id, &[txn.0]),
            Request::Hello {
                req_id,
                session,
                resume_from,
            } => {
                let start = begin_frame(buf);
                buf.push(REQ_HELLO);
                buf.extend_from_slice(&req_id.to_le_bytes());
                buf.extend_from_slice(&session.to_le_bytes());
                buf.extend_from_slice(&resume_from.to_le_bytes());
                finish_frame(buf, start, MAX_PAYLOAD).expect("wire payload within bound");
            }
        }
    }

    /// Decodes the request at the head of `bytes`; returns it plus the
    /// bytes consumed (the offset of the next frame). Total: any input
    /// yields a request or a typed [`WireError`].
    pub fn decode(bytes: &[u8]) -> Result<(Request, usize), WireError> {
        let frame = decode_frame(bytes, MAX_PAYLOAD)?;
        let p = frame.payload;
        let tag = p[0];
        let body = p.len() - 1;
        let malformed = WireError::Malformed { tag, len: body };
        let req = match tag {
            REQ_BEGIN | REQ_COMMIT | REQ_ABORT => {
                if body != 12 {
                    return Err(malformed);
                }
                let req_id = get_req_id(p);
                let txn = TxnId(get_u32(p, 9));
                match tag {
                    REQ_BEGIN => Request::Begin { req_id, txn },
                    REQ_COMMIT => Request::Commit { req_id, txn },
                    _ => Request::Abort { req_id, txn },
                }
            }
            REQ_READ | REQ_WRITE => {
                if body != 20 {
                    return Err(malformed);
                }
                let req_id = get_req_id(p);
                let op = OpId {
                    txn: TxnId(get_u32(p, 9)),
                    index: get_u32(p, 13),
                };
                let object = ObjectId(get_u32(p, 17));
                if tag == REQ_READ {
                    Request::Read { req_id, op, object }
                } else {
                    Request::Write { req_id, op, object }
                }
            }
            REQ_HELLO => {
                if body != 24 {
                    return Err(malformed);
                }
                Request::Hello {
                    req_id: get_req_id(p),
                    session: u64::from_le_bytes(p[9..17].try_into().unwrap()),
                    resume_from: u64::from_le_bytes(p[17..25].try_into().unwrap()),
                }
            }
            other => return Err(WireError::UnknownTag(other)),
        };
        Ok((req, frame.consumed))
    }
}

impl Response {
    /// The correlation id this response echoes.
    pub fn req_id(&self) -> ReqId {
        match self {
            Response::Granted { req_id }
            | Response::Committed { req_id }
            | Response::Aborted { req_id, .. }
            | Response::Shed { req_id }
            | Response::Error { req_id, .. }
            | Response::Welcome { req_id }
            | Response::Recovering { req_id }
            | Response::Closing { req_id } => *req_id,
        }
    }

    /// Appends this response, framed, onto `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Granted { req_id } => put_frame(buf, RESP_GRANTED, *req_id, &[]),
            Response::Committed { req_id } => put_frame(buf, RESP_COMMITTED, *req_id, &[]),
            Response::Aborted { req_id, reason } => {
                put_frame_u8(buf, RESP_ABORTED, *req_id, reason_to_u8(reason))
            }
            Response::Shed { req_id } => put_frame(buf, RESP_SHED, *req_id, &[]),
            Response::Error { req_id, code } => put_frame_u8(buf, RESP_ERROR, *req_id, *code as u8),
            Response::Welcome { req_id } => put_frame(buf, RESP_WELCOME, *req_id, &[]),
            Response::Recovering { req_id } => put_frame(buf, RESP_RECOVERING, *req_id, &[]),
            Response::Closing { req_id } => put_frame(buf, RESP_CLOSING, *req_id, &[]),
        }
    }

    /// Decodes the response at the head of `bytes`; see
    /// [`Request::decode`].
    pub fn decode(bytes: &[u8]) -> Result<(Response, usize), WireError> {
        let frame = decode_frame(bytes, MAX_PAYLOAD)?;
        let p = frame.payload;
        let tag = p[0];
        let body = p.len() - 1;
        let malformed = WireError::Malformed { tag, len: body };
        let resp = match tag {
            RESP_GRANTED | RESP_COMMITTED | RESP_SHED | RESP_WELCOME | RESP_RECOVERING
            | RESP_CLOSING => {
                if body != 8 {
                    return Err(malformed);
                }
                let req_id = get_req_id(p);
                match tag {
                    RESP_GRANTED => Response::Granted { req_id },
                    RESP_COMMITTED => Response::Committed { req_id },
                    RESP_SHED => Response::Shed { req_id },
                    RESP_WELCOME => Response::Welcome { req_id },
                    RESP_RECOVERING => Response::Recovering { req_id },
                    _ => Response::Closing { req_id },
                }
            }
            RESP_ABORTED => {
                if body != 9 {
                    return Err(malformed);
                }
                Response::Aborted {
                    req_id: get_req_id(p),
                    reason: reason_from_u8(p[9]).ok_or(malformed)?,
                }
            }
            RESP_ERROR => {
                if body != 9 {
                    return Err(malformed);
                }
                Response::Error {
                    req_id: get_req_id(p),
                    code: ErrorCode::from_u8(p[9]).ok_or(malformed)?,
                }
            }
            other => return Err(WireError::UnknownTag(other)),
        };
        Ok((resp, frame.consumed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Begin {
                req_id: 7,
                txn: TxnId(3),
            },
            Request::Read {
                req_id: u64::MAX,
                op: OpId {
                    txn: TxnId(1),
                    index: 4,
                },
                object: ObjectId(9),
            },
            Request::Write {
                req_id: 0,
                op: OpId {
                    txn: TxnId(2),
                    index: 0,
                },
                object: ObjectId(u32::MAX),
            },
            Request::Commit {
                req_id: 42,
                txn: TxnId(0),
            },
            Request::Abort {
                req_id: 43,
                txn: TxnId(17),
            },
            Request::Hello {
                req_id: 44,
                session: u64::MAX,
                resume_from: 0x0102_0304_0506_0708,
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Granted { req_id: 7 },
            Response::Committed { req_id: 8 },
            Response::Aborted {
                req_id: 9,
                reason: AbortReason::CycleRejected,
            },
            Response::Shed { req_id: 10 },
            Response::Error {
                req_id: 0,
                code: ErrorCode::ReplyLost,
            },
            Response::Welcome { req_id: 11 },
            Response::Recovering { req_id: 12 },
            Response::Closing { req_id: 0 },
        ]
    }

    #[test]
    fn requests_roundtrip_back_to_back() {
        let reqs = sample_requests();
        let mut buf = Vec::new();
        for r in &reqs {
            r.encode_into(&mut buf);
        }
        let mut at = 0;
        let mut got = Vec::new();
        while at < buf.len() {
            let (r, n) = Request::decode(&buf[at..]).unwrap();
            got.push(r);
            at += n;
        }
        assert_eq!(got, reqs);
    }

    #[test]
    fn responses_roundtrip_back_to_back() {
        let resps = sample_responses();
        let mut buf = Vec::new();
        for r in &resps {
            r.encode_into(&mut buf);
        }
        let mut at = 0;
        let mut got = Vec::new();
        while at < buf.len() {
            let (r, n) = Response::decode(&buf[at..]).unwrap();
            got.push(r);
            at += n;
        }
        assert_eq!(got, resps);
        for r in &resps {
            // Abort reasons survive exactly.
            if let Response::Aborted { reason, .. } = r {
                assert_eq!(reason_from_u8(reason_to_u8(reason)), Some(reason.clone()));
            }
        }
    }

    #[test]
    fn truncations_are_incomplete_not_corrupt() {
        let mut buf = Vec::new();
        Request::Write {
            req_id: 5,
            op: OpId {
                txn: TxnId(1),
                index: 2,
            },
            object: ObjectId(3),
        }
        .encode_into(&mut buf);
        for cut in 0..buf.len() {
            let err = Request::decode(&buf[..cut]).unwrap_err();
            assert!(err.is_incomplete(), "cut at {cut}: {err:?}");
        }
    }

    #[test]
    fn every_bit_flip_is_rejected_typed() {
        let mut buf = Vec::new();
        Request::Read {
            req_id: 1,
            op: OpId {
                txn: TxnId(0),
                index: 1,
            },
            object: ObjectId(2),
        }
        .encode_into(&mut buf);
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut corrupt = buf.clone();
                corrupt[byte] ^= 1 << bit;
                // Never Ok: CRC covers the payload, the length bound
                // covers the header. (A header flip can only yield
                // BadLength or Incomplete; both typed.)
                assert!(Request::decode(&corrupt).is_err(), "flip {byte}:{bit}");
            }
        }
    }

    #[test]
    fn unknown_tag_and_wrong_length_are_terminal() {
        // Valid frame, nonsense tag.
        let mut buf = Vec::new();
        let start = begin_frame(&mut buf);
        buf.push(99);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&[0; 4]);
        finish_frame(&mut buf, start, MAX_PAYLOAD).unwrap();
        let err = Request::decode(&buf).unwrap_err();
        assert_eq!(err, WireError::UnknownTag(99));
        assert!(!err.is_incomplete());

        // Valid frame, good tag, short payload.
        let mut buf = Vec::new();
        let start = begin_frame(&mut buf);
        buf.push(REQ_READ);
        buf.extend_from_slice(&1u64.to_le_bytes());
        finish_frame(&mut buf, start, MAX_PAYLOAD).unwrap();
        assert!(matches!(
            Request::decode(&buf),
            Err(WireError::Malformed { tag: REQ_READ, .. })
        ));

        // Valid frame, aborted response with an impossible reason byte.
        let mut buf = Vec::new();
        let start = begin_frame(&mut buf);
        buf.push(RESP_ABORTED);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(250);
        finish_frame(&mut buf, start, MAX_PAYLOAD).unwrap();
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_buffering() {
        let mut bytes = (MAX_PAYLOAD + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 100]);
        let err = Request::decode(&bytes).unwrap_err();
        assert_eq!(
            err,
            WireError::Frame(FrameError::BadLength {
                len: MAX_PAYLOAD + 1
            })
        );
        assert!(!err.is_incomplete(), "oversized length is terminal");
    }
}
