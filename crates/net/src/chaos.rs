//! Network chaos: seeded client-side socket faults for robustness runs.
//!
//! A [`ChaosPlan`] turns the resilient load driver into an adversary.
//! Before each batch of request bytes goes out, a deterministic draw
//! (seeded per connection) may inject one of the classic TCP failure
//! modes:
//!
//! * **reset** — the socket is closed abruptly, requests unsent; the
//!   server sees EOF mid-conversation and must degrade only that
//!   connection;
//! * **torn write** — a frame is cut mid-bytes and the socket closed;
//!   the server's decoder must park the prefix as *incomplete* and the
//!   EOF must not corrupt anything;
//! * **stall (slowloris)** — one byte is sent, then the connection goes
//!   silent for a while before delivering the rest; the server must
//!   neither block other connections nor misparse the resumed frame.
//!
//! Every fault is followed by the client's normal recovery protocol —
//! reconnect, `Hello` with the same session id, retry unacknowledged
//! commits under their original request ids — which is exactly the
//! machinery the chaos sweep exists to prove exactly-once.
//!
//! Server-side chaos (reply drops, shard-core kill-at-k) rides on the
//! existing [`FaultPlan`](relser_server::FaultPlan) per shard core; this
//! module only manufactures *wire* trouble.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// What the chaos dice said to do to the next write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireFault {
    /// Deliver the bytes untouched.
    None,
    /// Close the socket abruptly without sending.
    Reset,
    /// Send a prefix that ends mid-frame, then close.
    TornWrite,
    /// Send one byte, stall, then deliver the rest.
    Stall,
}

/// Seeded plan of client-side wire faults, plus the stall length.
///
/// Probabilities are per *flush* (one batch of encoded requests), in
/// units of 1/10_000 so integer configs stay exact. The default plan is
/// inert; [`ChaosPlan::stormy`] is the preset the chaos sweep uses.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// Base seed; each connection folds its id in, so a fleet of
    /// connections misbehaves deterministically but not in lockstep.
    pub seed: u64,
    /// Probability (per 10k) of an abrupt close before a flush.
    pub reset_per_10k: u32,
    /// Probability (per 10k) of a mid-frame torn write.
    pub torn_per_10k: u32,
    /// Probability (per 10k) of a slowloris stall.
    pub stall_per_10k: u32,
    /// How long a stalled connection stays silent mid-frame.
    pub stall: Duration,
    /// Stop injecting after this many faults per connection (so a run
    /// always finishes; 0 = unlimited).
    pub max_faults: u32,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan {
            seed: 0,
            reset_per_10k: 0,
            torn_per_10k: 0,
            stall_per_10k: 0,
            stall: Duration::from_millis(5),
            max_faults: 0,
        }
    }
}

impl ChaosPlan {
    /// No faults at all.
    pub fn quiet() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// The chaos-sweep preset: all three fault classes, frequent enough
    /// to fire many times per run, bounded so the run terminates.
    pub fn stormy(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            reset_per_10k: 150,
            torn_per_10k: 150,
            stall_per_10k: 100,
            stall: Duration::from_millis(2),
            max_faults: 25,
        }
    }

    /// Does the plan inject anything at all?
    pub fn is_quiet(&self) -> bool {
        self.reset_per_10k == 0 && self.torn_per_10k == 0 && self.stall_per_10k == 0
    }

    /// The per-connection dice for connection `conn`.
    pub fn dice(&self, conn: u64) -> ChaosDice {
        ChaosDice {
            rng: StdRng::seed_from_u64(self.seed ^ conn.rotate_left(17) ^ 0x5EED_C4A0),
            reset: self.reset_per_10k,
            torn: self.torn_per_10k,
            stall: self.stall_per_10k,
            budget: self.max_faults,
            spent: 0,
        }
    }
}

/// One connection's deterministic fault stream.
pub struct ChaosDice {
    rng: StdRng,
    reset: u32,
    torn: u32,
    stall: u32,
    budget: u32,
    spent: u32,
}

impl ChaosDice {
    /// Rolls for the next flush. Always advances the RNG exactly once so
    /// the stream stays aligned whatever the outcome.
    pub fn roll(&mut self) -> WireFault {
        let draw: u32 = self.rng.random_range(0..10_000);
        if self.budget != 0 && self.spent >= self.budget {
            return WireFault::None;
        }
        let fault = if draw < self.reset {
            WireFault::Reset
        } else if draw < self.reset + self.torn {
            WireFault::TornWrite
        } else if draw < self.reset + self.torn + self.stall {
            WireFault::Stall
        } else {
            WireFault::None
        };
        if fault != WireFault::None {
            self.spent += 1;
        }
        fault
    }

    /// Where to cut a torn write: strictly inside `len` bytes (at least
    /// 1 byte sent, at least 1 byte withheld). `len` must be ≥ 2.
    pub fn tear_at(&mut self, len: usize) -> usize {
        self.rng.random_range(1..len)
    }

    /// Faults injected so far.
    pub fn spent(&self) -> u32 {
        self.spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_faults() {
        let mut dice = ChaosPlan::quiet().dice(3);
        for _ in 0..1000 {
            assert_eq!(dice.roll(), WireFault::None);
        }
        assert_eq!(dice.spent(), 0);
    }

    #[test]
    fn rolls_are_deterministic_per_seed_and_connection() {
        let plan = ChaosPlan::stormy(42);
        let a: Vec<WireFault> = {
            let mut d = plan.dice(1);
            (0..500).map(|_| d.roll()).collect()
        };
        let b: Vec<WireFault> = {
            let mut d = plan.dice(1);
            (0..500).map(|_| d.roll()).collect()
        };
        assert_eq!(a, b, "same seed, same connection, same stream");
        let c: Vec<WireFault> = {
            let mut d = plan.dice(2);
            (0..500).map(|_| d.roll()).collect()
        };
        assert_ne!(a, c, "different connections decorrelate");
    }

    #[test]
    fn stormy_plan_respects_its_fault_budget() {
        let plan = ChaosPlan::stormy(7);
        let mut dice = plan.dice(0);
        let mut faults = 0;
        for _ in 0..100_000 {
            if dice.roll() != WireFault::None {
                faults += 1;
            }
        }
        assert!(faults > 0, "a stormy plan fires");
        assert!(
            faults <= plan.max_faults,
            "budget respected: {faults} <= {}",
            plan.max_faults
        );
    }

    #[test]
    fn tear_points_stay_strictly_inside_the_buffer() {
        let mut dice = ChaosPlan::stormy(9).dice(4);
        for len in 2..64 {
            for _ in 0..10 {
                let at = dice.tear_at(len);
                assert!(at >= 1 && at < len, "tear {at} inside 1..{len}");
            }
        }
    }
}
