//! # relser-net — a real TCP front-end for the admission service
//!
//! `relser-server` turned the RSG schedulers into an in-process service:
//! session threads enqueue commands, a single-writer admission core
//! applies them in queue order. This crate puts a **wire** in front of
//! the same machinery: real sockets, a binary framed protocol, and a
//! reactor that multiplexes N client connections onto the one command
//! queue — so the serialization point, the WAL discipline, and the
//! offline certification story are *unchanged*; only the clients moved
//! out of the process.
//!
//! The layers:
//!
//! * [`wire`] — length-prefixed, CRC-32-framed requests/responses over
//!   the shared [`relser_frame`] codec (the same framing the WAL uses on
//!   disk), with client-chosen request ids for **pipelining**;
//! * `conn` (internal) — the per-connection state machine: validate
//!   requests against the transaction set, submit commands, poll reply
//!   cells, run the blocked-retry/waits-for-timeout protocol, and map
//!   queue overload onto the socket ([`OverloadPolicy::Wait`] pauses
//!   reads → TCP backpressure; `Shed` answers an explicit
//!   [`wire::Response::Shed`]);
//! * `reactor` (internal) — nonblocking readiness loop, one thread per
//!   reactor, sockets handed over by an acceptor thread;
//! * [`server`] — [`serve_net`] wires listener, reactors, and the
//!   admission core under one `thread::scope`;
//! * [`client`] — [`drive`], the loopback load driver: N connections ×
//!   K pipelined transaction streams speaking the full restart protocol;
//! * [`metrics`] — **wire-to-wire latency accounting**: every request is
//!   timed per stage (decode → queue wait → admit → WAL fsync → reply)
//!   plus end-to-end, all as mergeable [`LatencyHistogram`]s reported as
//!   p50/p99/p999 in [`NetReport::stages`].
//!
//! ## Failure philosophy
//!
//! A connection degrades alone: corrupt frames, malformed requests, lost
//! replies, and dead sockets abort that connection's live transactions
//! through the ordinary command queue and close that socket — the other
//! connections keep committing, and the committed history still passes
//! `Rsg::build(..).is_acyclic()` re-certification (the e2e tests hold
//! the server to exactly that, faults included).
//!
//! ```no_run
//! use relser_core::rsg::Rsg;
//! use relser_core::schedule::Schedule;
//! use relser_protocols::rsg_sgt::RsgSgt;
//! use relser_net::{drive, serve_net, LoadConfig, NetConfig};
//! use relser_server::core::FaultPlan;
//! use relser_workload::banking::{banking, BankingConfig};
//! use relser_workload::stream::RequestStream;
//!
//! let sc = banking(&BankingConfig::default(), 42);
//! let scheduler = Box::new(RsgSgt::new(&sc.txns, &sc.spec));
//! let stream = RequestStream::shuffled(&sc.txns, 7);
//! let (report, stats) = serve_net(
//!     &sc.txns,
//!     scheduler,
//!     &NetConfig::default(),
//!     &FaultPlan::default(),
//!     None,
//!     |addr| drive(addr, &sc.txns, &stream, &LoadConfig::default()),
//! )
//! .unwrap();
//! assert_eq!(stats.committed as usize, sc.txns.len());
//! let history = Schedule::new(&sc.txns, report.log).unwrap();
//! assert!(Rsg::build(&sc.txns, &history, &sc.spec).is_acyclic());
//! ```
//!
//! [`OverloadPolicy::Wait`]: relser_server::OverloadPolicy::Wait
//! [`LatencyHistogram`]: relser_simdb::metrics::LatencyHistogram
//! [`NetReport::stages`]: metrics::NetReport::stages

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
mod conn;
pub mod metrics;
mod reactor;
pub mod server;
pub mod wire;

pub use chaos::{ChaosDice, ChaosPlan, WireFault};
pub use client::{
    drive, drive_resilient, ClientStats, LoadConfig, ResilientConfig, ResilientStats,
};
pub use metrics::{NetMetrics, NetReport};
pub use server::{
    serve_net, serve_net_supervised, serve_net_supervised_in, NetConfig, SuperviseNetConfig,
    SupervisedNetReport,
};
pub use wire::{ErrorCode, ReqId, Request, Response, WireError};
