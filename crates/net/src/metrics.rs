//! Wire-to-wire latency accounting and the combined run report.
//!
//! Every request that crosses the server is timed per stage:
//!
//! | stage    | where measured                 | histogram                |
//! |----------|--------------------------------|--------------------------|
//! | `decode` | reactor: frame → [`Request`]   | [`NetMetrics::decode`]   |
//! | `queue`  | core: enqueue → dequeue        | `ServerMetrics::queue_wait` |
//! | `admit`  | core: `Scheduler::request`     | [`NetReport::admit`]     |
//! | `fsync`  | WAL: durability barrier        | `ServerMetrics::wal_sync` |
//! | `reply`  | reactor: decision → bytes sent | [`NetMetrics::reply`]    |
//!
//! plus the end-to-end `wire` histogram (request bytes read off the
//! socket → response bytes written back to it), which bounds the sum.
//! [`NetReport::stages`] assembles the table; the bench harness
//! serializes its p50/p99/p999 columns into `BENCH_net.json`.
//!
//! [`Request`]: crate::wire::Request

use relser_core::ids::{OpId, TxnId};
use relser_server::core::TraceEvent;
use relser_server::ServerMetrics;
use relser_simdb::metrics::LatencyHistogram;
use std::fmt;

/// Reactor-side counters and stage histograms, merged across reactor
/// threads at the end of a run.
#[derive(Clone, Debug, Default)]
pub struct NetMetrics {
    /// Connections accepted.
    pub connections: u64,
    /// Requests decoded off the wire.
    pub requests: u64,
    /// Responses written back.
    pub responses: u64,
    /// Operation requests answered [`Shed`](crate::wire::Response::Shed)
    /// (full queue under the shed policy).
    pub sheds: u64,
    /// Commands deferred on a full queue under the wait policy — each
    /// deferral pauses the connection's reads, turning admission
    /// backpressure into TCP backpressure.
    pub deferrals: u64,
    /// Blocked operations re-submitted after a progress epoch advance.
    pub retries: u64,
    /// Server-side waits-for timeouts (the connection's transaction was
    /// aborted and the client told to restart it).
    pub timeout_aborts: u64,
    /// Connections closed for a corrupt frame or malformed request.
    pub bad_frame_closes: u64,
    /// Connections closed because the admission core never answered one
    /// of their requests (reply watchdog).
    pub reply_lost_closes: u64,
    /// Sessions opened ([`Hello`](crate::wire::Request::Hello) accepted).
    pub hellos: u64,
    /// Requests answered
    /// [`Recovering`](crate::wire::Response::Recovering): their shard's
    /// core was down mid-supervised-restart, nothing was enqueued, the
    /// client retries.
    pub recovering_replies: u64,
    /// Retried commits answered straight from the session retry table —
    /// the original verdict re-sent without touching the admission core.
    pub dup_commit_fast: u64,
    /// [`Closing`](crate::wire::Response::Closing) notices sent
    /// (graceful-shutdown broadcasts plus per-request refusals).
    pub closing_replies: u64,
    /// Frame decode + request parse latency.
    pub decode: LatencyHistogram,
    /// Decision-taken → response-bytes-on-the-socket latency.
    pub reply: LatencyHistogram,
    /// End-to-end: request bytes read → response bytes written.
    pub wire: LatencyHistogram,
}

impl NetMetrics {
    /// Folds another reactor's metrics into this one (counters sum,
    /// histograms merge element-wise).
    pub fn merge(&mut self, other: &NetMetrics) {
        self.connections += other.connections;
        self.requests += other.requests;
        self.responses += other.responses;
        self.sheds += other.sheds;
        self.deferrals += other.deferrals;
        self.retries += other.retries;
        self.timeout_aborts += other.timeout_aborts;
        self.bad_frame_closes += other.bad_frame_closes;
        self.reply_lost_closes += other.reply_lost_closes;
        self.hellos += other.hellos;
        self.recovering_replies += other.recovering_replies;
        self.dup_commit_fast += other.dup_commit_fast;
        self.closing_replies += other.closing_replies;
        self.decode.merge(&other.decode);
        self.reply.merge(&other.reply);
        self.wire.merge(&other.wire);
    }
}

impl fmt::Display for NetMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "net: conns={} requests={} responses={} sheds={} deferrals={} retries={}",
            self.connections,
            self.requests,
            self.responses,
            self.sheds,
            self.deferrals,
            self.retries
        )?;
        writeln!(
            f,
            "net closes: bad_frame={} reply_lost={} timeout_aborts={}",
            self.bad_frame_closes, self.reply_lost_closes, self.timeout_aborts
        )?;
        write!(
            f,
            "net sessions: hellos={} recovering={} dup_commit_fast={} closing={}",
            self.hellos, self.recovering_replies, self.dup_commit_fast, self.closing_replies
        )
    }
}

/// Everything one [`serve_net`](crate::serve_net) run produced.
#[derive(Debug)]
pub struct NetReport {
    /// Transactions committed, in commit order.
    pub committed: Vec<TxnId>,
    /// Granted operations of live/committed incarnations, grant order.
    /// Filtered to `committed` this is the committed history — feed it
    /// to `Rsg::build(..).is_acyclic()` for offline re-certification.
    pub log: Vec<OpId>,
    /// Core-order event trace (empty unless trace recording is on).
    pub trace: Vec<TraceEvent>,
    /// The admission core fail-stopped (WAL failure or planned crash).
    pub crashed: bool,
    /// Core/queue-side metrics (includes the `queue` and `fsync` stage
    /// histograms).
    pub metrics: ServerMetrics,
    /// Reactor-side metrics (includes the `decode`, `reply`, and `wire`
    /// stage histograms).
    pub net: NetMetrics,
    /// Pure scheduler decision cost as a histogram (the `admit` stage;
    /// `metrics.decision` summarizes the same samples).
    pub admit: LatencyHistogram,
}

impl NetReport {
    /// The per-stage latency table in pipeline order: `(stage, histogram)`.
    pub fn stages(&self) -> [(&'static str, &LatencyHistogram); 6] {
        [
            ("decode", &self.net.decode),
            ("queue", &self.metrics.queue_wait),
            ("admit", &self.admit),
            ("fsync", &self.metrics.wal_sync),
            ("reply", &self.net.reply),
            ("wire", &self.net.wire),
        ]
    }
}

impl fmt::Display for NetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.net)?;
        writeln!(
            f,
            "{:<8} {:>12} {:>12} {:>12} {:>10}",
            "stage", "p50", "p99", "p999", "samples"
        )?;
        for (name, h) in self.stages() {
            writeln!(
                f,
                "{:<8} {:>10}ns {:>10}ns {:>10}ns {:>10}",
                name,
                h.p50_ns(),
                h.p99_ns(),
                h.p999_ns(),
                h.count()
            )?;
        }
        write!(f, "{}", self.metrics)
    }
}

/// Folds raw nanosecond samples into a histogram (mirror of the server
/// crate's internal helper; the WAL and core keep raw samples so they
/// stay free of metrics dependencies).
pub(crate) fn histogram_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &ns in samples {
        h.record(ns);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = NetMetrics {
            connections: 2,
            requests: 10,
            ..NetMetrics::default()
        };
        a.decode.record(100);
        let mut b = NetMetrics {
            connections: 1,
            requests: 5,
            sheds: 3,
            ..NetMetrics::default()
        };
        b.decode.record(200);
        b.wire.record(1_000);
        a.merge(&b);
        assert_eq!(a.connections, 3);
        assert_eq!(a.requests, 15);
        assert_eq!(a.sheds, 3);
        assert_eq!(a.decode.count(), 2);
        assert_eq!(a.wire.count(), 1);
    }
}
