//! The loopback load driver: N real TCP connections, each pipelining K
//! concurrent transaction streams against [`serve_net`](crate::serve_net).
//!
//! Each connection runs `streams` independent transaction state machines
//! over one socket. Program order holds *within* a stream (the next
//! operation is sent only after the previous one is granted), while the
//! streams interleave freely — so a connection keeps up to `streams`
//! requests in flight, correlated by request id. That is the pipelining
//! the wire protocol exists for: decisions come back in whatever order
//! the core produces them.
//!
//! The driver speaks the full client protocol the in-process sessions
//! do: restart an incarnation on `Aborted` (with capped deterministic
//! backoff), retry the same operation on `Shed`, and treat a server
//! `Error` — or a dead socket — as the loss of *this connection only*,
//! recording its in-flight transactions as lost while the other
//! connections keep going.

use crate::wire::{ReqId, Request, Response};
use relser_core::ids::{OpId, TxnId};
use relser_core::op::AccessMode;
use relser_core::txn::TxnSet;
use relser_server::restart_backoff;
use relser_workload::stream::RequestStream;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tunables for one [`drive`] run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// TCP connections (one thread each).
    pub connections: usize,
    /// Concurrent transaction streams pipelined per connection.
    pub streams: usize,
    /// Give up on a connection whose in-flight requests get no response
    /// for this long.
    pub reply_timeout: Duration,
    /// Give up on a transaction after this many incarnations.
    pub max_attempts: u32,
    /// Base restart/shed backoff; grows linearly with the attempt count.
    pub backoff: Duration,
    /// Cap on the backoff.
    pub backoff_max: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 8,
            streams: 4,
            reply_timeout: Duration::from_secs(30),
            max_attempts: 10_000,
            backoff: Duration::from_micros(200),
            backoff_max: Duration::from_millis(20),
        }
    }
}

/// What the whole driver observed, summed over connections.
#[derive(Clone, Debug, Default)]
pub struct ClientStats {
    /// Transactions acknowledged `Committed`.
    pub committed: u64,
    /// Incarnations restarted after an `Aborted` response.
    pub restarts: u64,
    /// `Shed` responses (each retried).
    pub sheds: u64,
    /// Connections that died (server error response, socket failure, or
    /// response timeout).
    pub failed_connections: u64,
    /// Transactions lost with their connection (in flight when it died)
    /// or abandoned at the attempt budget.
    pub lost: Vec<TxnId>,
}

impl ClientStats {
    fn absorb(&mut self, other: ClientStats) {
        self.committed += other.committed;
        self.restarts += other.restarts;
        self.sheds += other.sheds;
        self.failed_connections += other.failed_connections;
        self.lost.extend(other.lost);
    }
}

/// What a transaction stream sends next.
#[derive(Clone, Copy)]
enum Phase {
    Begin,
    Op(u32),
    Commit,
    /// The arrival stream is exhausted; this slot is finished.
    Done,
}

/// One transaction stream's state machine.
struct Slot {
    txn: TxnId,
    n_ops: u32,
    phase: Phase,
    attempts: u32,
    /// Set while a request is in flight (its id).
    waiting: Option<ReqId>,
    /// Do not send before this (restart/shed backoff).
    ready_at: Instant,
}

impl Slot {
    fn done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }
}

/// Drives every transaction in `stream` to commit over `cfg.connections`
/// real sockets. Blocks until the stream is exhausted and every claimed
/// transaction finished (committed, lost, or abandoned with its
/// connection).
pub fn drive(
    addr: SocketAddr,
    txns: &TxnSet,
    stream: &RequestStream,
    cfg: &LoadConfig,
) -> ClientStats {
    assert!(cfg.connections >= 1 && cfg.streams >= 1);
    let total = Mutex::new(ClientStats::default());
    std::thread::scope(|s| {
        for _ in 0..cfg.connections {
            s.spawn(|| {
                let stats = run_connection(addr, txns, stream, cfg);
                total.lock().expect("stats lock").absorb(stats);
            });
        }
    });
    total.into_inner().expect("stats lock")
}

fn run_connection(
    addr: SocketAddr,
    txns: &TxnSet,
    stream: &RequestStream,
    cfg: &LoadConfig,
) -> ClientStats {
    let mut stats = ClientStats::default();
    let mut sock = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => {
            stats.failed_connections += 1;
            return stats;
        }
    };
    let _ = sock.set_nodelay(true);
    let _ = sock.set_read_timeout(Some(Duration::from_micros(500)));

    let mut slots: Vec<Slot> = Vec::new();
    let mut by_req: HashMap<ReqId, usize> = HashMap::new();
    let mut next_req: ReqId = 1;
    let mut rbuf: Vec<u8> = Vec::new();
    let mut out: Vec<u8> = Vec::new();
    let mut last_response = Instant::now();

    for _ in 0..cfg.streams {
        match stream.next() {
            Some(txn) => slots.push(new_slot(txns, txn)),
            None => break,
        }
    }

    loop {
        if slots.iter().all(|s| s.done()) {
            return stats; // stream exhausted, everything settled
        }

        // Send every stream that is ready.
        out.clear();
        let now = Instant::now();
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.done() || slot.waiting.is_some() || now < slot.ready_at {
                continue;
            }
            let req_id = next_req;
            next_req += 1;
            let req = match slot.phase {
                Phase::Begin => Request::Begin {
                    req_id,
                    txn: slot.txn,
                },
                Phase::Op(index) => {
                    let op = OpId {
                        txn: slot.txn,
                        index,
                    };
                    let operation = txns.op(op).expect("client knows the workload");
                    match operation.mode {
                        AccessMode::Read => Request::Read {
                            req_id,
                            op,
                            object: operation.object,
                        },
                        AccessMode::Write => Request::Write {
                            req_id,
                            op,
                            object: operation.object,
                        },
                    }
                }
                Phase::Commit => Request::Commit {
                    req_id,
                    txn: slot.txn,
                },
                Phase::Done => unreachable!(),
            };
            req.encode_into(&mut out);
            slot.waiting = Some(req_id);
            by_req.insert(req_id, i);
        }
        if !out.is_empty() {
            if sock.write_all(&out).is_err() {
                return die(stats, slots);
            }
            last_response = Instant::now();
        }

        // Read and dispatch whatever responses arrived.
        let mut tmp = [0u8; 4096];
        match sock.read(&mut tmp) {
            Ok(0) => return die(stats, slots),
            Ok(n) => rbuf.extend_from_slice(&tmp[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return die(stats, slots),
        }
        let mut at = 0;
        let mut dead = false;
        while at < rbuf.len() {
            match Response::decode(&rbuf[at..]) {
                Ok((resp, n)) => {
                    at += n;
                    last_response = Instant::now();
                    if dispatch(resp, txns, stream, cfg, &mut slots, &mut by_req, &mut stats)
                        .is_err()
                    {
                        dead = true;
                        break;
                    }
                }
                Err(e) if e.is_incomplete() => break,
                Err(_) => {
                    // The server sent garbage; the stream is unusable.
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            return die(stats, slots);
        }
        if at > 0 {
            rbuf.drain(..at);
        }

        // A connection whose in-flight requests get no answer for the
        // whole timeout is dead (the server closed it, or worse).
        let waiting = slots.iter().any(|s| s.waiting.is_some());
        if waiting && last_response.elapsed() >= cfg.reply_timeout {
            return die(stats, slots);
        }
    }
}

fn new_slot(txns: &TxnSet, txn: TxnId) -> Slot {
    Slot {
        txn,
        n_ops: txns.txn(txn).len() as u32,
        phase: Phase::Begin,
        attempts: 1,
        waiting: None,
        ready_at: Instant::now(),
    }
}

/// The connection is gone: every unfinished stream's transaction is lost.
fn die(mut stats: ClientStats, slots: Vec<Slot>) -> ClientStats {
    stats.failed_connections += 1;
    stats
        .lost
        .extend(slots.into_iter().filter(|s| !s.done()).map(|s| s.txn));
    stats
}

fn backoff(cfg: &LoadConfig, attempts: u32) -> Duration {
    cfg.backoff
        .saturating_mul(attempts.min(64))
        .min(cfg.backoff_max)
}

/// Applies one response to its stream. `Err(())` means the connection
/// must be abandoned (server-reported error or protocol violation).
fn dispatch(
    resp: Response,
    txns: &TxnSet,
    stream: &RequestStream,
    cfg: &LoadConfig,
    slots: &mut [Slot],
    by_req: &mut HashMap<ReqId, usize>,
    stats: &mut ClientStats,
) -> Result<(), ()> {
    if let Response::Error { .. } | Response::Closing { .. } = resp {
        // The server is closing this connection (bad request, lost
        // reply, shutdown) or draining for a graceful shutdown; nothing
        // in flight will be answered.
        return Err(());
    }
    let Some(i) = by_req.remove(&resp.req_id()) else {
        return Err(()); // response to a request we never sent
    };
    let slot = &mut slots[i];
    if slot.waiting != Some(resp.req_id()) {
        return Err(());
    }
    slot.waiting = None;
    match resp {
        Response::Granted { .. } => {
            slot.phase = match slot.phase {
                Phase::Begin if slot.n_ops == 0 => Phase::Commit,
                Phase::Begin => Phase::Op(0),
                Phase::Op(i) if i + 1 < slot.n_ops => Phase::Op(i + 1),
                Phase::Op(_) => Phase::Commit,
                // Commits answer `Committed`, done slots ask nothing.
                Phase::Commit | Phase::Done => return Err(()),
            };
        }
        Response::Committed { .. } => {
            stats.committed += 1;
            refill(txns, stream, slot);
        }
        Response::Aborted { .. } => {
            // The incarnation is dead server-side; restart from the
            // first operation (or give up at the attempt budget).
            slot.attempts += 1;
            if slot.attempts > cfg.max_attempts {
                stats.lost.push(slot.txn);
                refill(txns, stream, slot);
            } else {
                stats.restarts += 1;
                slot.phase = Phase::Begin;
                slot.ready_at = Instant::now() + backoff(cfg, slot.attempts);
            }
        }
        Response::Shed { .. } | Response::Recovering { .. } => {
            // Nothing was enqueued (full queue, or the shard core is
            // mid-recovery); retry the same request after a backoff
            // (the phase is unchanged).
            stats.sheds += 1;
            slot.ready_at = Instant::now() + backoff(cfg, slot.attempts);
        }
        // This driver never sends `Hello`, so a `Welcome` is a protocol
        // violation.
        Response::Welcome { .. } => return Err(()),
        Response::Error { .. } | Response::Closing { .. } => unreachable!("handled above"),
    }
    Ok(())
}

/// Points the slot at the next transaction from the arrival stream, or
/// marks it done when the stream is exhausted.
fn refill(txns: &TxnSet, stream: &RequestStream, slot: &mut Slot) {
    match stream.next() {
        Some(txn) => *slot = new_slot(txns, txn),
        None => slot.phase = Phase::Done,
    }
}

// ---------------------------------------------------------------------
// The resilient, sessionful driver.
// ---------------------------------------------------------------------

/// Tunables for one [`drive_resilient`] run.
#[derive(Clone, Debug)]
pub struct ResilientConfig {
    /// TCP connections (one thread, one session each).
    pub connections: usize,
    /// Concurrent transaction streams pipelined per connection.
    pub streams: usize,
    /// Per-request deadline: a request unanswered this long means the
    /// reply was lost with the connection — reconnect and resume the
    /// session instead of waiting forever.
    pub deadline: Duration,
    /// Base of the capped seeded-jitter backoff (restarts, sheds,
    /// recovering retries, reconnects) — see
    /// [`relser_server::restart_backoff`].
    pub backoff: Duration,
    /// Cap on the backoff.
    pub backoff_max: Duration,
    /// Seed of the backoff jitter and of derived session ids.
    pub seed: u64,
    /// Give up on a transaction after this many incarnations.
    pub max_attempts: u32,
    /// Give up on a connection after this many *consecutive* failed
    /// reconnect attempts (its unfinished transactions are lost).
    pub max_reconnects: u32,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            connections: 4,
            streams: 4,
            deadline: Duration::from_secs(2),
            backoff: Duration::from_micros(200),
            backoff_max: Duration::from_millis(20),
            seed: 0x5E55_10F1,
            max_attempts: 10_000,
            max_reconnects: 64,
        }
    }
}

/// What the resilient driver observed, summed over connections.
#[derive(Clone, Debug, Default)]
pub struct ResilientStats {
    /// Every commit acknowledgment received, `(txn, req_id)` in ack
    /// order. The chaos sweep's ground truth: each acked transaction
    /// must appear in the recovered committed history exactly once.
    pub committed: Vec<(TxnId, ReqId)>,
    /// Incarnations restarted after an `Aborted` response.
    pub restarts: u64,
    /// `Shed` responses (each retried).
    pub sheds: u64,
    /// `Recovering` responses (shard core mid-restart; each retried).
    pub recoverings: u64,
    /// Successful reconnect-with-session-resume handshakes.
    pub reconnects: u64,
    /// Commits re-sent under their original request id (the
    /// exactly-once path).
    pub commit_retries: u64,
    /// Client-side wire faults injected by the chaos plan.
    pub wire_faults: u64,
    /// Request deadlines that triggered a reconnect.
    pub deadline_kicks: u64,
    /// Transactions abandoned (attempt budget, or lost with a
    /// connection that exhausted its reconnect budget).
    pub lost: Vec<TxnId>,
    /// Connections that exhausted `max_reconnects`.
    pub dead_connections: u64,
}

impl ResilientStats {
    fn absorb(&mut self, other: ResilientStats) {
        self.committed.extend(other.committed);
        self.restarts += other.restarts;
        self.sheds += other.sheds;
        self.recoverings += other.recoverings;
        self.reconnects += other.reconnects;
        self.commit_retries += other.commit_retries;
        self.wire_faults += other.wire_faults;
        self.deadline_kicks += other.deadline_kicks;
        self.lost.extend(other.lost);
        self.dead_connections += other.dead_connections;
    }
}

/// One transaction stream under the resilient protocol.
struct RSlot {
    txn: TxnId,
    n_ops: u32,
    phase: Phase,
    attempts: u32,
    /// The in-flight request, if any: `(req_id, sent_at)`.
    waiting: Option<(ReqId, Instant)>,
    /// The request id this incarnation's commit is pinned to. Assigned
    /// at the first commit send and reused by every retry until the
    /// verdict arrives — the invariant the server's retry table
    /// deduplicates by.
    commit_req: Option<ReqId>,
    /// Do not send before this (backoff).
    ready_at: Instant,
}

impl RSlot {
    fn new(txns: &TxnSet, txn: TxnId) -> RSlot {
        RSlot {
            txn,
            n_ops: txns.txn(txn).len() as u32,
            phase: Phase::Begin,
            attempts: 1,
            waiting: None,
            commit_req: None,
            ready_at: Instant::now(),
        }
    }

    fn done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    fn refill(&mut self, txns: &TxnSet, stream: &RequestStream) {
        match stream.next() {
            Some(txn) => *self = RSlot::new(txns, txn),
            None => self.phase = Phase::Done,
        }
    }
}

/// Drives every transaction in `stream` to commit over
/// `cfg.connections` sessionful sockets, surviving connection resets,
/// torn writes, stalled sockets, lost replies, and supervised shard-core
/// restarts. `chaos` injects client-side wire faults (pass
/// [`ChaosPlan::quiet`](crate::ChaosPlan::quiet) for none).
///
/// The exactly-once discipline: each connection opens a session
/// (`Hello`) and pins every incarnation's commit to one request id;
/// whatever happens to the socket, the commit is retried under that id
/// until a verdict arrives, and the server's durable session table
/// guarantees the verdict is the original one.
pub fn drive_resilient(
    addr: SocketAddr,
    txns: &TxnSet,
    stream: &RequestStream,
    cfg: &ResilientConfig,
    chaos: &crate::ChaosPlan,
) -> ResilientStats {
    assert!(cfg.connections >= 1 && cfg.streams >= 1);
    let total = Mutex::new(ResilientStats::default());
    std::thread::scope(|s| {
        for conn_id in 0..cfg.connections as u64 {
            let total = &total;
            s.spawn(move || {
                let stats = run_resilient(addr, txns, stream, cfg, chaos, conn_id);
                total.lock().expect("stats lock").absorb(stats);
            });
        }
    });
    total.into_inner().expect("stats lock")
}

/// The socket half of one resilient connection: stream + read buffer +
/// the hello handshake state.
struct Wire {
    sock: TcpStream,
    rbuf: Vec<u8>,
}

impl Wire {
    fn connect(addr: SocketAddr) -> Option<Wire> {
        let sock = TcpStream::connect(addr).ok()?;
        let _ = sock.set_nodelay(true);
        let _ = sock.set_read_timeout(Some(Duration::from_micros(500)));
        Some(Wire {
            sock,
            rbuf: Vec::new(),
        })
    }
}

fn run_resilient(
    addr: SocketAddr,
    txns: &TxnSet,
    stream: &RequestStream,
    cfg: &ResilientConfig,
    chaos: &crate::ChaosPlan,
    conn_id: u64,
) -> ResilientStats {
    let mut stats = ResilientStats::default();
    let session = cfg.seed.rotate_left(24) ^ (conn_id + 1);
    let mut dice = chaos.dice(conn_id);

    let mut slots: Vec<RSlot> = Vec::new();
    for _ in 0..cfg.streams {
        match stream.next() {
            Some(txn) => slots.push(RSlot::new(txns, txn)),
            None => break,
        }
    }

    let mut next_req: ReqId = 1;
    let mut by_req: HashMap<ReqId, usize> = HashMap::new();
    let mut hello_req: Option<ReqId> = None;
    let mut last_acked: u64 = 0;
    let mut out: Vec<u8> = Vec::new();
    let mut wire: Option<Wire> = None;
    let mut reconnects_in_a_row: u32 = 0;

    loop {
        if slots.iter().all(|s| s.done()) {
            return stats;
        }

        // (Re)connect and resume the session.
        let w = match wire.as_mut() {
            Some(w) => w,
            None => {
                if reconnects_in_a_row >= cfg.max_reconnects {
                    stats.dead_connections += 1;
                    stats
                        .lost
                        .extend(slots.iter().filter(|s| !s.done()).map(|s| s.txn));
                    return stats;
                }
                if reconnects_in_a_row > 0 {
                    std::thread::sleep(restart_backoff(
                        cfg.backoff,
                        cfg.backoff_max,
                        cfg.seed ^ 0xC0AC,
                        TxnId(conn_id as u32),
                        reconnects_in_a_row + 1,
                    ));
                }
                reconnects_in_a_row += 1;
                let Some(mut fresh) = Wire::connect(addr) else {
                    continue;
                };
                // Resume the session: Hello first, pipelined ahead of
                // everything else (the reactor applies it in order, so
                // all later commits on this connection are protected).
                by_req.clear();
                let req_id = next_req;
                next_req += 1;
                hello_req = Some(req_id);
                out.clear();
                Request::Hello {
                    req_id,
                    session,
                    resume_from: last_acked,
                }
                .encode_into(&mut out);
                if fresh.sock.write_all(&out).is_err() {
                    continue;
                }
                // Roll every slot back to a resumable point: an
                // in-flight commit is retried under its pinned id; any
                // other in-flight state restarts the incarnation (the
                // server aborts orphans of the dead connection, and the
                // core's commit supremacy protects anything acked).
                for slot in slots.iter_mut() {
                    if slot.done() {
                        continue;
                    }
                    slot.waiting = None;
                    // A pinned commit resumes as a commit retry; any
                    // other incarnation restarts from the top (the dead
                    // connection's orphans are aborted server-side).
                    slot.phase = if slot.commit_req.is_some() {
                        Phase::Commit
                    } else {
                        Phase::Begin
                    };
                    slot.ready_at = Instant::now();
                }
                stats.reconnects += 1;
                wire = Some(fresh);
                wire.as_mut().expect("just set")
            }
        };

        // Send every stream that is ready.
        out.clear();
        let now = Instant::now();
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.done() || slot.waiting.is_some() || now < slot.ready_at {
                continue;
            }
            let req_id = match slot.phase {
                // The commit id is pinned across retries: exactly-once
                // hangs on the server seeing the same (session, req_id).
                Phase::Commit => match slot.commit_req {
                    Some(id) => {
                        stats.commit_retries += 1;
                        id
                    }
                    None => {
                        let id = next_req;
                        next_req += 1;
                        slot.commit_req = Some(id);
                        id
                    }
                },
                _ => {
                    let id = next_req;
                    next_req += 1;
                    id
                }
            };
            let req = match slot.phase {
                Phase::Begin => Request::Begin {
                    req_id,
                    txn: slot.txn,
                },
                Phase::Op(index) => {
                    let op = OpId {
                        txn: slot.txn,
                        index,
                    };
                    let operation = txns.op(op).expect("client knows the workload");
                    match operation.mode {
                        AccessMode::Read => Request::Read {
                            req_id,
                            op,
                            object: operation.object,
                        },
                        AccessMode::Write => Request::Write {
                            req_id,
                            op,
                            object: operation.object,
                        },
                    }
                }
                Phase::Commit => Request::Commit {
                    req_id,
                    txn: slot.txn,
                },
                Phase::Done => unreachable!(),
            };
            req.encode_into(&mut out);
            slot.waiting = Some((req_id, now));
            by_req.insert(req_id, i);
        }

        // Chaos gate: the bytes may be delivered, torn, stalled, or the
        // socket reset outright.
        if !out.is_empty() {
            match dice.roll() {
                crate::WireFault::None => {
                    if w.sock.write_all(&out).is_err() {
                        wire = None;
                        continue;
                    }
                }
                crate::WireFault::Reset => {
                    stats.wire_faults += 1;
                    let _ = w.sock.shutdown(Shutdown::Both);
                    wire = None;
                    continue;
                }
                crate::WireFault::TornWrite => {
                    stats.wire_faults += 1;
                    if out.len() >= 2 {
                        let cut = dice.tear_at(out.len());
                        let _ = w.sock.write_all(&out[..cut]);
                    }
                    let _ = w.sock.shutdown(Shutdown::Both);
                    wire = None;
                    continue;
                }
                crate::WireFault::Stall => {
                    stats.wire_faults += 1;
                    if w.sock.write_all(&out[..1]).is_err() {
                        wire = None;
                        continue;
                    }
                    std::thread::sleep(chaos.stall);
                    if w.sock.write_all(&out[1..]).is_err() {
                        wire = None;
                        continue;
                    }
                }
            }
        }

        // Read and dispatch whatever responses arrived.
        let mut tmp = [0u8; 4096];
        match w.sock.read(&mut tmp) {
            Ok(0) => {
                wire = None;
                continue;
            }
            Ok(n) => w.rbuf.extend_from_slice(&tmp[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                wire = None;
                continue;
            }
        }
        let mut at = 0;
        let mut drop_conn = false;
        while at < w.rbuf.len() {
            match Response::decode(&w.rbuf[at..]) {
                Ok((resp, n)) => {
                    at += n;
                    if resilient_dispatch(
                        resp,
                        txns,
                        stream,
                        cfg,
                        &mut slots,
                        &mut by_req,
                        &mut hello_req,
                        &mut last_acked,
                        &mut reconnects_in_a_row,
                        &mut stats,
                    )
                    .is_err()
                    {
                        drop_conn = true;
                        break;
                    }
                }
                Err(e) if e.is_incomplete() => break,
                Err(_) => {
                    drop_conn = true;
                    break;
                }
            }
        }
        if at > 0 {
            w.rbuf.drain(..at);
        }
        if drop_conn {
            let _ = w.sock.shutdown(Shutdown::Both);
            wire = None;
            continue;
        }

        // Deadline watchdog: an unanswered request means its reply died
        // with the reply-drop fault (or the socket wedged). Reconnect
        // and resume rather than waiting forever.
        let now = Instant::now();
        let overdue = slots.iter().any(|s| {
            s.waiting
                .is_some_and(|(_, sent)| now.duration_since(sent) >= cfg.deadline)
        });
        if overdue {
            stats.deadline_kicks += 1;
            let _ = w.sock.shutdown(Shutdown::Both);
            wire = None;
            continue;
        }
    }
}

/// Applies one response under the resilient protocol. `Err(())` forces
/// a reconnect (never a give-up: the session resumes).
#[allow(clippy::too_many_arguments)]
fn resilient_dispatch(
    resp: Response,
    txns: &TxnSet,
    stream: &RequestStream,
    cfg: &ResilientConfig,
    slots: &mut [RSlot],
    by_req: &mut HashMap<ReqId, usize>,
    hello_req: &mut Option<ReqId>,
    last_acked: &mut u64,
    reconnects_in_a_row: &mut u32,
    stats: &mut ResilientStats,
) -> Result<(), ()> {
    match resp {
        Response::Closing { .. } | Response::Error { .. } => return Err(()),
        Response::Welcome { req_id } => {
            if *hello_req == Some(req_id) {
                *hello_req = None;
                // The session is live again; the connection is healthy.
                *reconnects_in_a_row = 0;
            }
            return Ok(());
        }
        _ => {}
    }
    let req_id = resp.req_id();
    let Some(i) = by_req.remove(&req_id) else {
        // A reply from before the last reconnect; stale, ignore.
        return Ok(());
    };
    let slot = &mut slots[i];
    if slot.waiting.map(|(id, _)| id) != Some(req_id) {
        return Ok(());
    }
    slot.waiting = None;
    *reconnects_in_a_row = 0;
    match resp {
        Response::Granted { .. } => {
            slot.phase = match slot.phase {
                Phase::Begin if slot.n_ops == 0 => Phase::Commit,
                Phase::Begin => Phase::Op(0),
                Phase::Op(i) if i + 1 < slot.n_ops => Phase::Op(i + 1),
                Phase::Op(_) => Phase::Commit,
                Phase::Commit | Phase::Done => return Err(()),
            };
        }
        Response::Committed { .. } => {
            *last_acked = (*last_acked).max(req_id);
            stats.committed.push((slot.txn, req_id));
            slot.refill(txns, stream);
        }
        Response::Aborted { .. } => {
            // The incarnation is dead server-side (scheduler abort,
            // waits-for timeout, crash rollback, or a retired retry);
            // restart from the top with a fresh commit id.
            slot.attempts += 1;
            slot.commit_req = None;
            if slot.attempts > cfg.max_attempts {
                stats.lost.push(slot.txn);
                slot.refill(txns, stream);
            } else {
                stats.restarts += 1;
                slot.phase = Phase::Begin;
                slot.ready_at = Instant::now()
                    + restart_backoff(
                        cfg.backoff,
                        cfg.backoff_max,
                        cfg.seed,
                        slot.txn,
                        slot.attempts,
                    );
            }
        }
        Response::Shed { .. } => {
            stats.sheds += 1;
            slot.ready_at = Instant::now()
                + restart_backoff(
                    cfg.backoff,
                    cfg.backoff_max,
                    cfg.seed ^ 0x5ED,
                    slot.txn,
                    slot.attempts + 1,
                );
        }
        Response::Recovering { .. } => {
            // The shard core is being restarted in place. Nothing was
            // enqueued; back off and re-send the same phase (a commit
            // keeps its pinned id — that is the exactly-once retry).
            stats.recoverings += 1;
            slot.ready_at = Instant::now()
                + restart_backoff(
                    cfg.backoff,
                    cfg.backoff_max,
                    cfg.seed ^ 0x4EC0,
                    slot.txn,
                    slot.attempts + 1,
                );
        }
        Response::Welcome { .. } | Response::Error { .. } | Response::Closing { .. } => {
            unreachable!("handled above")
        }
    }
    Ok(())
}
