//! The loopback load driver: N real TCP connections, each pipelining K
//! concurrent transaction streams against [`serve_net`](crate::serve_net).
//!
//! Each connection runs `streams` independent transaction state machines
//! over one socket. Program order holds *within* a stream (the next
//! operation is sent only after the previous one is granted), while the
//! streams interleave freely — so a connection keeps up to `streams`
//! requests in flight, correlated by request id. That is the pipelining
//! the wire protocol exists for: decisions come back in whatever order
//! the core produces them.
//!
//! The driver speaks the full client protocol the in-process sessions
//! do: restart an incarnation on `Aborted` (with capped deterministic
//! backoff), retry the same operation on `Shed`, and treat a server
//! `Error` — or a dead socket — as the loss of *this connection only*,
//! recording its in-flight transactions as lost while the other
//! connections keep going.

use crate::wire::{ReqId, Request, Response};
use relser_core::ids::{OpId, TxnId};
use relser_core::op::AccessMode;
use relser_core::txn::TxnSet;
use relser_workload::stream::RequestStream;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tunables for one [`drive`] run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// TCP connections (one thread each).
    pub connections: usize,
    /// Concurrent transaction streams pipelined per connection.
    pub streams: usize,
    /// Give up on a connection whose in-flight requests get no response
    /// for this long.
    pub reply_timeout: Duration,
    /// Give up on a transaction after this many incarnations.
    pub max_attempts: u32,
    /// Base restart/shed backoff; grows linearly with the attempt count.
    pub backoff: Duration,
    /// Cap on the backoff.
    pub backoff_max: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 8,
            streams: 4,
            reply_timeout: Duration::from_secs(30),
            max_attempts: 10_000,
            backoff: Duration::from_micros(200),
            backoff_max: Duration::from_millis(20),
        }
    }
}

/// What the whole driver observed, summed over connections.
#[derive(Clone, Debug, Default)]
pub struct ClientStats {
    /// Transactions acknowledged `Committed`.
    pub committed: u64,
    /// Incarnations restarted after an `Aborted` response.
    pub restarts: u64,
    /// `Shed` responses (each retried).
    pub sheds: u64,
    /// Connections that died (server error response, socket failure, or
    /// response timeout).
    pub failed_connections: u64,
    /// Transactions lost with their connection (in flight when it died)
    /// or abandoned at the attempt budget.
    pub lost: Vec<TxnId>,
}

impl ClientStats {
    fn absorb(&mut self, other: ClientStats) {
        self.committed += other.committed;
        self.restarts += other.restarts;
        self.sheds += other.sheds;
        self.failed_connections += other.failed_connections;
        self.lost.extend(other.lost);
    }
}

/// What a transaction stream sends next.
#[derive(Clone, Copy)]
enum Phase {
    Begin,
    Op(u32),
    Commit,
    /// The arrival stream is exhausted; this slot is finished.
    Done,
}

/// One transaction stream's state machine.
struct Slot {
    txn: TxnId,
    n_ops: u32,
    phase: Phase,
    attempts: u32,
    /// Set while a request is in flight (its id).
    waiting: Option<ReqId>,
    /// Do not send before this (restart/shed backoff).
    ready_at: Instant,
}

impl Slot {
    fn done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }
}

/// Drives every transaction in `stream` to commit over `cfg.connections`
/// real sockets. Blocks until the stream is exhausted and every claimed
/// transaction finished (committed, lost, or abandoned with its
/// connection).
pub fn drive(
    addr: SocketAddr,
    txns: &TxnSet,
    stream: &RequestStream,
    cfg: &LoadConfig,
) -> ClientStats {
    assert!(cfg.connections >= 1 && cfg.streams >= 1);
    let total = Mutex::new(ClientStats::default());
    std::thread::scope(|s| {
        for _ in 0..cfg.connections {
            s.spawn(|| {
                let stats = run_connection(addr, txns, stream, cfg);
                total.lock().expect("stats lock").absorb(stats);
            });
        }
    });
    total.into_inner().expect("stats lock")
}

fn run_connection(
    addr: SocketAddr,
    txns: &TxnSet,
    stream: &RequestStream,
    cfg: &LoadConfig,
) -> ClientStats {
    let mut stats = ClientStats::default();
    let mut sock = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => {
            stats.failed_connections += 1;
            return stats;
        }
    };
    let _ = sock.set_nodelay(true);
    let _ = sock.set_read_timeout(Some(Duration::from_micros(500)));

    let mut slots: Vec<Slot> = Vec::new();
    let mut by_req: HashMap<ReqId, usize> = HashMap::new();
    let mut next_req: ReqId = 1;
    let mut rbuf: Vec<u8> = Vec::new();
    let mut out: Vec<u8> = Vec::new();
    let mut last_response = Instant::now();

    for _ in 0..cfg.streams {
        match stream.next() {
            Some(txn) => slots.push(new_slot(txns, txn)),
            None => break,
        }
    }

    loop {
        if slots.iter().all(|s| s.done()) {
            return stats; // stream exhausted, everything settled
        }

        // Send every stream that is ready.
        out.clear();
        let now = Instant::now();
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.done() || slot.waiting.is_some() || now < slot.ready_at {
                continue;
            }
            let req_id = next_req;
            next_req += 1;
            let req = match slot.phase {
                Phase::Begin => Request::Begin {
                    req_id,
                    txn: slot.txn,
                },
                Phase::Op(index) => {
                    let op = OpId {
                        txn: slot.txn,
                        index,
                    };
                    let operation = txns.op(op).expect("client knows the workload");
                    match operation.mode {
                        AccessMode::Read => Request::Read {
                            req_id,
                            op,
                            object: operation.object,
                        },
                        AccessMode::Write => Request::Write {
                            req_id,
                            op,
                            object: operation.object,
                        },
                    }
                }
                Phase::Commit => Request::Commit {
                    req_id,
                    txn: slot.txn,
                },
                Phase::Done => unreachable!(),
            };
            req.encode_into(&mut out);
            slot.waiting = Some(req_id);
            by_req.insert(req_id, i);
        }
        if !out.is_empty() {
            if sock.write_all(&out).is_err() {
                return die(stats, slots);
            }
            last_response = Instant::now();
        }

        // Read and dispatch whatever responses arrived.
        let mut tmp = [0u8; 4096];
        match sock.read(&mut tmp) {
            Ok(0) => return die(stats, slots),
            Ok(n) => rbuf.extend_from_slice(&tmp[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return die(stats, slots),
        }
        let mut at = 0;
        let mut dead = false;
        while at < rbuf.len() {
            match Response::decode(&rbuf[at..]) {
                Ok((resp, n)) => {
                    at += n;
                    last_response = Instant::now();
                    if dispatch(resp, txns, stream, cfg, &mut slots, &mut by_req, &mut stats)
                        .is_err()
                    {
                        dead = true;
                        break;
                    }
                }
                Err(e) if e.is_incomplete() => break,
                Err(_) => {
                    // The server sent garbage; the stream is unusable.
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            return die(stats, slots);
        }
        if at > 0 {
            rbuf.drain(..at);
        }

        // A connection whose in-flight requests get no answer for the
        // whole timeout is dead (the server closed it, or worse).
        let waiting = slots.iter().any(|s| s.waiting.is_some());
        if waiting && last_response.elapsed() >= cfg.reply_timeout {
            return die(stats, slots);
        }
    }
}

fn new_slot(txns: &TxnSet, txn: TxnId) -> Slot {
    Slot {
        txn,
        n_ops: txns.txn(txn).len() as u32,
        phase: Phase::Begin,
        attempts: 1,
        waiting: None,
        ready_at: Instant::now(),
    }
}

/// The connection is gone: every unfinished stream's transaction is lost.
fn die(mut stats: ClientStats, slots: Vec<Slot>) -> ClientStats {
    stats.failed_connections += 1;
    stats
        .lost
        .extend(slots.into_iter().filter(|s| !s.done()).map(|s| s.txn));
    stats
}

fn backoff(cfg: &LoadConfig, attempts: u32) -> Duration {
    cfg.backoff
        .saturating_mul(attempts.min(64))
        .min(cfg.backoff_max)
}

/// Applies one response to its stream. `Err(())` means the connection
/// must be abandoned (server-reported error or protocol violation).
fn dispatch(
    resp: Response,
    txns: &TxnSet,
    stream: &RequestStream,
    cfg: &LoadConfig,
    slots: &mut [Slot],
    by_req: &mut HashMap<ReqId, usize>,
    stats: &mut ClientStats,
) -> Result<(), ()> {
    if let Response::Error { .. } = resp {
        // The server is closing this connection (bad request, lost
        // reply, shutdown); nothing in flight will be answered.
        return Err(());
    }
    let Some(i) = by_req.remove(&resp.req_id()) else {
        return Err(()); // response to a request we never sent
    };
    let slot = &mut slots[i];
    if slot.waiting != Some(resp.req_id()) {
        return Err(());
    }
    slot.waiting = None;
    match resp {
        Response::Granted { .. } => {
            slot.phase = match slot.phase {
                Phase::Begin if slot.n_ops == 0 => Phase::Commit,
                Phase::Begin => Phase::Op(0),
                Phase::Op(i) if i + 1 < slot.n_ops => Phase::Op(i + 1),
                Phase::Op(_) => Phase::Commit,
                // Commits answer `Committed`, done slots ask nothing.
                Phase::Commit | Phase::Done => return Err(()),
            };
        }
        Response::Committed { .. } => {
            stats.committed += 1;
            refill(txns, stream, slot);
        }
        Response::Aborted { .. } => {
            // The incarnation is dead server-side; restart from the
            // first operation (or give up at the attempt budget).
            slot.attempts += 1;
            if slot.attempts > cfg.max_attempts {
                stats.lost.push(slot.txn);
                refill(txns, stream, slot);
            } else {
                stats.restarts += 1;
                slot.phase = Phase::Begin;
                slot.ready_at = Instant::now() + backoff(cfg, slot.attempts);
            }
        }
        Response::Shed { .. } => {
            // Nothing was enqueued; retry the same request after a
            // backoff (the phase is unchanged).
            stats.sheds += 1;
            slot.ready_at = Instant::now() + backoff(cfg, slot.attempts);
        }
        Response::Error { .. } => unreachable!("handled above"),
    }
    Ok(())
}

/// Points the slot at the next transaction from the arrival stream, or
/// marks it done when the stream is exhausted.
fn refill(txns: &TxnSet, stream: &RequestStream, slot: &mut Slot) {
    match stream.next() {
        Some(txn) => *slot = new_slot(txns, txn),
        None => slot.phase = Phase::Done,
    }
}
