//! Server orchestration: listener + acceptor + reactors + the
//! single-writer admission core, wired under one `thread::scope`.

use crate::conn::{ReactorCtx, ShardRoute};
use crate::metrics::{histogram_of, NetMetrics, NetReport};
use crate::reactor::{accept_loop, run_reactor};
use relser_core::shard::ShardMap;
use relser_core::spec::AtomicitySpec;
use relser_core::txn::TxnSet;
use relser_protocols::Scheduler;
use relser_server::core::{run_core_durable, Command, FaultPlan, Progress};
use relser_server::queue::BoundedQueue;
use relser_server::recovery::{recover_sharded_segments_with_certifier, ShardedRecovery};
use relser_server::supervisor::{
    supervise_shard, SessionTable, ShardHealth, SupervisedRun, SupervisorCfg,
};
use relser_server::{Certifier, OverloadPolicy, ServerMetrics};
use relser_simdb::metrics::DecisionLatency;
use relser_wal::{CheckpointPolicy, CommitLog, FsyncPolicy, MemSegmentStore, MemSegmentsHandle};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Tunables for one [`serve_net`] run.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Reactor threads multiplexing the connections.
    pub reactors: usize,
    /// Command queue capacity (the admission backpressure threshold).
    pub queue_capacity: usize,
    /// Max commands the core drains per queue lock acquisition.
    pub batch_max: usize,
    /// What happens to operation requests when the queue is full:
    /// `Wait` defers them (pausing the connection's reads — TCP
    /// backpressure), `Shed` answers [`crate::wire::Response::Shed`].
    pub policy: OverloadPolicy,
    /// Per-connection cap on in-flight commands (pipelining depth the
    /// server is willing to buffer before pausing reads).
    pub max_inflight: usize,
    /// Abort a transaction blocked on an unchanged waits-for set this
    /// long (deadlock resolution, mirroring the in-process sessions).
    pub block_timeout: Duration,
    /// Re-submit a blocked operation at least this often.
    pub retry_slice: Duration,
    /// Close a connection whose request the core never answers within
    /// this (the degrade-don't-die path).
    pub reply_timeout: Duration,
    /// Reactor/acceptor idle sleep.
    pub poll_quantum: Duration,
    /// Record a replayable core trace.
    pub record_trace: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            reactors: 2,
            queue_capacity: 1024,
            batch_max: 64,
            policy: OverloadPolicy::Wait,
            max_inflight: 32,
            block_timeout: Duration::from_millis(100),
            retry_slice: Duration::from_millis(1),
            reply_timeout: Duration::from_secs(5),
            poll_quantum: Duration::from_micros(100),
            record_trace: false,
        }
    }
}

impl NetConfig {
    /// Sets the reactor's reply watchdog: how long the core may stay
    /// silent on a submitted request before the connection is degraded
    /// with [`crate::wire::ErrorCode::ReplyLost`].
    pub fn with_reply_timeout(mut self, t: Duration) -> NetConfig {
        self.reply_timeout = t;
        self
    }

    /// Sets the waits-for block timeout (deadlock resolution).
    pub fn with_block_timeout(mut self, t: Duration) -> NetConfig {
        self.block_timeout = t;
        self
    }

    /// Sets the reactor/acceptor idle poll quantum.
    pub fn with_poll_quantum(mut self, t: Duration) -> NetConfig {
        self.poll_quantum = t;
        self
    }

    /// Sets the reactor thread count.
    pub fn with_reactors(mut self, n: usize) -> NetConfig {
        self.reactors = n;
        self
    }
}

/// Serves the transaction set over real TCP on a loopback address.
///
/// Binds `127.0.0.1:0`, spawns the admission core, `cfg.reactors`
/// reactor threads and an acceptor, then calls `client` with the bound
/// address on the current thread — the closure drives load (connect,
/// pipeline requests, commit transactions) and its return ends the run:
/// the acceptor stops, the reactors drain and close every connection
/// (aborting whatever the client left live), the queue closes, and the
/// core exits. Returns the combined [`NetReport`] plus the closure's
/// own result.
///
/// The scheduler may borrow `txns` (e.g. `RsgSgt::new(&txns, &spec)`),
/// which is why the server runs under `thread::scope` behind a closure
/// instead of owning `'static` threads.
pub fn serve_net<R>(
    txns: &TxnSet,
    scheduler: Box<dyn Scheduler + Send + '_>,
    cfg: &NetConfig,
    faults: &FaultPlan,
    wal: Option<&mut dyn CommitLog>,
    client: impl FnOnce(SocketAddr) -> R,
) -> io::Result<(NetReport, R)> {
    assert!(cfg.reactors >= 1, "need at least one reactor");
    let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let queue: BoundedQueue<Command> = BoundedQueue::new(cfg.queue_capacity);
    let progress = Progress::new();
    let stop = AtomicBool::new(false);
    let ctx = ReactorCtx {
        queue: &queue,
        progress: &progress,
        txns,
        policy: cfg.policy,
        max_inflight: cfg.max_inflight,
        block_timeout: cfg.block_timeout,
        retry_slice: cfg.retry_slice,
        reply_timeout: cfg.reply_timeout,
        route: None,
        sessions: None,
    };
    let t0 = Instant::now();

    let (core_out, net, client_out) = std::thread::scope(|s| {
        let queue_ref = &queue;
        let progress_ref = &progress;
        let stop_ref = &stop;
        let ctx_ref = &ctx;
        let listener_ref = &listener;
        let core = s.spawn(move || {
            run_core_durable(
                scheduler,
                queue_ref,
                progress_ref,
                cfg.batch_max,
                cfg.record_trace,
                faults,
                wal,
            )
        });
        let mut senders = Vec::with_capacity(cfg.reactors);
        let mut reactors = Vec::with_capacity(cfg.reactors);
        for _ in 0..cfg.reactors {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            reactors.push(s.spawn(move || run_reactor(ctx_ref, rx, stop_ref, cfg.poll_quantum)));
        }
        let acceptor =
            s.spawn(move || accept_loop(listener_ref, senders, stop_ref, cfg.poll_quantum));

        let client_out = client(addr);

        stop.store(true, Ordering::Release);
        acceptor.join().expect("acceptor thread panicked");
        let mut net = NetMetrics::default();
        for r in reactors {
            net.merge(&r.join().expect("reactor thread panicked"));
        }
        queue.close();
        let core_out = core.join().expect("admission core panicked");
        (core_out, net, client_out)
    });
    let elapsed = t0.elapsed();

    let committed_ops = core_out
        .log
        .iter()
        .filter(|o| core_out.committed.contains(&o.txn))
        .count() as u64;
    let metrics = ServerMetrics {
        workers: net.connections as usize,
        commits: core_out.commits,
        aborts: core_out.aborts,
        timeout_aborts: core_out.timeout_aborts,
        sheds: net.sheds,
        requests: core_out.grants + core_out.blocked + core_out.aborts,
        grants: core_out.grants,
        blocked: core_out.blocked,
        commands: core_out.commands,
        batches: core_out.batches,
        max_batch: core_out.max_batch,
        queue: queue.stats(),
        decision: DecisionLatency::from_samples(&core_out.decision_ns),
        admission: core_out.admission,
        queue_wait: core_out.queue_wait,
        wal_sync: histogram_of(&core_out.wal_sync_ns),
        elapsed,
        committed_ops,
        backoff_ns: 0,
        max_txn_attempts: 0,
        wal: core_out.wal,
        wal_error: core_out.wal_error.clone(),
        supervisor_restarts: 0,
        supervisor_panics: 0,
        failed_shards: 0,
    };
    let admit = histogram_of(&core_out.decision_ns);

    Ok((
        NetReport {
            committed: core_out.committed,
            log: core_out.log,
            trace: core_out.trace,
            crashed: core_out.crashed,
            metrics,
            net,
            admit,
        },
        client_out,
    ))
}

/// Supervision tunables for one [`serve_net_supervised`] run.
#[derive(Clone, Debug)]
pub struct SuperviseNetConfig {
    /// Shard cores (the object space is partitioned across them).
    pub shards: usize,
    /// The engine recovery re-certifies committed history with.
    pub certifier: Certifier,
    /// Fsync policy of every shard core's segmented log.
    pub fsync: FsyncPolicy,
    /// Checkpoint/rotation policy of every shard core's log.
    pub ckpt: CheckpointPolicy,
    /// Per-shard supervisor restart budget.
    pub max_restarts: u64,
}

impl Default for SuperviseNetConfig {
    fn default() -> Self {
        SuperviseNetConfig {
            shards: 2,
            certifier: Certifier::default(),
            fsync: FsyncPolicy::Always,
            ckpt: CheckpointPolicy::default(),
            max_restarts: 8,
        }
    }
}

/// What one supervised sharded run produced. The WAL segment streams are
/// the source of truth: `recovery` is their offline merge through
/// [`recover_sharded_segments_with_certifier`] — the committed set and
/// history it reports are what a post-crash service would serve, which
/// is exactly the set acknowledged commits must be a subset of.
pub struct SupervisedNetReport {
    /// The offline merge of every shard's retained segment stream.
    pub recovery: ShardedRecovery,
    /// Per-shard supervisor outcomes (index = shard id).
    pub runs: Vec<SupervisedRun>,
    /// Merged core metrics (supervisor counters included).
    pub metrics: ServerMetrics,
    /// Merged reactor metrics.
    pub net: NetMetrics,
    /// Per-reactor-stage latency report.
    pub report: NetReport,
}

/// [`serve_net`] with the supervised sharded back-end: `sup.shards`
/// shard cores, each under [`supervise_shard`]'s panic/fail-stop
/// boundary, a durable client-session retry table for exactly-once
/// commit retries, and per-shard segmented WALs recovered **in place**
/// when a core dies — the process, the listener, and every other shard
/// keep serving.
///
/// `make_scheduler(shard)` must return a fresh scheduler each call (the
/// supervisor also calls it on every restart). `faults` is one
/// [`FaultPlan`] per shard (empty = no faults anywhere), applied to each
/// shard's *first* incarnation only.
///
/// Only single-shard transactions are admissible over the wire; the
/// cross-shard two-phase admit remains an in-process protocol.
pub fn serve_net_supervised<'e, R>(
    txns: &'e TxnSet,
    spec: &'e AtomicitySpec,
    make_scheduler: impl Fn(u32) -> Box<dyn Scheduler + Send + 'e> + Sync,
    cfg: &NetConfig,
    sup: &SuperviseNetConfig,
    faults: &[FaultPlan],
    client: impl FnOnce(SocketAddr) -> R,
) -> io::Result<(SupervisedNetReport, R)> {
    let stores: Vec<MemSegmentsHandle> =
        (0..sup.shards).map(|_| MemSegmentStore::new().1).collect();
    serve_net_supervised_in(
        txns,
        spec,
        make_scheduler,
        cfg,
        sup,
        faults,
        &stores,
        client,
    )
}

/// [`serve_net_supervised`] over caller-owned segment stores — non-empty
/// stores are recovered and resumed, so a second call with the same
/// stores models a whole-service restart: every commit the first life
/// acknowledged is served (and re-certified) by the second.
#[allow(clippy::too_many_arguments)]
pub fn serve_net_supervised_in<'e, R>(
    txns: &'e TxnSet,
    spec: &'e AtomicitySpec,
    make_scheduler: impl Fn(u32) -> Box<dyn Scheduler + Send + 'e> + Sync,
    cfg: &NetConfig,
    sup: &SuperviseNetConfig,
    faults: &[FaultPlan],
    stores: &[MemSegmentsHandle],
    client: impl FnOnce(SocketAddr) -> R,
) -> io::Result<(SupervisedNetReport, R)> {
    assert!(cfg.reactors >= 1, "need at least one reactor");
    assert!(sup.shards >= 1, "need at least one shard");
    assert!(
        faults.is_empty() || faults.len() == sup.shards,
        "fault plans must be absent or one per shard"
    );
    assert!(stores.len() == sup.shards, "one segment store per shard");
    let shards = sup.shards;
    let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let queues: Vec<BoundedQueue<Command>> = (0..shards)
        .map(|_| BoundedQueue::new(cfg.queue_capacity))
        .collect();
    let healths: Vec<ShardHealth> = (0..shards).map(|_| ShardHealth::new()).collect();
    let sessions = SessionTable::new();
    let progress = Progress::new();
    let stop = AtomicBool::new(false);
    let seq = AtomicU64::new(0);
    let epochs: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
    let default_faults = FaultPlan::default();

    let ctx = ReactorCtx {
        queue: &queues[0],
        progress: &progress,
        txns,
        policy: cfg.policy,
        max_inflight: cfg.max_inflight,
        block_timeout: cfg.block_timeout,
        retry_slice: cfg.retry_slice,
        reply_timeout: cfg.reply_timeout,
        route: Some(ShardRoute {
            queues: &queues,
            healths: &healths,
            map: ShardMap::new(shards as u32),
            seq: &seq,
        }),
        sessions: Some(&sessions),
    };
    let sup_cfg = SupervisorCfg {
        txns,
        spec,
        certifier: sup.certifier,
        fsync: sup.fsync,
        ckpt: sup.ckpt,
        batch_max: cfg.batch_max,
        record_trace: cfg.record_trace,
        max_restarts: sup.max_restarts,
    };
    let t0 = Instant::now();

    let (runs, net, client_out) = std::thread::scope(|s| {
        let make_scheduler = &make_scheduler;
        let sup_cfg = &sup_cfg;
        let stop_ref = &stop;
        let ctx_ref = &ctx;
        let listener_ref = &listener;
        let mut cores = Vec::with_capacity(shards);
        for shard in 0..shards {
            let queue = &queues[shard];
            let health = &healths[shard];
            let store = &stores[shard];
            let sessions = &sessions;
            let progress = &progress;
            let seq = &seq;
            let epochs = &epochs[..];
            let plan = if faults.is_empty() {
                &default_faults
            } else {
                &faults[shard]
            };
            cores.push(s.spawn(move || {
                supervise_shard(
                    || make_scheduler(shard as u32),
                    queue,
                    progress,
                    plan,
                    store,
                    health,
                    sessions,
                    stop_ref,
                    shard as u32,
                    seq,
                    epochs,
                    sup_cfg,
                )
            }));
        }
        let mut senders = Vec::with_capacity(cfg.reactors);
        let mut reactors = Vec::with_capacity(cfg.reactors);
        for _ in 0..cfg.reactors {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            reactors.push(s.spawn(move || run_reactor(ctx_ref, rx, stop_ref, cfg.poll_quantum)));
        }
        let acceptor =
            s.spawn(move || accept_loop(listener_ref, senders, stop_ref, cfg.poll_quantum));

        let client_out = client(addr);

        stop.store(true, Ordering::Release);
        acceptor.join().expect("acceptor thread panicked");
        let mut net = NetMetrics::default();
        for r in reactors {
            net.merge(&r.join().expect("reactor thread panicked"));
        }
        // A supervisor mid-recovery reopens its queue after we close it,
        // so keep fencing until every shard loop has actually exited.
        loop {
            for q in &queues {
                q.close();
            }
            if cores.iter().all(|c| c.is_finished()) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let runs: Vec<SupervisedRun> = cores
            .into_iter()
            .map(|c| c.join().expect("supervisor thread panicked"))
            .collect();
        (runs, net, client_out)
    });
    let elapsed = t0.elapsed();

    // The WAL is the source of truth: merge every shard's retained
    // segment stream offline, rolling back crash orphans and
    // re-certifying the merged history.
    let segment_streams: Vec<Vec<(u64, Vec<u8>)>> = stores.iter().map(|h| h.segments()).collect();
    let recovery = recover_sharded_segments_with_certifier(
        txns,
        spec,
        |shard| make_scheduler(shard),
        &segment_streams,
        sup.certifier,
    )
    .map_err(|e| io::Error::other(format!("final WAL merge failed: {e}")))?;

    let mut metrics: Option<ServerMetrics> = None;
    for (shard, run) in runs.iter().enumerate() {
        let out = &run.output;
        let m = ServerMetrics {
            workers: net.connections as usize,
            commits: out.commits,
            aborts: out.aborts,
            timeout_aborts: out.timeout_aborts,
            requests: out.grants + out.blocked + out.aborts,
            grants: out.grants,
            blocked: out.blocked,
            commands: out.commands,
            batches: out.batches,
            max_batch: out.max_batch,
            queue: queues[shard].stats(),
            decision: DecisionLatency::from_samples(&out.decision_ns),
            admission: out.admission.clone(),
            queue_wait: out.queue_wait.clone(),
            wal_sync: histogram_of(&out.wal_sync_ns),
            elapsed,
            wal: out.wal,
            wal_error: out.wal_error.clone(),
            supervisor_restarts: run.restarts,
            supervisor_panics: run.panics,
            failed_shards: run.gave_up as u64,
            ..ServerMetrics::default()
        };
        match metrics.as_mut() {
            Some(agg) => agg.merge(&m),
            None => metrics = Some(m),
        }
    }
    let mut metrics = metrics.expect("at least one shard");
    metrics.workers = net.connections as usize;
    metrics.sheds = net.sheds;
    // Whole-service truth from the offline merge, not the final
    // incarnations (whose in-memory view a crash may have eaten).
    metrics.commits = recovery.committed.len() as u64;
    metrics.committed_ops = recovery.history.len() as u64;
    metrics.elapsed = elapsed;

    let admit = metrics.admission.clone();
    let report = NetReport {
        committed: recovery.committed.clone(),
        log: recovery.history.clone(),
        trace: Vec::new(),
        crashed: runs.iter().any(|r| r.gave_up),
        metrics: metrics.clone(),
        net: net.clone(),
        admit,
    };

    Ok((
        SupervisedNetReport {
            recovery,
            runs,
            metrics,
            net,
            report,
        },
        client_out,
    ))
}
