//! Server orchestration: listener + acceptor + reactors + the
//! single-writer admission core, wired under one `thread::scope`.

use crate::conn::ReactorCtx;
use crate::metrics::{histogram_of, NetMetrics, NetReport};
use crate::reactor::{accept_loop, run_reactor};
use relser_core::txn::TxnSet;
use relser_protocols::Scheduler;
use relser_server::core::{run_core_durable, Command, FaultPlan, Progress};
use relser_server::queue::BoundedQueue;
use relser_server::{OverloadPolicy, ServerMetrics};
use relser_simdb::metrics::DecisionLatency;
use relser_wal::CommitLog;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Tunables for one [`serve_net`] run.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Reactor threads multiplexing the connections.
    pub reactors: usize,
    /// Command queue capacity (the admission backpressure threshold).
    pub queue_capacity: usize,
    /// Max commands the core drains per queue lock acquisition.
    pub batch_max: usize,
    /// What happens to operation requests when the queue is full:
    /// `Wait` defers them (pausing the connection's reads — TCP
    /// backpressure), `Shed` answers [`crate::wire::Response::Shed`].
    pub policy: OverloadPolicy,
    /// Per-connection cap on in-flight commands (pipelining depth the
    /// server is willing to buffer before pausing reads).
    pub max_inflight: usize,
    /// Abort a transaction blocked on an unchanged waits-for set this
    /// long (deadlock resolution, mirroring the in-process sessions).
    pub block_timeout: Duration,
    /// Re-submit a blocked operation at least this often.
    pub retry_slice: Duration,
    /// Close a connection whose request the core never answers within
    /// this (the degrade-don't-die path).
    pub reply_timeout: Duration,
    /// Reactor/acceptor idle sleep.
    pub poll_quantum: Duration,
    /// Record a replayable core trace.
    pub record_trace: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            reactors: 2,
            queue_capacity: 1024,
            batch_max: 64,
            policy: OverloadPolicy::Wait,
            max_inflight: 32,
            block_timeout: Duration::from_millis(100),
            retry_slice: Duration::from_millis(1),
            reply_timeout: Duration::from_secs(5),
            poll_quantum: Duration::from_micros(100),
            record_trace: false,
        }
    }
}

/// Serves the transaction set over real TCP on a loopback address.
///
/// Binds `127.0.0.1:0`, spawns the admission core, `cfg.reactors`
/// reactor threads and an acceptor, then calls `client` with the bound
/// address on the current thread — the closure drives load (connect,
/// pipeline requests, commit transactions) and its return ends the run:
/// the acceptor stops, the reactors drain and close every connection
/// (aborting whatever the client left live), the queue closes, and the
/// core exits. Returns the combined [`NetReport`] plus the closure's
/// own result.
///
/// The scheduler may borrow `txns` (e.g. `RsgSgt::new(&txns, &spec)`),
/// which is why the server runs under `thread::scope` behind a closure
/// instead of owning `'static` threads.
pub fn serve_net<R>(
    txns: &TxnSet,
    scheduler: Box<dyn Scheduler + Send + '_>,
    cfg: &NetConfig,
    faults: &FaultPlan,
    wal: Option<&mut dyn CommitLog>,
    client: impl FnOnce(SocketAddr) -> R,
) -> io::Result<(NetReport, R)> {
    assert!(cfg.reactors >= 1, "need at least one reactor");
    let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let queue: BoundedQueue<Command> = BoundedQueue::new(cfg.queue_capacity);
    let progress = Progress::new();
    let stop = AtomicBool::new(false);
    let ctx = ReactorCtx {
        queue: &queue,
        progress: &progress,
        txns,
        policy: cfg.policy,
        max_inflight: cfg.max_inflight,
        block_timeout: cfg.block_timeout,
        retry_slice: cfg.retry_slice,
        reply_timeout: cfg.reply_timeout,
    };
    let t0 = Instant::now();

    let (core_out, net, client_out) = std::thread::scope(|s| {
        let queue_ref = &queue;
        let progress_ref = &progress;
        let stop_ref = &stop;
        let ctx_ref = &ctx;
        let listener_ref = &listener;
        let core = s.spawn(move || {
            run_core_durable(
                scheduler,
                queue_ref,
                progress_ref,
                cfg.batch_max,
                cfg.record_trace,
                faults,
                wal,
            )
        });
        let mut senders = Vec::with_capacity(cfg.reactors);
        let mut reactors = Vec::with_capacity(cfg.reactors);
        for _ in 0..cfg.reactors {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            reactors.push(s.spawn(move || run_reactor(ctx_ref, rx, stop_ref, cfg.poll_quantum)));
        }
        let acceptor =
            s.spawn(move || accept_loop(listener_ref, senders, stop_ref, cfg.poll_quantum));

        let client_out = client(addr);

        stop.store(true, Ordering::Release);
        acceptor.join().expect("acceptor thread panicked");
        let mut net = NetMetrics::default();
        for r in reactors {
            net.merge(&r.join().expect("reactor thread panicked"));
        }
        queue.close();
        let core_out = core.join().expect("admission core panicked");
        (core_out, net, client_out)
    });
    let elapsed = t0.elapsed();

    let committed_ops = core_out
        .log
        .iter()
        .filter(|o| core_out.committed.contains(&o.txn))
        .count() as u64;
    let metrics = ServerMetrics {
        workers: net.connections as usize,
        commits: core_out.commits,
        aborts: core_out.aborts,
        timeout_aborts: core_out.timeout_aborts,
        sheds: net.sheds,
        requests: core_out.grants + core_out.blocked + core_out.aborts,
        grants: core_out.grants,
        blocked: core_out.blocked,
        commands: core_out.commands,
        batches: core_out.batches,
        max_batch: core_out.max_batch,
        queue: queue.stats(),
        decision: DecisionLatency::from_samples(&core_out.decision_ns),
        admission: core_out.admission,
        queue_wait: core_out.queue_wait,
        wal_sync: histogram_of(&core_out.wal_sync_ns),
        elapsed,
        committed_ops,
        backoff_ns: 0,
        max_txn_attempts: 0,
        wal: core_out.wal,
        wal_error: core_out.wal_error.clone(),
    };
    let admit = histogram_of(&core_out.decision_ns);

    Ok((
        NetReport {
            committed: core_out.committed,
            log: core_out.log,
            trace: core_out.trace,
            crashed: core_out.crashed,
            metrics,
            net,
            admit,
        },
        client_out,
    ))
}
