//! Per-connection state machine: decode buffer, pipelined in-flight
//! request table, write buffer, and the degrade/close discipline.
//!
//! A connection fails alone. Every terminal condition — corrupt frame,
//! malformed request, lost reply, socket error — marks *this* connection
//! closing: its live transactions are aborted through the normal command
//! queue (so the scheduler, WAL, and offline oracle all see ordinary
//! aborts) and the socket is shut down, while every other connection
//! keeps committing. The server never dies because one client is broken.
//!
//! Backpressure is two-layered, mapping the admission queue's
//! [`OverloadPolicy`] onto the socket:
//!
//! * **Wait**: a full command queue defers the command into a per-
//!   connection FIFO and *pauses reads* — the kernel receive buffer and
//!   then the client's TCP window fill, which is exactly the waiting the
//!   in-process session does on [`BoundedQueue::push_wait`], stretched
//!   over the wire.
//! * **Shed**: operation requests get an explicit [`Response::Shed`] and
//!   nothing is enqueued; the client backs off and retries.
//!   Begin/commit/abort are never shed (dropping one would corrupt the
//!   protocol) — they defer as under Wait.

use crate::metrics::NetMetrics;
use crate::wire::{ErrorCode, ReqId, Request, Response};
use relser_core::ids::{OpId, TxnId};
use relser_core::shard::ShardMap;
use relser_core::txn::TxnSet;
use relser_protocols::{AbortReason, Decision};
use relser_server::core::{Command, Progress, Reply};
use relser_server::queue::{BoundedQueue, PushError};
use relser_server::supervisor::{SessionTable, ShardHealth};
use relser_server::OverloadPolicy;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The sharded, supervised back-end: one queue and one health slot per
/// shard core, plus the object→shard map the reactor routes with and the
/// global commit-stamp counter. Only single-shard transactions are
/// admitted over the wire — the router's two-phase cross-shard admit
/// stays an in-process protocol.
pub(crate) struct ShardRoute<'a> {
    /// One command queue per shard core.
    pub queues: &'a [BoundedQueue<Command>],
    /// One liveness slot per shard core (supervised restarts flip it).
    pub healths: &'a [ShardHealth],
    /// The object→shard partition.
    pub map: ShardMap,
    /// The global commit-stamp counter; one draw per commit merges the
    /// per-shard commit orders into a single timeline.
    pub seq: &'a AtomicU64,
}

/// Everything a connection needs from the server, shared by all
/// connections of one run.
pub(crate) struct ReactorCtx<'a> {
    /// The command queue into the single-writer admission core (shard 0's
    /// queue when `route` is set — use [`ReactorCtx::queue_of`]).
    pub queue: &'a BoundedQueue<Command>,
    /// The core's progress epoch (blocked-operation retry wakeups).
    pub progress: &'a Progress,
    /// The transaction set requests are validated against.
    pub txns: &'a TxnSet,
    /// What to do with operation requests when the queue is full.
    pub policy: OverloadPolicy,
    /// Cap on in-flight (submitted, unanswered) commands per connection;
    /// reads pause at the cap, so a pipelining client is throttled by
    /// TCP backpressure rather than unbounded server memory.
    pub max_inflight: usize,
    /// Abort a transaction blocked on an unchanged waits-for set this long.
    pub block_timeout: Duration,
    /// Re-submit a blocked operation at least this often even without a
    /// progress epoch advance.
    pub retry_slice: Duration,
    /// Close the connection if the core never answers within this.
    pub reply_timeout: Duration,
    /// Sharded supervised service only; `None` = one unsharded core.
    pub route: Option<ShardRoute<'a>>,
    /// The durable client-session retry table (supervised service only).
    pub sessions: Option<&'a SessionTable>,
}

impl<'a> ReactorCtx<'a> {
    /// The queue commands for `shard` go to.
    fn queue_of(&self, shard: u32) -> &'a BoundedQueue<Command> {
        match &self.route {
            Some(r) => &r.queues[shard as usize],
            None => self.queue,
        }
    }

    /// The shard's health slot, when supervised.
    fn health_of(&self, shard: u32) -> Option<&'a ShardHealth> {
        self.route.as_ref().map(|r| &r.healths[shard as usize])
    }
}

/// A decoded request waiting for room in the command queue. `shard` is
/// the owning shard core (always 0 for an unsharded service).
enum Action {
    Begin {
        req_id: ReqId,
        txn: TxnId,
        shard: u32,
        t0: Instant,
    },
    Op {
        req_id: ReqId,
        op: OpId,
        shard: u32,
        t0: Instant,
    },
    Commit {
        req_id: ReqId,
        txn: TxnId,
        shard: u32,
        t0: Instant,
    },
    Abort {
        req_id: ReqId,
        txn: TxnId,
        shard: u32,
        t0: Instant,
    },
    /// Degrade-path abort of a live transaction (EOF, lost reply, bad
    /// frame): no response, but the abort must still reach the core.
    /// The owning shard is resolved at submit time.
    Cleanup { txn: TxnId },
}

/// What a submitted command is waiting for.
enum PendingKind {
    Op(OpId),
    Commit(TxnId),
}

/// One in-flight command: its reply cell plus the blocked-retry state
/// mirroring the in-process session discipline.
struct Pending {
    req_id: ReqId,
    kind: PendingKind,
    /// The shard core the command went to (resubmits go back there).
    shard: u32,
    reply: Reply,
    /// Wire-to-wire start: when the request's bytes were read.
    t0: Instant,
    /// When the current command instance was enqueued (reply watchdog).
    submitted: Instant,
    /// Progress epoch observed just before the submit (blocked retry).
    seen: u64,
    /// Blocked and waiting for the epoch to pass `seen` before resubmit.
    resubmit: bool,
    /// Waits-for timeout state (ops only).
    ever_blocked: bool,
    waited_on: Vec<TxnId>,
    blocked_since: Instant,
}

/// A response encoded into the write buffer, waiting to hit the socket;
/// `end` is the absolute output-stream offset its last byte occupies.
struct RespMark {
    end: u64,
    /// When the decision was taken (reply-stage start).
    ready: Instant,
    /// Wire-to-wire start, when this response completes a request.
    t0: Option<Instant>,
}

/// Soft cap on buffered unparsed input; reads pause beyond it.
const RBUF_MAX: usize = 1 << 20;

pub(crate) struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Consumed prefix of `wbuf`.
    wpos: usize,
    /// Total bytes ever encoded / ever written to the socket.
    enc_total: u64,
    sent_total: u64,
    resp_marks: VecDeque<RespMark>,
    pending: Vec<Pending>,
    deferred: VecDeque<Action>,
    /// Transactions begun on this connection and not yet finished.
    live: Vec<TxnId>,
    /// The session id a [`Request::Hello`] bound to this connection;
    /// relaxes the live-transaction validation (a resumed session may
    /// legitimately commit a transaction it began on a dead connection)
    /// and stamps every commit into the retry table.
    session: Option<u64>,
    /// Timestamp of the latest socket read (wire-to-wire start for the
    /// requests it delivered).
    last_read: Instant,
    /// The peer closed (or the socket failed); stop reading.
    eof: bool,
    /// Terminal: drain cleanup aborts, flush, then close.
    closing: bool,
    /// The command queue is closed (server shutting down / core dead).
    queue_closed: bool,
    /// Fully shut down; the reactor drops the connection.
    pub(crate) closed: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            enc_total: 0,
            sent_total: 0,
            resp_marks: VecDeque::new(),
            pending: Vec::new(),
            deferred: VecDeque::new(),
            live: Vec::new(),
            session: None,
            last_read: Instant::now(),
            eof: false,
            closing: false,
            queue_closed: false,
            closed: false,
        })
    }

    /// One reactor tick for this connection. Returns `true` if any
    /// progress was made (the reactor skips its idle sleep).
    pub(crate) fn tick(&mut self, ctx: &ReactorCtx<'_>, m: &mut NetMetrics) -> bool {
        if self.closed {
            return false;
        }
        let mut busy = false;
        // Reads pause under backpressure: at the in-flight cap, behind
        // deferred commands, or with a big unparsed backlog. The kernel
        // buffer then the client's TCP window absorb the rest.
        let paused = self.pending.len() >= ctx.max_inflight
            || !self.deferred.is_empty()
            || self.rbuf.len() >= RBUF_MAX;
        if !self.eof && !self.closing && !paused {
            busy |= self.read_some();
        }
        busy |= self.parse_requests(ctx, m);
        busy |= self.drain_deferred(ctx, m);
        busy |= self.poll_pending(ctx, m);
        busy |= self.flush(m);
        if self.eof && !self.closing {
            // Clean disconnect: abort whatever the client left live.
            self.degrade(m);
        }
        if self.closing && self.deferred.is_empty() && (self.wpos == self.wbuf.len() || self.eof) {
            let _ = self.stream.shutdown(Shutdown::Both);
            self.pending.clear();
            self.closed = true;
            busy = true;
        }
        busy
    }

    /// The server is shutting down gracefully: broadcast a typed
    /// [`Response::Closing`] notice, abort anything still live through
    /// the queue (the drain), and close once the farewell is flushed.
    pub(crate) fn begin_shutdown(&mut self, m: &mut NetMetrics) {
        if !self.closing {
            m.closing_replies += 1;
            self.respond(Response::Closing { req_id: 0 }, None, m);
            self.degrade(m);
        }
    }

    /// Starts the degrade path: every live transaction gets a cleanup
    /// abort through the queue, then the connection closes. Only this
    /// connection is affected.
    fn degrade(&mut self, _m: &mut NetMetrics) {
        self.closing = true;
        if !self.queue_closed {
            for txn in std::mem::take(&mut self.live) {
                self.deferred.push_back(Action::Cleanup { txn });
            }
        } else {
            self.deferred.clear();
            self.live.clear();
        }
    }

    /// Terminal protocol error: best-effort error response, then degrade.
    fn fail(&mut self, req_id: ReqId, code: ErrorCode, m: &mut NetMetrics) {
        self.respond(Response::Error { req_id, code }, None, m);
        match code {
            ErrorCode::BadRequest => m.bad_frame_closes += 1,
            ErrorCode::ReplyLost => m.reply_lost_closes += 1,
            ErrorCode::Shutdown => {}
        }
        self.degrade(m);
    }

    fn read_some(&mut self) -> bool {
        let mut tmp = [0u8; 8192];
        let mut got = false;
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    if !got {
                        self.last_read = Instant::now();
                        got = true;
                    }
                    self.rbuf.extend_from_slice(&tmp[..n]);
                    if n < tmp.len() || self.rbuf.len() >= RBUF_MAX {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.eof = true;
                    break;
                }
            }
        }
        got
    }

    /// Decodes and dispatches every complete frame in the read buffer.
    fn parse_requests(&mut self, ctx: &ReactorCtx<'_>, m: &mut NetMetrics) -> bool {
        let mut at = 0;
        let mut busy = false;
        while !self.closing && at < self.rbuf.len() {
            let t_decode = Instant::now();
            match Request::decode(&self.rbuf[at..]) {
                Ok((req, n)) => {
                    at += n;
                    m.decode
                        .record(t_decode.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                    m.requests += 1;
                    busy = true;
                    self.handle_request(req, ctx, m);
                }
                Err(e) if e.is_incomplete() => break,
                Err(_) => {
                    // Corrupt stream: there is no trustworthy next-frame
                    // boundary, so resynchronization is impossible — the
                    // connection (and only the connection) dies.
                    self.fail(0, ErrorCode::BadRequest, m);
                    busy = true;
                }
            }
        }
        if at > 0 {
            self.rbuf.drain(..at);
        }
        busy
    }

    /// Validates a request against the transaction set and turns it into
    /// an action. Anything inconsistent is a protocol error: this server
    /// only admits operations that exist in its workload, so a buggy
    /// client cannot corrupt the scheduler.
    fn handle_request(&mut self, req: Request, ctx: &ReactorCtx<'_>, m: &mut NetMetrics) {
        let t0 = self.last_read;
        let req_id = req.req_id();
        // A sessionful connection may be a resumed one: its transactions
        // began on a connection that died, so "live on this connection"
        // is too strict — existence in the universe is the contract, and
        // the core's commit-supremacy rules answer retries of retired or
        // committed incarnations with their typed verdicts.
        let resumed = self.session.is_some();
        let action = match req {
            Request::Hello { session, .. } => {
                self.session = Some(session);
                m.hellos += 1;
                self.respond(Response::Welcome { req_id }, Some(t0), m);
                return;
            }
            Request::Begin { txn, .. } => {
                if ctx.txns.get(txn).is_none() || self.live.contains(&txn) {
                    return self.fail(req_id, ErrorCode::BadRequest, m);
                }
                let Some(shard) = self.shard_of(ctx, txn) else {
                    return self.fail(req_id, ErrorCode::BadRequest, m);
                };
                Action::Begin {
                    req_id,
                    txn,
                    shard,
                    t0,
                }
            }
            Request::Read { op, object, .. } | Request::Write { op, object, .. } => {
                let known = match ctx.txns.op(op) {
                    Ok(real) => real.mode == req.mode().unwrap() && real.object == object,
                    Err(_) => false,
                };
                if !known || !(resumed || self.live.contains(&op.txn)) {
                    return self.fail(req_id, ErrorCode::BadRequest, m);
                }
                let Some(shard) = self.shard_of(ctx, op.txn) else {
                    return self.fail(req_id, ErrorCode::BadRequest, m);
                };
                Action::Op {
                    req_id,
                    op,
                    shard,
                    t0,
                }
            }
            Request::Commit { txn, .. } => {
                // Exactly-once fast path: a retried commit whose original
                // ack is in the session table gets the original verdict
                // back without touching the admission core at all.
                if let (Some(table), Some(sess)) = (ctx.sessions, self.session) {
                    if let Some((acked, acked_txn)) = table.lookup(sess) {
                        if req_id == acked && txn == acked_txn {
                            m.dup_commit_fast += 1;
                            self.live.retain(|&t| t != txn);
                            self.respond(Response::Committed { req_id }, Some(t0), m);
                            return;
                        }
                    }
                }
                let known = self.live.contains(&txn) || (resumed && ctx.txns.get(txn).is_some());
                if !known {
                    return self.fail(req_id, ErrorCode::BadRequest, m);
                }
                let Some(shard) = self.shard_of(ctx, txn) else {
                    return self.fail(req_id, ErrorCode::BadRequest, m);
                };
                Action::Commit {
                    req_id,
                    txn,
                    shard,
                    t0,
                }
            }
            Request::Abort { txn, .. } => {
                let known = self.live.contains(&txn) || (resumed && ctx.txns.get(txn).is_some());
                if !known {
                    return self.fail(req_id, ErrorCode::BadRequest, m);
                }
                let Some(shard) = self.shard_of(ctx, txn) else {
                    return self.fail(req_id, ErrorCode::BadRequest, m);
                };
                Action::Abort {
                    req_id,
                    txn,
                    shard,
                    t0,
                }
            }
        };
        // Per-connection FIFO: nothing may overtake an already-deferred
        // command, or program order could invert inside the queue.
        if self.deferred.is_empty() {
            if let Some(back) = self.try_action(action, ctx, m) {
                self.deferred.push_back(back);
                m.deferrals += 1;
            }
        } else {
            self.deferred.push_back(action);
        }
    }

    /// Retries deferred commands in FIFO order; stops at the first that
    /// still finds the queue full.
    fn drain_deferred(&mut self, ctx: &ReactorCtx<'_>, m: &mut NetMetrics) -> bool {
        let mut busy = false;
        while let Some(action) = self.deferred.pop_front() {
            match self.try_action(action, ctx, m) {
                None => busy = true,
                Some(back) => {
                    self.deferred.push_front(back);
                    break;
                }
            }
        }
        busy
    }

    /// Attempts to enqueue one action's command. Returns the action back
    /// when the queue is full and the action must wait (backpressure).
    fn try_action(
        &mut self,
        action: Action,
        ctx: &ReactorCtx<'_>,
        m: &mut NetMetrics,
    ) -> Option<Action> {
        if self.queue_closed {
            return None; // shutting down; drop silently
        }
        match action {
            Action::Begin {
                req_id,
                txn,
                shard,
                t0,
            } => {
                match ctx.queue_of(shard).try_push(Command::Begin(txn)) {
                    Ok(()) => {
                        // FIFO queue order applies the begin before any
                        // later command of this connection, so the ack
                        // can ride on the enqueue itself.
                        self.live.push(txn);
                        self.respond(Response::Granted { req_id }, Some(t0), m);
                        None
                    }
                    Err(PushError::Full(_)) => Some(Action::Begin {
                        req_id,
                        txn,
                        shard,
                        t0,
                    }),
                    Err(PushError::Closed(_)) => {
                        self.on_closed(shard, req_id, ctx, m);
                        None
                    }
                }
            }
            Action::Op {
                req_id,
                op,
                shard,
                t0,
            } => {
                let reply = Reply::new();
                let seen = ctx.progress.current();
                let now = Instant::now();
                let cmd = Command::Request {
                    op,
                    enqueued: now,
                    reply: reply.clone(),
                };
                match ctx.queue_of(shard).try_push(cmd) {
                    Ok(()) => {
                        self.pending.push(Pending {
                            req_id,
                            kind: PendingKind::Op(op),
                            shard,
                            reply,
                            t0,
                            submitted: now,
                            seen,
                            resubmit: false,
                            ever_blocked: false,
                            waited_on: Vec::new(),
                            blocked_since: now,
                        });
                        None
                    }
                    Err(PushError::Full(_)) => match ctx.policy {
                        OverloadPolicy::Shed => {
                            m.sheds += 1;
                            self.respond(Response::Shed { req_id }, Some(t0), m);
                            None
                        }
                        OverloadPolicy::Wait => Some(Action::Op {
                            req_id,
                            op,
                            shard,
                            t0,
                        }),
                    },
                    Err(PushError::Closed(_)) => {
                        self.on_closed(shard, req_id, ctx, m);
                        None
                    }
                }
            }
            Action::Commit {
                req_id,
                txn,
                shard,
                t0,
            } => {
                let reply = Reply::new();
                let now = Instant::now();
                let cmd = Command::CommitAck {
                    txn,
                    enqueued: now,
                    reply: reply.clone(),
                    stamp: self.commit_stamp(ctx),
                    session: self.session_entry(req_id),
                };
                match ctx.queue_of(shard).try_push(cmd) {
                    Ok(()) => {
                        self.pending.push(Pending {
                            req_id,
                            kind: PendingKind::Commit(txn),
                            shard,
                            reply,
                            t0,
                            submitted: now,
                            seen: 0,
                            resubmit: false,
                            ever_blocked: false,
                            waited_on: Vec::new(),
                            blocked_since: now,
                        });
                        None
                    }
                    Err(PushError::Full(_)) => Some(Action::Commit {
                        req_id,
                        txn,
                        shard,
                        t0,
                    }),
                    Err(PushError::Closed(_)) => {
                        self.on_closed(shard, req_id, ctx, m);
                        None
                    }
                }
            }
            Action::Abort {
                req_id,
                txn,
                shard,
                t0,
            } => match ctx.queue_of(shard).try_push(Command::Abort(txn)) {
                Ok(()) => {
                    self.live.retain(|&t| t != txn);
                    self.respond(Response::Granted { req_id }, Some(t0), m);
                    None
                }
                Err(PushError::Full(_)) => Some(Action::Abort {
                    req_id,
                    txn,
                    shard,
                    t0,
                }),
                Err(PushError::Closed(_)) => {
                    self.on_closed(shard, req_id, ctx, m);
                    None
                }
            },
            Action::Cleanup { txn } => {
                let shard = self.shard_of(ctx, txn).unwrap_or(0);
                match ctx.queue_of(shard).try_push(Command::Abort(txn)) {
                    Ok(()) => None,
                    Err(PushError::Full(_)) => Some(Action::Cleanup { txn }),
                    Err(PushError::Closed(_)) => {
                        match ctx.health_of(shard) {
                            Some(h) if !h.is_failed() => {
                                // Shard mid-recovery: the orphan will be
                                // rolled back by recovery itself; nothing
                                // to clean up.
                            }
                            _ => {
                                self.queue_closed = true;
                                self.deferred.clear();
                            }
                        }
                        None
                    }
                }
            }
        }
    }

    fn shutdown_error(&mut self, req_id: ReqId, m: &mut NetMetrics) {
        self.queue_closed = true;
        m.closing_replies += 1;
        self.respond(Response::Closing { req_id }, None, m);
        self.degrade(m);
    }

    /// A shard queue refused a push because it is closed. Under
    /// supervision that is a *transient* condition (the supervisor is
    /// recovering the shard core in place): answer the typed retryable
    /// [`Response::Recovering`] and drop the action — the client backs
    /// off and re-sends, and a retried commit keeps its `req_id` so the
    /// retry table still deduplicates it. Without supervision (or once
    /// the restart budget is exhausted) a closed queue is terminal.
    fn on_closed(&mut self, shard: u32, req_id: ReqId, ctx: &ReactorCtx<'_>, m: &mut NetMetrics) {
        match ctx.health_of(shard) {
            Some(h) if !h.is_failed() => {
                m.recovering_replies += 1;
                self.respond(Response::Recovering { req_id }, None, m);
            }
            _ => self.shutdown_error(req_id, m),
        }
    }

    /// The global commit stamp a sharded commit carries (`None` for an
    /// unsharded core, which orders commits by its own queue order).
    fn commit_stamp(&self, ctx: &ReactorCtx<'_>) -> Option<u64> {
        ctx.route
            .as_ref()
            .map(|r| r.seq.fetch_add(1, Ordering::SeqCst))
    }

    /// The `(session, req_id)` pair a commit is recorded under in the
    /// retry table (`None` on a sessionless connection).
    fn session_entry(&self, req_id: ReqId) -> Option<(u64, u64)> {
        self.session.map(|s| (s, req_id))
    }

    /// The shard core owning `txn`, or `None` for a cross-shard
    /// transaction — those are not admissible over the wire.
    fn shard_of(&self, ctx: &ReactorCtx<'_>, txn: TxnId) -> Option<u32> {
        let Some(r) = &ctx.route else { return Some(0) };
        match r.map.shards_of_txn(ctx.txns, txn).as_slice() {
            &[s] => Some(s),
            // Zero ops shares a fate with cross-shard: nothing to route by.
            _ => None,
        }
    }

    /// Polls every in-flight reply cell; applies decisions, runs the
    /// blocked-retry protocol and both watchdogs.
    fn poll_pending(&mut self, ctx: &ReactorCtx<'_>, m: &mut NetMetrics) -> bool {
        let mut busy = false;
        let mut i = 0;
        while i < self.pending.len() {
            if self.closing {
                break;
            }
            let now = Instant::now();
            let p = &mut self.pending[i];
            if p.resubmit {
                // Blocked: waiting for the core to make progress. Same
                // discipline as the in-process session — waits-for
                // timeout on an unchanged set, otherwise retry once the
                // epoch moves (or a retry slice elapses).
                if p.ever_blocked && now.duration_since(p.blocked_since) >= ctx.block_timeout {
                    let (req_id, txn) = (p.req_id, txn_of(&p.kind));
                    self.pending.remove(i);
                    self.live.retain(|&t| t != txn);
                    self.deferred.push_back(Action::Cleanup { txn });
                    m.timeout_aborts += 1;
                    self.respond(
                        Response::Aborted {
                            req_id,
                            reason: AbortReason::Deadlock,
                        },
                        None,
                        m,
                    );
                    busy = true;
                    continue;
                }
                let moved = ctx.progress.current() > p.seen
                    || now.duration_since(p.submitted) >= ctx.retry_slice;
                if moved && !self.queue_closed {
                    let op = match p.kind {
                        PendingKind::Op(op) => op,
                        PendingKind::Commit(_) => unreachable!("commits never block"),
                    };
                    let reply = Reply::new();
                    let seen = ctx.progress.current();
                    let cmd = Command::Request {
                        op,
                        enqueued: now,
                        reply: reply.clone(),
                    };
                    if ctx.queue_of(p.shard).try_push(cmd).is_ok() {
                        p.reply = reply;
                        p.submitted = now;
                        p.seen = seen;
                        p.resubmit = false;
                        m.retries += 1;
                        busy = true;
                    }
                    // Full or closed: stay in resubmit state, retry next
                    // tick (closed resolves via the watchdog below).
                }
                i += 1;
                continue;
            }
            match p.reply.try_take() {
                None => {
                    if now.duration_since(p.submitted) >= ctx.reply_timeout {
                        // The core went silent on this request: degrade
                        // this connection, leave the rest of the server
                        // alone.
                        let req_id = p.req_id;
                        self.fail(req_id, ErrorCode::ReplyLost, m);
                        busy = true;
                        break;
                    }
                    i += 1;
                }
                Some(Decision::Granted) => {
                    let (req_id, t0) = (p.req_id, p.t0);
                    let resp = match p.kind {
                        PendingKind::Op(_) => Response::Granted { req_id },
                        PendingKind::Commit(txn) => {
                            self.live.retain(|&t| t != txn);
                            Response::Committed { req_id }
                        }
                    };
                    self.pending.remove(i);
                    self.respond(resp, Some(t0), m);
                    busy = true;
                }
                Some(Decision::Aborted(reason)) => {
                    let (req_id, t0, txn) = (p.req_id, p.t0, txn_of(&p.kind));
                    self.pending.remove(i);
                    self.live.retain(|&t| t != txn);
                    self.respond(Response::Aborted { req_id, reason }, Some(t0), m);
                    busy = true;
                }
                Some(Decision::Blocked { mut on }) => {
                    on.sort_unstable();
                    on.dedup();
                    if !p.ever_blocked || on != p.waited_on {
                        p.ever_blocked = true;
                        p.waited_on = on;
                        p.blocked_since = now;
                    }
                    p.resubmit = true;
                    busy = true;
                    i += 1;
                }
            }
        }
        busy
    }

    /// Encodes a response into the write buffer and marks its completion
    /// offset for the reply/wire stage histograms.
    fn respond(&mut self, resp: Response, t0: Option<Instant>, m: &mut NetMetrics) {
        let ready = Instant::now();
        let before = self.wbuf.len();
        resp.encode_into(&mut self.wbuf);
        self.enc_total += (self.wbuf.len() - before) as u64;
        self.resp_marks.push_back(RespMark {
            end: self.enc_total,
            ready,
            t0,
        });
        m.responses += 1;
    }

    /// Writes as much of the buffered output as the socket accepts and
    /// records the reply/wire stage latency of every response whose last
    /// byte left.
    fn flush(&mut self, m: &mut NetMetrics) -> bool {
        let mut busy = false;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.wpos += n;
                    self.sent_total += n as u64;
                    busy = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.eof = true;
                    break;
                }
            }
        }
        if self.wpos == self.wbuf.len() && self.wpos > 0 {
            self.wbuf.clear();
            self.wpos = 0;
        }
        let now = Instant::now();
        while let Some(mark) = self.resp_marks.front() {
            if mark.end > self.sent_total && !self.eof {
                break;
            }
            m.reply
                .record(now.duration_since(mark.ready).as_nanos() as u64);
            if let Some(t0) = mark.t0 {
                m.wire.record(now.duration_since(t0).as_nanos() as u64);
            }
            self.resp_marks.pop_front();
        }
        busy
    }
}

fn txn_of(kind: &PendingKind) -> TxnId {
    match kind {
        PendingKind::Op(op) => op.txn,
        PendingKind::Commit(txn) => *txn,
    }
}
