//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the rand 0.9 API it actually uses:
//!
//! * [`SeedableRng::seed_from_u64`] / [`rngs::StdRng`];
//! * [`Rng::random_range`] over integer and `f64` ranges (half-open and
//!   inclusive);
//! * [`Rng::random_bool`].
//!
//! The generator is xoshiro256\*\* seeded through SplitMix64 — the same
//! construction rand's own `SmallRng` uses — so the statistical quality is
//! adequate for the simulation workloads, and every consumer stays
//! deterministic per seed. This is **not** a cryptographic RNG and makes no
//! attempt at bit-compatibility with upstream `rand` streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (the subset of `rand::SeedableRng` used
/// here: construction from a `u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by an [`Rng`]
/// (stand-in for `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample using `next` as the 64-bit entropy source.
    fn sample_one(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let r = (((next() as u128) << 64 | next() as u128) % span) as $t;
                self.start.wrapping_add(r)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full domain of the type: any draw is uniform.
                    return next() as $t;
                }
                let r = (((next() as u128) << 64 | next() as u128) % span) as $t;
                lo.wrapping_add(r)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Converts 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_one(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = unit_f64(next());
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one(self, next: &mut dyn FnMut() -> u64) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(next()) * (hi - lo)
    }
}

/// Random-value convenience methods (the used subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        let mut next = || self.next_u64();
        range.sample_one(&mut next)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\* seeded via
    /// SplitMix64. Deterministic per seed; not cryptographically secure.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut sm = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [sm(), sm(), sm(), sm()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(0..17);
            assert!(x < 17);
            let y: u64 = rng.random_range(3..=9);
            assert!((3..=9).contains(&y));
            let f: f64 = rng.random_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let g: f64 = rng.random_range(0.0..2.5);
            assert!((0.0..2.5).contains(&g));
        }
    }

    #[test]
    fn ranges_cover_their_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "{hits}");
        assert!(!StdRng::seed_from_u64(1).random_bool(0.0));
        assert!(StdRng::seed_from_u64(1).random_bool(1.0));
    }

    #[test]
    fn works_through_unsized_generic_receivers() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.random_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 10);
    }
}
