//! Human-readable verdicts: *why* a schedule is or is not in each class.
//!
//! The graph tests give yes/no plus raw witnesses (a cycle of operations,
//! a `Violation`); this module turns them into the explanations a
//! developer debugging a rejected schedule actually wants — rendered in
//! the paper's own notation so they can be checked against the text.

use crate::classes::{
    classify, relative_atomicity_violation, relative_seriality_violation, ClassReport,
};
use crate::rsg::Rsg;
use crate::schedule::Schedule;
use crate::sg::SerializationGraph;
use crate::spec::AtomicitySpec;
use crate::txn::TxnSet;
use std::fmt::Write as _;

/// Renders an RSG cycle as `op -(kinds)-> op -(kinds)-> … -(kinds)-> op`,
/// closing back on the first operation.
pub fn render_cycle(txns: &TxnSet, rsg: &Rsg, cycle: &[crate::ids::OpId]) -> String {
    let mut out = String::new();
    for (i, &op) in cycle.iter().enumerate() {
        let next = cycle[(i + 1) % cycle.len()];
        let kinds = rsg
            .arc_between(op, next)
            .map(|k| k.to_string())
            .unwrap_or_else(|| "?".into());
        let _ = write!(out, "{} -({kinds})-> ", txns.display_op(op));
    }
    out.push_str(&txns.display_op(cycle[0]));
    out
}

/// A full classification report with reasons, in the paper's notation.
///
/// ```
/// use relser_core::prelude::*;
/// let fig = relser_core::paper::Figure1::new();
/// let report = relser_core::explain::explain(&fig.txns, &fig.s_2(), &fig.spec);
/// assert!(report.contains("relatively serializable (Thm. 1): yes"));
/// assert!(report.contains("w1[x] is interleaved with AtomicUnit(2, T2, T1)"));
/// ```
pub fn explain(txns: &TxnSet, schedule: &Schedule, spec: &AtomicitySpec) -> String {
    let report: ClassReport = classify(txns, schedule, spec);
    let mut out = String::new();
    let _ = writeln!(out, "schedule: {}", schedule.display(txns));

    let _ = writeln!(out, "serial: {}", report.serial);

    match relative_atomicity_violation(txns, schedule, spec) {
        None => {
            let _ = writeln!(out, "relatively atomic (Def. 1): yes");
        }
        Some(v) => {
            let _ = writeln!(
                out,
                "relatively atomic (Def. 1): no — {} of {} is interleaved with \
                 AtomicUnit({}, {}, {})",
                txns.display_op(v.op),
                v.op.txn,
                v.unit + 1,
                v.owner,
                v.op.txn,
            );
        }
    }

    match relative_seriality_violation(txns, schedule, spec) {
        None => {
            let _ = writeln!(out, "relatively serial (Def. 2): yes");
        }
        Some(v) => {
            let dep = v
                .dependency
                .map(|d| txns.display_op(d))
                .unwrap_or_else(|| "?".into());
            let _ = writeln!(
                out,
                "relatively serial (Def. 2): no — {} is interleaved with \
                 AtomicUnit({}, {}, {}) and carries a dependency with {}",
                txns.display_op(v.op),
                v.unit + 1,
                v.owner,
                v.op.txn,
                dep,
            );
        }
    }

    if report.conflict_serializable {
        let _ = writeln!(out, "conflict serializable: yes");
    } else {
        let sg = SerializationGraph::build(txns, schedule);
        let cycle = sg
            .find_cycle()
            .map(|c| {
                c.iter()
                    .chain(c.first()) // close the loop for readability
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" -> ")
            })
            .unwrap_or_default();
        let _ = writeln!(out, "conflict serializable: no — SG cycle {cycle}");
    }

    let rsg = Rsg::build(txns, schedule, spec);
    match rsg.find_cycle() {
        None => {
            let witness = rsg.witness(txns).expect("acyclic RSG has a witness");
            let _ = writeln!(
                out,
                "relatively serializable (Thm. 1): yes — equivalent relatively serial schedule:\n  {}",
                witness.display(txns)
            );
        }
        Some(cycle) => {
            let _ = writeln!(
                out,
                "relatively serializable (Thm. 1): no — RSG cycle:\n  {}",
                render_cycle(txns, &rsg, &cycle)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{Figure1, Figure2};

    #[test]
    fn explains_an_accepted_schedule() {
        let fig = Figure1::new();
        let text = explain(&fig.txns, &fig.s_2(), &fig.spec);
        assert!(text.contains("relatively serializable (Thm. 1): yes"));
        assert!(text.contains("equivalent relatively serial schedule"));
        assert!(text.contains("relatively serial (Def. 2): no"));
        // The paper's exact violation: w1[x] intrudes into unit 2 of
        // Atomicity(T2, T1), dependency r2[x].
        assert!(
            text.contains("w1[x] is interleaved with AtomicUnit(2, T2, T1)"),
            "{text}"
        );
        assert!(text.contains("dependency with r2[x]"), "{text}");
    }

    #[test]
    fn explains_a_rejected_schedule_with_cycle() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let s = txns.parse_schedule("r1[x] r2[x] w1[x] w2[x]").unwrap();
        let text = explain(&txns, &s, &spec);
        assert!(text.contains("conflict serializable: no — SG cycle"));
        assert!(text.contains("relatively serializable (Thm. 1): no — RSG cycle"));
        assert!(text.contains("-("), "cycle arcs carry kinds: {text}");
    }

    #[test]
    fn figure2_explanation_names_the_transitive_dependency() {
        let fig = Figure2::new();
        let text = explain(&fig.txns, &fig.s_1(), &fig.spec);
        assert!(
            text.contains("w2[y] is interleaved with AtomicUnit(1, T1, T2)"),
            "{text}"
        );
    }

    #[test]
    fn render_cycle_closes_the_loop() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let s = txns.parse_schedule("r1[x] r2[x] w1[x] w2[x]").unwrap();
        let rsg = Rsg::build(&txns, &s, &spec);
        let cycle = rsg.find_cycle().unwrap();
        let rendered = render_cycle(&txns, &rsg, &cycle);
        let first = txns.display_op(cycle[0]);
        assert!(rendered.starts_with(&first));
        assert!(rendered.ends_with(&first));
    }
}
