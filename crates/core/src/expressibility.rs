//! Mechanized versions of the paper's §4 expressiveness comparisons.
//!
//! The paper argues informally that its model strictly generalizes the
//! prior specification styles: Garcia-Molina's compatibility sets are "a
//! special case of transactions with relative atomicity specifications";
//! Lynch's multilevel atomicity "imposes several constraints … it is easy
//! to construct examples that can be specified using relative atomicity
//! but cannot be specified using multilevel atomicity". This module makes
//! those statements *decidable* for concrete specifications:
//!
//! * [`as_compatibility_sets`] — is the spec exactly "free within groups,
//!   absolute across groups" for some partition of the transactions?
//! * [`as_uniform`] — does every transaction show the *same* units to all
//!   observers (the transaction-chopping shape \[SSV92\])?
//! * [`as_multilevel`] — does *some* hierarchy (enumerated exhaustively —
//!   exponential, intended for ≤ ~6 transactions) together with nested
//!   per-depth breakpoint families reproduce the spec?
//!
//! The expressibility census experiment uses these to measure how much of
//! the relative-atomicity space each prior model covers.

use crate::error::{Error, Result};
use crate::ids::TxnId;
use crate::spec::AtomicitySpec;
use crate::spec_builders::Hierarchy;
use crate::txn::TxnSet;

/// If `spec` is exactly a Garcia-Molina compatibility-set specification,
/// returns the group index per transaction; `None` otherwise.
pub fn as_compatibility_sets(txns: &TxnSet, spec: &AtomicitySpec) -> Option<Vec<usize>> {
    let n = txns.len();
    // Candidate relation: i ~ j iff both directions are fully breakpointed
    // (or the transaction has a single operation, which is trivially both).
    let full = |i: TxnId, j: TxnId| -> bool {
        spec.breakpoints(i, j).len() as u32 == txns.txn(i).len() as u32 - 1
    };
    let related = |i: TxnId, j: TxnId| full(i, j) && full(j, i);

    // Union-find the relation, then verify it is exactly block-structured.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for i in txns.txn_ids() {
        for j in txns.txn_ids() {
            if i != j && related(i, j) {
                let (a, b) = (find(&mut parent, i.index()), find(&mut parent, j.index()));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut group = vec![0usize; n];
    let mut next = 0;
    let mut label: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for (t, slot) in group.iter_mut().enumerate() {
        let root = find(&mut parent, t);
        let g = *label.entry(root).or_insert_with(|| {
            next += 1;
            next - 1
        });
        *slot = g;
    }
    // Verify: same group ⇒ free both ways; different ⇒ absolute both ways.
    for i in txns.txn_ids() {
        for j in txns.txn_ids() {
            if i == j {
                continue;
            }
            if group[i.index()] == group[j.index()] {
                if !full(i, j) {
                    return None;
                }
            } else if !spec.breakpoints(i, j).is_empty() {
                return None;
            }
        }
    }
    Some(group)
}

/// If every transaction shows identical units to every observer, returns
/// the per-transaction breakpoints (the transaction-chopping shape);
/// `None` otherwise.
pub fn as_uniform(txns: &TxnSet, spec: &AtomicitySpec) -> Option<Vec<Vec<u32>>> {
    let mut out = Vec::with_capacity(txns.len());
    for i in txns.txn_ids() {
        let mut reference: Option<&[u32]> = None;
        for j in txns.txn_ids() {
            if i == j {
                continue;
            }
            match reference {
                None => reference = Some(spec.breakpoints(i, j)),
                Some(r) => {
                    if r != spec.breakpoints(i, j) {
                        return None;
                    }
                }
            }
        }
        out.push(reference.unwrap_or(&[]).to_vec());
    }
    Some(out)
}

/// Does `hierarchy` (with the best possible per-depth breakpoint
/// families) reproduce `spec`? The per-depth families are forced: all
/// observers of `T_i` at the same LCA depth must see identical
/// breakpoints, and deeper (more closely related) observers must see a
/// superset of shallower ones.
pub fn matches_hierarchy(txns: &TxnSet, spec: &AtomicitySpec, hierarchy: &Hierarchy) -> bool {
    let Ok(ml) =
        crate::spec_builders::MultilevelSpec::new(txns, hierarchy, vec![Vec::new(); txns.len()])
    else {
        return false;
    };
    for i in txns.txn_ids() {
        // Group observers by LCA depth.
        let mut by_depth: std::collections::BTreeMap<usize, Vec<TxnId>> =
            std::collections::BTreeMap::new();
        for j in txns.txn_ids() {
            if i != j {
                by_depth.entry(ml.lca_depth(i, j)).or_default().push(j);
            }
        }
        // Same depth ⇒ identical; increasing depth ⇒ nested supersets.
        let mut prev: Option<&[u32]> = None;
        for (_, observers) in by_depth.iter() {
            let first = spec.breakpoints(i, observers[0]);
            for &j in &observers[1..] {
                if spec.breakpoints(i, j) != first {
                    return false;
                }
            }
            if let Some(p) = prev {
                if !p.iter().all(|b| first.contains(b)) {
                    return false;
                }
            }
            prev = Some(first);
        }
    }
    true
}

/// Enumerates every hierarchy shape over `n` labeled leaves (internal
/// nodes with ≥ 2 children — Schröder trees). Exponential; guarded.
pub fn all_hierarchies(n: usize) -> Result<Vec<Hierarchy>> {
    if n == 0 {
        return Err(Error::Empty("hierarchy leaf set".into()));
    }
    if n > 6 {
        return Err(Error::BadSpec(format!(
            "hierarchy enumeration is limited to 6 transactions, got {n}"
        )));
    }
    let leaves: Vec<usize> = (0..n).collect();
    Ok(trees_over(&leaves))
}

fn trees_over(leaves: &[usize]) -> Vec<Hierarchy> {
    if leaves.len() == 1 {
        return vec![Hierarchy::Txn(leaves[0])];
    }
    let mut out = Vec::new();
    for partition in partitions_min2(leaves) {
        // Each block becomes a child: a leaf if singleton, else any tree
        // over the block.
        let child_choices: Vec<Vec<Hierarchy>> = partition
            .iter()
            .map(|block| {
                if block.len() == 1 {
                    vec![Hierarchy::Txn(block[0])]
                } else {
                    trees_over(block)
                }
            })
            .collect();
        // Cartesian product of the choices.
        let mut combos: Vec<Vec<Hierarchy>> = vec![Vec::new()];
        for choices in &child_choices {
            let mut next = Vec::with_capacity(combos.len() * choices.len());
            for combo in &combos {
                for c in choices {
                    let mut extended = combo.clone();
                    extended.push(c.clone());
                    next.push(extended);
                }
            }
            combos = next;
        }
        for children in combos {
            out.push(Hierarchy::Group(children));
        }
    }
    out
}

/// All partitions of `items` into at least two blocks (canonical order:
/// each block is sorted, blocks ordered by first element).
fn partitions_min2(items: &[usize]) -> Vec<Vec<Vec<usize>>> {
    let mut all = Vec::new();
    let mut current: Vec<Vec<usize>> = Vec::new();
    fn rec(
        items: &[usize],
        idx: usize,
        current: &mut Vec<Vec<usize>>,
        all: &mut Vec<Vec<Vec<usize>>>,
    ) {
        if idx == items.len() {
            if current.len() >= 2 {
                all.push(current.clone());
            }
            return;
        }
        let item = items[idx];
        for b in 0..current.len() {
            current[b].push(item);
            rec(items, idx + 1, current, all);
            current[b].pop();
        }
        current.push(vec![item]);
        rec(items, idx + 1, current, all);
        current.pop();
    }
    rec(items, 0, &mut current, &mut all);
    all
}

/// Searches every hierarchy over the transactions for one matching the
/// spec. `None` means the spec is **not** expressible as multilevel
/// atomicity — the paper's §4 inexpressibility claim, decided.
pub fn as_multilevel(txns: &TxnSet, spec: &AtomicitySpec) -> Result<Option<Hierarchy>> {
    for h in all_hierarchies(txns.len())? {
        if matches_hierarchy(txns, spec, &h) {
            return Ok(Some(h));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::Figure1;
    use crate::spec_builders::{compatibility_sets, multilevel};

    fn four_txns() -> TxnSet {
        TxnSet::parse(&[
            "r1[a] w1[a] r1[b]",
            "r2[a] w2[a]",
            "r3[c] w3[c]",
            "r4[c] w4[c]",
        ])
        .unwrap()
    }

    #[test]
    fn compatibility_sets_round_trip() {
        let txns = four_txns();
        let groups = vec![0usize, 0, 1, 1];
        let spec = compatibility_sets(&txns, &groups).unwrap();
        let recovered = as_compatibility_sets(&txns, &spec).expect("expressible");
        // Group labels may be renamed; the partition must be identical.
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    groups[i] == groups[j],
                    recovered[i] == recovered[j],
                    "{i} {j}"
                );
            }
        }
    }

    #[test]
    fn figure1_spec_is_not_compatibility_sets() {
        let fig = Figure1::new();
        assert!(as_compatibility_sets(&fig.txns, &fig.spec).is_none());
    }

    #[test]
    fn absolute_spec_is_singleton_groups_and_uniform() {
        let txns = four_txns();
        let spec = AtomicitySpec::absolute(&txns);
        let groups = as_compatibility_sets(&txns, &spec).expect("absolute = singletons");
        let distinct: std::collections::HashSet<usize> = groups.into_iter().collect();
        assert_eq!(distinct.len(), 4);
        assert_eq!(as_uniform(&txns, &spec).unwrap(), vec![vec![]; 4]);
    }

    #[test]
    fn uniform_detects_chopping_shape() {
        let txns = four_txns();
        let mut spec = AtomicitySpec::absolute(&txns);
        for j in 1..4u32 {
            spec.set_breakpoints(TxnId(0), TxnId(j), &[1]).unwrap();
        }
        assert_eq!(
            as_uniform(&txns, &spec).unwrap(),
            vec![vec![1], vec![], vec![], vec![]]
        );
        // Make one observer different: no longer uniform.
        spec.set_breakpoints(TxnId(0), TxnId(1), &[2]).unwrap();
        assert!(as_uniform(&txns, &spec).is_none());
    }

    #[test]
    fn figure1_spec_is_not_uniform() {
        let fig = Figure1::new();
        assert!(as_uniform(&fig.txns, &fig.spec).is_none());
    }

    #[test]
    fn hierarchy_enumeration_counts() {
        // Schröder/phylogenetic tree counts over labeled leaves:
        // n=1: 1, n=2: 1, n=3: 4, n=4: 26.
        assert_eq!(all_hierarchies(1).unwrap().len(), 1);
        assert_eq!(all_hierarchies(2).unwrap().len(), 1);
        assert_eq!(all_hierarchies(3).unwrap().len(), 4);
        assert_eq!(all_hierarchies(4).unwrap().len(), 26);
        assert!(all_hierarchies(7).is_err());
    }

    #[test]
    fn multilevel_specs_are_recognized() {
        let txns = four_txns();
        let h = Hierarchy::Group(vec![
            Hierarchy::Group(vec![Hierarchy::Txn(0), Hierarchy::Txn(1)]),
            Hierarchy::Group(vec![Hierarchy::Txn(2), Hierarchy::Txn(3)]),
        ]);
        let levels = vec![
            vec![vec![1], vec![1, 2]],
            vec![vec![], vec![1]],
            vec![],
            vec![vec![1]],
        ];
        let spec = multilevel(&txns, &h, levels).unwrap();
        assert!(matches_hierarchy(&txns, &spec, &h));
        assert!(as_multilevel(&txns, &spec).unwrap().is_some());
    }

    /// The §4 inexpressibility claim, decided mechanically: the asymmetric
    /// spec is not expressible under ANY hierarchy.
    #[test]
    fn asymmetric_spec_is_not_multilevel() {
        let txns = TxnSet::parse(&["r1[a] w1[a] r1[b]", "r2[a]", "r3[b]"]).unwrap();
        let mut spec = AtomicitySpec::absolute(&txns);
        spec.set_breakpoints(TxnId(0), TxnId(1), &[1]).unwrap();
        spec.set_breakpoints(TxnId(0), TxnId(2), &[2]).unwrap();
        assert!(as_multilevel(&txns, &spec).unwrap().is_none());
    }

    /// Figure 1's own specification: compatibility sets cannot express it,
    /// and neither can any Lynch hierarchy — mechanically confirming that
    /// the paper's running example already needs the full model.
    #[test]
    fn figure1_needs_full_relative_atomicity() {
        let fig = Figure1::new();
        assert!(as_compatibility_sets(&fig.txns, &fig.spec).is_none());
        assert!(as_uniform(&fig.txns, &fig.spec).is_none());
        assert!(as_multilevel(&fig.txns, &fig.spec).unwrap().is_none());
    }

    #[test]
    fn compatibility_sets_are_multilevel() {
        // Gar83 ⊂ Lyn83: a compat spec matches the flat two-level
        // hierarchy of its groups.
        let txns = four_txns();
        let spec = compatibility_sets(&txns, &[0, 0, 1, 1]).unwrap();
        assert!(as_multilevel(&txns, &spec).unwrap().is_some());
    }
}
