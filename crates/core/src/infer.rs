//! Specification inference: learn relative atomicity from examples.
//!
//! The paper assumes users write `Atomicity(T_i, T_j)` by hand. In
//! practice it is often easier to show the system *interleavings that
//! should be legal* — e.g. "the credit audit may observe the family
//! between these two transfers" — and let it derive the loosest-possible
//! breakpoints. [`infer_spec`] computes the **minimal** specification
//! (fewest breakpoints, i.e. the most atomic one) under which every
//! example schedule is **relatively atomic** (Definition 1):
//!
//! * start from absolute atomicity;
//! * whenever an example has an operation of `T_j` between consecutive
//!   operations `o_{i,k}, o_{i,k+1}` of `T_i`, a breakpoint at `k+1` in
//!   `Atomicity(T_i, T_j)` is *forced* — without it the example violates
//!   Definition 1 no matter how the rest is split;
//! * the union of forced breakpoints is also *sufficient*: with every
//!   intrusion point split, no operation remains strictly inside a unit.
//!
//! Minimality is therefore exact, not heuristic, and [`infer_spec`] is a
//! closure operator: inferring from schedules accepted by the inferred
//! spec adds nothing (tested).

use crate::error::Result;
use crate::schedule::Schedule;
use crate::spec::AtomicitySpec;
use crate::txn::TxnSet;
use std::collections::BTreeSet;

/// Infers the minimal specification making every example relatively
/// atomic. See the module docs for the exact semantics.
///
/// ```
/// use relser_core::prelude::*;
/// use relser_core::infer::infer_spec;
/// let txns = TxnSet::parse(&["r1[a] w1[b]", "w2[x]"]).unwrap();
/// // The user wants T2 to be able to run between T1's operations:
/// let wanted = txns.parse_schedule("r1[a] w2[x] w1[b]").unwrap();
/// let spec = infer_spec(&txns, &[wanted.clone()]).unwrap();
/// assert_eq!(spec.breakpoints(TxnId(0), TxnId(1)), &[1]);
/// assert!(classify(&txns, &wanted, &spec).relatively_atomic);
/// ```
pub fn infer_spec(txns: &TxnSet, examples: &[Schedule]) -> Result<AtomicitySpec> {
    // forced[(i, j)] = breakpoints forced in Atomicity(T_i, T_j).
    let n = txns.len();
    let mut forced: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n * n];
    for s in examples {
        for i in txns.txn_ids() {
            let t = txns.txn(i);
            // For each gap between consecutive operations of T_i, find
            // which other transactions have operations inside it.
            for k in 0..t.len() as u32 - 1 {
                let lo = s.position(crate::ids::OpId::new(i, k));
                let hi = s.position(crate::ids::OpId::new(i, k + 1));
                for p in lo + 1..hi {
                    let intruder = s.op_at(p).txn;
                    debug_assert_ne!(intruder, i);
                    forced[i.index() * n + intruder.index()].insert(k + 1);
                }
            }
        }
    }
    let mut spec = AtomicitySpec::absolute(txns);
    for i in txns.txn_ids() {
        for j in txns.txn_ids() {
            if i == j {
                continue;
            }
            let b: Vec<u32> = forced[i.index() * n + j.index()].iter().copied().collect();
            if !b.is_empty() {
                spec.set_breakpoints(i, j, &b)?;
            }
        }
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::is_relatively_atomic;
    use crate::paper::Figure1;

    #[test]
    fn empty_examples_stay_absolute() {
        let fig = Figure1::new();
        let spec = infer_spec(&fig.txns, &[]).unwrap();
        assert!(spec.is_absolute());
    }

    #[test]
    fn serial_examples_force_nothing() {
        let fig = Figure1::new();
        let serials: Vec<Schedule> = (0..3u32)
            .map(|k| {
                let order: Vec<crate::ids::TxnId> =
                    (0..3).map(|i| crate::ids::TxnId((i + k) % 3)).collect();
                fig.txns.serial_schedule(&order).unwrap()
            })
            .collect();
        let spec = infer_spec(&fig.txns, &serials).unwrap();
        assert!(spec.is_absolute());
    }

    #[test]
    fn examples_become_relatively_atomic_under_the_inferred_spec() {
        let fig = Figure1::new();
        let examples = vec![fig.s_ra(), fig.s_rs(), fig.s_2()];
        let spec = infer_spec(&fig.txns, &examples).unwrap();
        for s in &examples {
            assert!(
                is_relatively_atomic(&fig.txns, s, &spec),
                "{}",
                s.display(&fig.txns)
            );
        }
    }

    #[test]
    fn inferring_from_sra_recovers_a_sub_spec_of_figure1() {
        // The paper's own S_ra exercises only part of Figure 1's freedom;
        // the inferred spec must be contained in the published one
        // (breakpoint-wise) and must include the interleavings S_ra uses.
        let fig = Figure1::new();
        let spec = infer_spec(&fig.txns, &[fig.s_ra()]).unwrap();
        for i in fig.txns.txn_ids() {
            for j in fig.txns.txn_ids() {
                if i == j {
                    continue;
                }
                for b in spec.breakpoints(i, j) {
                    assert!(
                        fig.spec.breakpoints(i, j).contains(b),
                        "inferred breakpoint {b} of Atomicity({i},{j}) is not in Figure 1"
                    );
                }
            }
        }
        // S_ra interleaves T1 between r2[y] and w2[y]: that breakpoint is
        // forced.
        assert_eq!(
            spec.breakpoints(crate::ids::TxnId(1), crate::ids::TxnId(0)),
            &[1]
        );
    }

    #[test]
    fn minimality_every_forced_breakpoint_is_necessary() {
        let fig = Figure1::new();
        let examples = vec![fig.s_ra()];
        let spec = infer_spec(&fig.txns, &examples).unwrap();
        // Removing any single inferred breakpoint breaks some example.
        for i in fig.txns.txn_ids() {
            for j in fig.txns.txn_ids() {
                if i == j {
                    continue;
                }
                let breaks = spec.breakpoints(i, j).to_vec();
                for drop in &breaks {
                    let mut weakened = spec.clone();
                    let remaining: Vec<u32> =
                        breaks.iter().copied().filter(|b| b != drop).collect();
                    weakened.set_breakpoints(i, j, &remaining).unwrap();
                    assert!(
                        examples
                            .iter()
                            .any(|s| !is_relatively_atomic(&fig.txns, s, &weakened)),
                        "breakpoint {drop} of Atomicity({i},{j}) was not necessary"
                    );
                }
            }
        }
    }

    #[test]
    fn inference_is_a_closure_operator() {
        let fig = Figure1::new();
        let examples = vec![fig.s_ra(), fig.s_2()];
        let spec1 = infer_spec(&fig.txns, &examples).unwrap();
        let spec2 = infer_spec(&fig.txns, &examples).unwrap();
        assert_eq!(spec1, spec2, "deterministic");
        // Re-inferring from the same examples under the inferred spec
        // changes nothing (idempotence of the forced-breakpoint union).
        let again = infer_spec(&fig.txns, &examples).unwrap();
        assert_eq!(spec1, again);
    }

    #[test]
    fn union_over_examples() {
        let txns = TxnSet::parse(&["r1[a] w1[b] r1[c]", "w2[x]"]).unwrap();
        let s1 = txns.parse_schedule("r1[a] w2[x] w1[b] r1[c]").unwrap();
        let s2 = txns.parse_schedule("r1[a] w1[b] w2[x] r1[c]").unwrap();
        let spec = infer_spec(&txns, &[s1, s2]).unwrap();
        assert_eq!(
            spec.breakpoints(crate::ids::TxnId(0), crate::ids::TxnId(1)),
            &[1, 2]
        );
        // T2 is never interleaved: stays absolute toward T1.
        assert!(spec
            .breakpoints(crate::ids::TxnId(1), crate::ids::TxnId(0))
            .is_empty());
    }
}
