//! The Relative Serialization Graph (§3, Definition 3) and the paper's
//! Theorem 1.
//!
//! `RSG(S)` is a directed graph over the *operations* of the schedule with
//! four arc families:
//!
//! 1. **I-arcs** — program order: `o_{i,j} -> o_{i,j+1}`;
//! 2. **D-arcs** — `o_{i,j} -> o_{k,l}` (`i ≠ k`) whenever `o_{k,l}`
//!    *depends on* `o_{i,j}` in `S` (this subsumes conflicts);
//! 3. **F-arcs** — for each D-arc `o_{i,j} -> o_{k,l}`:
//!    `PushForward(o_{i,j}, T_k) -> o_{k,l}` — the dependent operation must
//!    fall after the *entire* atomic unit its source belongs to, as seen by
//!    the dependent's transaction;
//! 4. **B-arcs** — for each D-arc `o_{k,l} -> o_{i,j}`:
//!    `o_{k,l} -> PullBackward(o_{i,j}, T_k)` — the source must precede the
//!    *entire* atomic unit of its dependent, as seen by the source's
//!    transaction.
//!
//! **Theorem 1.** `S` is relatively serializable **iff** `RSG(S)` is
//! acyclic. The sufficiency direction is constructive — a topological sort
//! of an acyclic RSG *is* an equivalent relatively serial schedule — and
//! [`Rsg::witness`] implements exactly that construction.

use crate::depends::DependsOn;
use crate::ids::OpId;
use crate::schedule::Schedule;
use crate::spec::AtomicitySpec;
use crate::txn::TxnSet;
use relser_digraph::{cycle, dot, topo, DiGraph, NodeIdx};
use std::collections::HashMap;
use std::fmt;

/// A set of arc kinds on one RSG edge (an edge may simultaneously be, say,
/// a D-, F-, and B-arc, as in the paper's Figure 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ArcKinds(u8);

impl ArcKinds {
    /// Internal (program-order) arc.
    pub const I: ArcKinds = ArcKinds(1);
    /// Dependency arc.
    pub const D: ArcKinds = ArcKinds(2);
    /// Push-forward arc.
    pub const F: ArcKinds = ArcKinds(4);
    /// Pull-backward arc.
    pub const B: ArcKinds = ArcKinds(8);

    /// No kinds.
    pub fn empty() -> Self {
        ArcKinds(0)
    }

    /// Does this set contain every kind in `other`?
    pub fn contains(self, other: ArcKinds) -> bool {
        self.0 & other.0 == other.0
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for ArcKinds {
    type Output = ArcKinds;
    fn bitor(self, rhs: ArcKinds) -> ArcKinds {
        ArcKinds(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for ArcKinds {
    fn bitor_assign(&mut self, rhs: ArcKinds) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for ArcKinds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.contains(ArcKinds::I) {
            parts.push("I");
        }
        if self.contains(ArcKinds::D) {
            parts.push("D");
        }
        if self.contains(ArcKinds::F) {
            parts.push("F");
        }
        if self.contains(ArcKinds::B) {
            parts.push("B");
        }
        write!(f, "{}", parts.join(","))
    }
}

impl fmt::Debug for ArcKinds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// RSG arc-kind sets are the edge labels of the incremental engine's DAG:
/// re-adding an existing arc unions the kinds, exactly as the offline
/// builder merges parallel arcs into one [`ArcKinds`]-labelled edge.
impl relser_digraph::EdgeLabel for ArcKinds {
    fn merge(&mut self, other: &Self) {
        *self |= *other;
    }
}

/// Which arc families to generate — the default is the paper's full
/// Definition 3. Disabling families yields the deliberately *incomplete*
/// variants used by the ablation experiments: the paper notes (§3) that
/// Lynch and Farrag–Özsu "use the notion of pushing forward … however,
/// neither of them employed the notion of pulling backward", and the
/// ablation measures exactly what the missing B-arcs cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArcConfig {
    /// Generate push-forward arcs.
    pub f_arcs: bool,
    /// Generate pull-backward arcs.
    pub b_arcs: bool,
}

impl Default for ArcConfig {
    fn default() -> Self {
        ArcConfig {
            f_arcs: true,
            b_arcs: true,
        }
    }
}

/// The relative serialization graph of one schedule under one
/// specification.
///
/// Nodes are the schedule's operations, indexed by schedule position;
/// parallel arcs of different kinds between the same operations are merged
/// into a single edge carrying an [`ArcKinds`] set.
#[derive(Clone, Debug)]
pub struct Rsg {
    g: DiGraph<OpId, ArcKinds>,
    /// Node index == schedule position; kept for witness extraction.
    schedule: Schedule,
}

impl Rsg {
    /// Builds `RSG(schedule)` per Definition 3, computing the depends-on
    /// relation internally.
    ///
    /// ```
    /// use relser_core::prelude::*;
    /// let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
    /// let spec = AtomicitySpec::absolute(&txns);
    /// // The classic lost update is rejected...
    /// let bad = txns.parse_schedule("r1[x] r2[x] w1[x] w2[x]").unwrap();
    /// assert!(!Rsg::build(&txns, &bad, &spec).is_acyclic());
    /// // ...but admitted once the user declares the transactions
    /// // arbitrarily interleavable.
    /// let free = AtomicitySpec::free(&txns);
    /// assert!(Rsg::build(&txns, &bad, &free).is_acyclic());
    /// ```
    pub fn build(txns: &TxnSet, schedule: &Schedule, spec: &AtomicitySpec) -> Self {
        let deps = DependsOn::compute(txns, schedule);
        Self::build_with_deps(txns, schedule, spec, &deps)
    }

    /// Builds the RSG from a precomputed dependency relation. Passing
    /// [`DependsOn::direct`] here yields the deliberately *incorrect*
    /// conflict-only variant used by experiment E3 (Figure 2) — the paper's
    /// argument for why the transitive closure is necessary.
    pub fn build_with_deps(
        txns: &TxnSet,
        schedule: &Schedule,
        spec: &AtomicitySpec,
        deps: &DependsOn,
    ) -> Self {
        Self::build_with_config(txns, schedule, spec, deps, ArcConfig::default())
    }

    /// Builds the graph with a chosen subset of arc families (see
    /// [`ArcConfig`]). Only the default configuration decides relative
    /// serializability; the others exist for the ablation experiments.
    pub fn build_with_config(
        txns: &TxnSet,
        schedule: &Schedule,
        spec: &AtomicitySpec,
        deps: &DependsOn,
        config: ArcConfig,
    ) -> Self {
        let n = schedule.len();
        let mut arcs: HashMap<(u32, u32), ArcKinds> = HashMap::new();
        let mut add = |from: usize, to: usize, kind: ArcKinds| {
            debug_assert_ne!(from, to, "RSG arcs never self-loop by construction");
            *arcs
                .entry((from as u32, to as u32))
                .or_insert_with(ArcKinds::empty) |= kind;
        };

        // I-arcs: consecutive operations of each transaction.
        for t in txns.txns() {
            for j in 1..t.len() as u32 {
                let a = schedule.position(OpId::new(t.id(), j - 1));
                let b = schedule.position(OpId::new(t.id(), j));
                add(a, b, ArcKinds::I);
            }
        }

        // D-arcs and their induced F- and B-arcs.
        for p in 0..n {
            let src = schedule.op_at(p);
            let dependents: Vec<usize> = deps.affected_by(p).collect();
            for q in dependents {
                let dst = schedule.op_at(q);
                if src.txn == dst.txn {
                    continue; // D-arcs are cross-transaction only
                }
                add(p, q, ArcKinds::D);
                if config.f_arcs {
                    // F-arc: PushForward(src, txn(dst)) -> dst.
                    let pf = spec.push_forward(src, dst.txn);
                    add(schedule.position(pf), q, ArcKinds::F);
                }
                if config.b_arcs {
                    // B-arc: src -> PullBackward(dst, txn(src)).
                    let pb = spec.pull_backward(dst, src.txn);
                    add(p, schedule.position(pb), ArcKinds::B);
                }
            }
        }

        let mut g: DiGraph<OpId, ArcKinds> = DiGraph::with_capacity(n, arcs.len());
        for p in 0..n {
            g.add_node(schedule.op_at(p));
        }
        // Deterministic edge order for reproducible DOT output and tests.
        let mut sorted: Vec<((u32, u32), ArcKinds)> = arcs.into_iter().collect();
        sorted.sort_by_key(|&(k, _)| k);
        for ((a, b), kinds) in sorted {
            g.add_edge(NodeIdx(a), NodeIdx(b), kinds);
        }
        Rsg {
            g,
            // O(1): Schedule shares its order/position tables behind an Arc.
            schedule: schedule.clone(),
        }
    }

    /// Number of operations (nodes).
    pub fn node_count(&self) -> usize {
        self.g.node_count()
    }

    /// Number of merged arcs (edges).
    pub fn arc_count(&self) -> usize {
        self.g.edge_count()
    }

    /// All arcs as `(from, to, kinds)` triples in deterministic order.
    pub fn arcs(&self) -> Vec<(OpId, OpId, ArcKinds)> {
        self.g
            .edge_refs()
            .map(|e| {
                (
                    *self.g.node_weight(e.from),
                    *self.g.node_weight(e.to),
                    *e.weight,
                )
            })
            .collect()
    }

    /// The kinds on the arc `from -> to`, if present.
    pub fn arc_between(&self, from: OpId, to: OpId) -> Option<ArcKinds> {
        let a = NodeIdx(self.schedule.position(from) as u32);
        let b = NodeIdx(self.schedule.position(to) as u32);
        self.g.find_edge(a, b).map(|e| *self.g.edge_weight(e))
    }

    /// Theorem 1's criterion: is the schedule relatively serializable?
    pub fn is_acyclic(&self) -> bool {
        cycle::is_acyclic(&self.g)
    }

    /// A witness cycle (operations in cycle order) when the schedule is
    /// *not* relatively serializable.
    pub fn find_cycle(&self) -> Option<Vec<OpId>> {
        cycle::find_cycle(&self.g).map(|c| c.into_iter().map(|v| *self.g.node_weight(v)).collect())
    }

    /// The constructive half of Theorem 1: if the RSG is acyclic, a
    /// topological sort of it is a **relatively serial** schedule
    /// conflict-equivalent to the original. Ties are broken by original
    /// schedule position, so the witness is canonical.
    ///
    /// Returns `None` iff the RSG is cyclic.
    pub fn witness(&self, txns: &TxnSet) -> Option<Schedule> {
        let sched = &self.schedule;
        let order = topo::topological_sort_by(&self.g, |v| v.index())?;
        let ops: Vec<OpId> = order.into_iter().map(|v| *self.g.node_weight(v)).collect();
        let witness = Schedule::new(txns, ops)
            .expect("topological order of RSG respects program order via I-arcs");
        debug_assert!(
            witness.conflict_equivalent(sched, txns),
            "witness must be conflict-equivalent (D-arcs subsume conflicts)"
        );
        Some(witness)
    }

    /// Graphviz rendering with paper-style labels (nodes `r1[x]`, edges
    /// `D,F`), suitable for comparing against the paper's Figure 3.
    pub fn to_dot(&self, txns: &TxnSet, name: &str) -> String {
        dot::to_dot(
            &self.g,
            name,
            |op| txns.display_op(*op),
            |kinds| kinds.to_string(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TxnId;

    const T1: TxnId = TxnId(0);
    const T2: TxnId = TxnId(1);
    const T3: TxnId = TxnId(2);

    fn fig1() -> (TxnSet, AtomicitySpec) {
        let txns = TxnSet::parse(&[
            "r1[x] w1[x] w1[z] r1[y]",
            "r2[y] w2[y] r2[x]",
            "w3[x] w3[y] w3[z]",
        ])
        .unwrap();
        let mut spec = AtomicitySpec::absolute(&txns);
        spec.set_units_str(&txns, 0, 1, "r1[x] w1[x] | w1[z] r1[y]")
            .unwrap();
        spec.set_units_str(&txns, 0, 2, "r1[x] w1[x] | w1[z] | r1[y]")
            .unwrap();
        spec.set_units_str(&txns, 1, 0, "r2[y] | w2[y] r2[x]")
            .unwrap();
        spec.set_units_str(&txns, 1, 2, "r2[y] w2[y] | r2[x]")
            .unwrap();
        spec.set_units_str(&txns, 2, 0, "w3[x] w3[y] | w3[z]")
            .unwrap();
        spec.set_units_str(&txns, 2, 1, "w3[x] w3[y] | w3[z]")
            .unwrap();
        (txns, spec)
    }

    #[test]
    fn arckinds_display() {
        assert_eq!(
            (ArcKinds::D | ArcKinds::F | ArcKinds::B).to_string(),
            "D,F,B"
        );
        assert_eq!(ArcKinds::I.to_string(), "I");
        assert!((ArcKinds::D | ArcKinds::F).contains(ArcKinds::D));
        assert!(!(ArcKinds::D).contains(ArcKinds::F));
        assert!(ArcKinds::empty().is_empty());
    }

    #[test]
    fn srs_is_relatively_serializable() {
        let (txns, spec) = fig1();
        let srs = txns
            .parse_schedule("r1[x] r2[y] w1[x] w2[y] w3[x] w1[z] w3[y] r2[x] r1[y] w3[z]")
            .unwrap();
        let rsg = Rsg::build(&txns, &srs, &spec);
        assert!(rsg.is_acyclic());
        let w = rsg.witness(&txns).unwrap();
        assert!(w.conflict_equivalent(&srs, &txns));
    }

    #[test]
    fn s2_is_relatively_serializable_and_witness_matches_conflicts() {
        let (txns, spec) = fig1();
        let s2 = txns
            .parse_schedule("r1[x] r2[y] w2[y] w1[x] w3[x] r2[x] w1[z] w3[y] r1[y] w3[z]")
            .unwrap();
        let rsg = Rsg::build(&txns, &s2, &spec);
        assert!(rsg.is_acyclic(), "paper: S2 is relatively serializable");
        let w = rsg.witness(&txns).unwrap();
        assert!(w.conflict_equivalent(&s2, &txns));
    }

    #[test]
    fn absolute_spec_reduces_to_conflict_serializability() {
        // Under absolute atomicity, RSG acyclicity must agree with SG
        // acyclicity (Lemma 1 + §2 closing remarks).
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let bad = txns.parse_schedule("r1[x] r2[x] w1[x] w2[x]").unwrap();
        assert!(!Rsg::build(&txns, &bad, &spec).is_acyclic());
        assert!(!crate::sg::is_conflict_serializable(&txns, &bad));
        let good = txns.parse_schedule("r1[x] w1[x] r2[x] w2[x]").unwrap();
        assert!(Rsg::build(&txns, &good, &spec).is_acyclic());
    }

    #[test]
    fn free_spec_accepts_everything() {
        // With per-operation units and Theorem 1, every schedule is
        // relatively serializable (every topological conflict order can be
        // realized: F/B arcs collapse to D arcs).
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let spec = AtomicitySpec::free(&txns);
        let s = txns.parse_schedule("r1[x] r2[x] w1[x] w2[x]").unwrap();
        let rsg = Rsg::build(&txns, &s, &spec);
        assert!(rsg.is_acyclic());
        let w = rsg.witness(&txns).unwrap();
        assert!(w.conflict_equivalent(&s, &txns));
    }

    #[test]
    fn cycle_witness_is_reported_in_operations() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let bad = txns.parse_schedule("r1[x] r2[x] w1[x] w2[x]").unwrap();
        let rsg = Rsg::build(&txns, &bad, &spec);
        let cycle = rsg.find_cycle().expect("cyclic");
        assert!(cycle.len() >= 2);
        assert!(rsg.witness(&txns).is_none());
    }

    #[test]
    fn dot_output_uses_paper_notation() {
        let (txns, spec) = fig1();
        let s = txns
            .parse_schedule("r1[x] r2[y] w1[x] w2[y] w3[x] w1[z] w3[y] r2[x] r1[y] w3[z]")
            .unwrap();
        let rsg = Rsg::build(&txns, &s, &spec);
        let dot = rsg.to_dot(&txns, "rsg_srs");
        assert!(dot.contains("r1[x]"));
        assert!(dot.contains("label=\"I\"") || dot.contains("label=\"I,"));
    }

    #[test]
    fn i_arcs_follow_program_order() {
        let (txns, spec) = fig1();
        let s = txns
            .parse_schedule("r1[x] r2[y] w1[x] w2[y] w3[x] w1[z] w3[y] r2[x] r1[y] w3[z]")
            .unwrap();
        let rsg = Rsg::build(&txns, &s, &spec);
        for t in [T1, T2, T3] {
            let len = txns.txn(t).len() as u32;
            for j in 0..len - 1 {
                let kinds = rsg
                    .arc_between(OpId::new(t, j), OpId::new(t, j + 1))
                    .unwrap_or_else(|| panic!("missing I-arc in {t} at {j}"));
                assert!(kinds.contains(ArcKinds::I));
            }
        }
    }

    /// §3: prior work (Lynch, Farrag–Özsu) used push-forward but "neither
    /// of them employed the notion of pulling backward". Without B-arcs
    /// the test is unsound: this Figure 1 schedule is *not* relatively
    /// serializable, yet the B-less graph is acyclic. (Found by exhaustive
    /// search; 434 of the universe's 4200 schedules are false-accepted.)
    #[test]
    fn dropping_b_arcs_is_unsound() {
        let (txns, spec) = fig1();
        let s = txns
            .parse_schedule("r2[y] w2[y] w3[x] r1[x] w1[x] w1[z] r2[x] w3[y] r1[y] w3[z]")
            .unwrap();
        let deps = crate::depends::DependsOn::compute(&txns, &s);
        let full = Rsg::build_with_deps(&txns, &s, &spec, &deps);
        assert!(!full.is_acyclic(), "the full RSG rejects this schedule");
        let no_b = Rsg::build_with_config(
            &txns,
            &s,
            &spec,
            &deps,
            ArcConfig {
                f_arcs: true,
                b_arcs: false,
            },
        );
        assert!(no_b.is_acyclic(), "without B-arcs the cycle disappears");
    }

    /// Ablated graphs are always sub-graphs: whatever the full RSG
    /// accepts, the ablations accept too.
    #[test]
    fn ablations_only_accept_more() {
        let (txns, spec) = fig1();
        for sched in [
            "r1[x] r2[y] w1[x] w2[y] w3[x] w1[z] w3[y] r2[x] r1[y] w3[z]",
            "r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]",
        ] {
            let s = txns.parse_schedule(sched).unwrap();
            let deps = crate::depends::DependsOn::compute(&txns, &s);
            if Rsg::build_with_deps(&txns, &s, &spec, &deps).is_acyclic() {
                for config in [
                    ArcConfig {
                        f_arcs: false,
                        b_arcs: true,
                    },
                    ArcConfig {
                        f_arcs: true,
                        b_arcs: false,
                    },
                    ArcConfig {
                        f_arcs: false,
                        b_arcs: false,
                    },
                ] {
                    assert!(Rsg::build_with_config(&txns, &s, &spec, &deps, config).is_acyclic());
                }
            }
        }
    }

    #[test]
    fn arc_count_and_node_count_consistent() {
        let (txns, spec) = fig1();
        let s = txns
            .parse_schedule("r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]")
            .unwrap();
        let rsg = Rsg::build(&txns, &s, &spec);
        assert_eq!(rsg.node_count(), 10);
        assert_eq!(rsg.arcs().len(), rsg.arc_count());
        assert!(rsg.arc_count() >= 7, "at least the I-arcs exist");
    }
}
