//! Schedule-class checkers for every polynomial class in the paper's
//! Figure 5, with violation diagnostics.
//!
//! * serial — the traditional strictest class;
//! * **relatively atomic** (Definition 1) — the user-specified correct
//!   executions of Farrag–Özsu;
//! * **relatively serial** (Definition 2) — the paper's relaxed correct
//!   executions;
//! * conflict serializable — the traditional graph-testable class;
//! * **relatively serializable** (Theorem 1) — conflict-equivalent to a
//!   relatively serial schedule, decided by RSG acyclicity.
//!
//! (The remaining Figure 5 class, *relatively consistent*, is NP-complete
//! to recognize and lives in `relser-classes`.)

use crate::depends::DependsOn;
use crate::ids::{OpId, TxnId};
use crate::rsg::Rsg;
use crate::schedule::Schedule;
use crate::sg::is_conflict_serializable;
use crate::spec::AtomicitySpec;
use crate::txn::TxnSet;

/// A witnessed violation of Definition 1 or Definition 2: operation `op`
/// of `observer`'s transaction sits inside `unit` of `Atomicity(owner,
/// observer)`, and (for Definition 2) `dependency` names a unit operation
/// linked to `op` by the depends-on relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The intruding operation.
    pub op: OpId,
    /// The transaction whose atomic unit is violated.
    pub owner: TxnId,
    /// Index of the violated atomic unit in `Atomicity(owner, op.txn)`.
    pub unit: usize,
    /// For relative-serial violations: a unit operation with a dependency
    /// to/from `op`. `None` for plain relative-atomicity violations.
    pub dependency: Option<OpId>,
}

/// Definition 1 check with witness: returns the first interleaving of an
/// operation into a foreign atomic unit, or `None` if `schedule` is
/// relatively atomic.
pub fn relative_atomicity_violation(
    txns: &TxnSet,
    schedule: &Schedule,
    spec: &AtomicitySpec,
) -> Option<Violation> {
    // For each owner T_l and observer T_i, an operation o of T_i is
    // interleaved with a unit iff pos(first) < pos(o) < pos(last): the unit
    // operations occupy increasing schedule positions (program order).
    for l in txns.txn_ids() {
        for i in txns.txn_ids() {
            if i == l {
                continue;
            }
            for unit in 0..spec.unit_count(l, i) {
                let bounds = spec.unit_bounds(l, i, unit);
                let first = schedule.position(OpId::new(l, *bounds.start()));
                let last = schedule.position(OpId::new(l, *bounds.end()));
                if last <= first + 1 {
                    continue; // nothing fits inside
                }
                for op in txns.txn(i).op_ids() {
                    let p = schedule.position(op);
                    if first < p && p < last {
                        return Some(Violation {
                            op,
                            owner: l,
                            unit,
                            dependency: None,
                        });
                    }
                }
            }
        }
    }
    None
}

/// Definition 1: is `schedule` relatively atomic (the paper's / Farrag–
/// Özsu's user-specified "correct" executions)?
pub fn is_relatively_atomic(txns: &TxnSet, schedule: &Schedule, spec: &AtomicitySpec) -> bool {
    relative_atomicity_violation(txns, schedule, spec).is_none()
}

/// Definition 2 check with witness: an interleaved operation is only a
/// violation if a depends-on relation links it (in either direction) to
/// some operation of the invaded unit.
pub fn relative_seriality_violation(
    txns: &TxnSet,
    schedule: &Schedule,
    spec: &AtomicitySpec,
) -> Option<Violation> {
    let deps = DependsOn::compute(txns, schedule);
    relative_seriality_violation_with_deps(txns, schedule, spec, &deps)
}

/// Definition 2 check against a caller-supplied dependency relation
/// (pass [`DependsOn::direct`] to reproduce Figure 2's flawed variant).
pub fn relative_seriality_violation_with_deps(
    txns: &TxnSet,
    schedule: &Schedule,
    spec: &AtomicitySpec,
    deps: &DependsOn,
) -> Option<Violation> {
    for l in txns.txn_ids() {
        for i in txns.txn_ids() {
            if i == l {
                continue;
            }
            for unit in 0..spec.unit_count(l, i) {
                let bounds = spec.unit_bounds(l, i, unit);
                let first_idx = *bounds.start();
                let last_idx = *bounds.end();
                let first = schedule.position(OpId::new(l, first_idx));
                let last = schedule.position(OpId::new(l, last_idx));
                if last <= first + 1 {
                    continue;
                }
                for op in txns.txn(i).op_ids() {
                    let p = schedule.position(op);
                    if !(first < p && p < last) {
                        continue;
                    }
                    // Interleaved: tolerated only if independent of every
                    // operation of the unit, in both directions.
                    for m in first_idx..=last_idx {
                        let unit_op = OpId::new(l, m);
                        let q = schedule.position(unit_op);
                        if deps.depends_by_pos(p, q) || deps.depends_by_pos(q, p) {
                            return Some(Violation {
                                op,
                                owner: l,
                                unit,
                                dependency: Some(unit_op),
                            });
                        }
                    }
                }
            }
        }
    }
    None
}

/// Definition 2: is `schedule` relatively serial?
pub fn is_relatively_serial(txns: &TxnSet, schedule: &Schedule, spec: &AtomicitySpec) -> bool {
    relative_seriality_violation(txns, schedule, spec).is_none()
}

/// Theorem 1: is `schedule` relatively serializable (RSG acyclic)?
pub fn is_relatively_serializable(
    txns: &TxnSet,
    schedule: &Schedule,
    spec: &AtomicitySpec,
) -> bool {
    Rsg::build(txns, schedule, spec).is_acyclic()
}

/// Membership of one schedule in every polynomial class of Figure 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassReport {
    /// Transactions run back-to-back.
    pub serial: bool,
    /// Definition 1.
    pub relatively_atomic: bool,
    /// Definition 2.
    pub relatively_serial: bool,
    /// Classical SG test.
    pub conflict_serializable: bool,
    /// Theorem 1 (RSG test).
    pub relatively_serializable: bool,
}

/// Classifies `schedule` against every polynomial class.
///
/// ```
/// use relser_core::prelude::*;
/// let fig = relser_core::paper::Figure1::new();
/// let report = classify(&fig.txns, &fig.s_ra(), &fig.spec);
/// assert!(report.relatively_atomic && !report.serial);
/// assert!(report.relatively_serializable && !report.conflict_serializable);
/// ```
pub fn classify(txns: &TxnSet, schedule: &Schedule, spec: &AtomicitySpec) -> ClassReport {
    ClassReport {
        serial: schedule.is_serial(),
        relatively_atomic: is_relatively_atomic(txns, schedule, spec),
        relatively_serial: is_relatively_serial(txns, schedule, spec),
        conflict_serializable: is_conflict_serializable(txns, schedule),
        relatively_serializable: is_relatively_serializable(txns, schedule, spec),
    }
}

impl ClassReport {
    /// Checks the containments of Figure 5 that hold for a *single*
    /// schedule: serial ⇒ relatively atomic ⇒ relatively serial ⇒
    /// relatively serializable, and conflict-serializable consistency is
    /// left to the caller (it is incomparable per-schedule under relaxed
    /// specs). Returns `true` if no containment is violated.
    pub fn containments_hold(&self) -> bool {
        (!self.serial || self.relatively_atomic)
            && (!self.relatively_atomic || self.relatively_serial)
            && (!self.relatively_serial || self.relatively_serializable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TxnId = TxnId(0);
    const T2: TxnId = TxnId(1);

    fn fig1() -> (TxnSet, AtomicitySpec) {
        let txns = TxnSet::parse(&[
            "r1[x] w1[x] w1[z] r1[y]",
            "r2[y] w2[y] r2[x]",
            "w3[x] w3[y] w3[z]",
        ])
        .unwrap();
        let mut spec = AtomicitySpec::absolute(&txns);
        spec.set_units_str(&txns, 0, 1, "r1[x] w1[x] | w1[z] r1[y]")
            .unwrap();
        spec.set_units_str(&txns, 0, 2, "r1[x] w1[x] | w1[z] | r1[y]")
            .unwrap();
        spec.set_units_str(&txns, 1, 0, "r2[y] | w2[y] r2[x]")
            .unwrap();
        spec.set_units_str(&txns, 1, 2, "r2[y] w2[y] | r2[x]")
            .unwrap();
        spec.set_units_str(&txns, 2, 0, "w3[x] w3[y] | w3[z]")
            .unwrap();
        spec.set_units_str(&txns, 2, 1, "w3[x] w3[y] | w3[z]")
            .unwrap();
        (txns, spec)
    }

    #[test]
    fn sra_is_relatively_atomic_but_not_serial() {
        // §2: "even though S_ra is not a serial schedule, it is correct with
        // respect to the relative atomicity specifications."
        let (txns, spec) = fig1();
        let sra = txns
            .parse_schedule("r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]")
            .unwrap();
        let report = classify(&txns, &sra, &spec);
        assert!(!report.serial);
        assert!(report.relatively_atomic);
        assert!(report.relatively_serial);
        assert!(report.relatively_serializable);
        assert!(report.containments_hold());
    }

    #[test]
    fn srs_is_relatively_serial_but_not_relatively_atomic() {
        // §2: in S_rs, r2[y] is interleaved with AtomicUnit(1, T1, T2) but
        // carries no dependency — allowed by Definition 2, forbidden by
        // Definition 1.
        let (txns, spec) = fig1();
        let srs = txns
            .parse_schedule("r1[x] r2[y] w1[x] w2[y] w3[x] w1[z] w3[y] r2[x] r1[y] w3[z]")
            .unwrap();
        assert!(!is_relatively_atomic(&txns, &srs, &spec));
        assert!(is_relatively_serial(&txns, &srs, &spec));
        // The atomicity violation is exactly the tolerated one.
        let v = relative_atomicity_violation(&txns, &srs, &spec).unwrap();
        assert_eq!(v.op, OpId::new(T2, 0)); // r2[y]
        assert_eq!(v.owner, T1);
        assert_eq!(v.unit, 0);
    }

    #[test]
    fn s2_is_relatively_serializable_but_not_relatively_serial() {
        // §2: "S2 is not relatively serial since w1[x] is interleaved with
        // AtomicUnit(2, T2, T1) and r2[x] depends on w1[x]."
        let (txns, spec) = fig1();
        let s2 = txns
            .parse_schedule("r1[x] r2[y] w2[y] w1[x] w3[x] r2[x] w1[z] w3[y] r1[y] w3[z]")
            .unwrap();
        let report = classify(&txns, &s2, &spec);
        assert!(!report.relatively_serial);
        assert!(report.relatively_serializable);
        assert!(report.containments_hold());
        let v = relative_seriality_violation(&txns, &s2, &spec).unwrap();
        assert_eq!(v.op, OpId::new(T1, 1), "w1[x] is the intruder");
        assert_eq!(v.owner, T2);
        assert_eq!(v.unit, 1, "AtomicUnit(2, T2, T1), 0-based unit 1");
        assert_eq!(
            v.dependency,
            Some(OpId::new(T2, 2)),
            "r2[x] depends on w1[x]"
        );
    }

    #[test]
    fn serial_schedules_belong_to_every_class() {
        let (txns, spec) = fig1();
        for perm in [[0u32, 1, 2], [1, 2, 0], [2, 0, 1]] {
            let order: Vec<TxnId> = perm.iter().map(|&i| TxnId(i)).collect();
            let s = txns.serial_schedule(&order).unwrap();
            let r = classify(&txns, &s, &spec);
            assert!(r.serial && r.relatively_atomic && r.relatively_serial);
            assert!(r.conflict_serializable && r.relatively_serializable);
        }
    }

    #[test]
    fn figure2_direct_dependencies_are_insufficient() {
        // S1 = w1[x] w2[y] r3[y] w3[z] r1[z] with w1[x] r1[z] atomic wrt T2.
        // Transitive depends-on: w2[y] ~> r1[z] ⇒ NOT relatively serial.
        // Direct-only variant wrongly accepts S1.
        let txns = TxnSet::parse(&["w1[x] r1[z]", "w2[y]", "r3[y] w3[z]"]).unwrap();
        let mut spec = AtomicitySpec::absolute(&txns);
        // Figure 2: T1 is a single unit toward T2, split toward T3; T3
        // split toward T1, atomic toward T2.
        spec.set_units_str(&txns, 0, 2, "w1[x] | r1[z]").unwrap();
        spec.set_units_str(&txns, 2, 0, "r3[y] | w3[z]").unwrap();
        let s1 = txns
            .parse_schedule("w1[x] w2[y] r3[y] w3[z] r1[z]")
            .unwrap();

        assert!(
            !is_relatively_serial(&txns, &s1, &spec),
            "paper: S1 is not correct"
        );
        let direct = DependsOn::direct(&txns, &s1);
        assert!(
            relative_seriality_violation_with_deps(&txns, &s1, &spec, &direct).is_none(),
            "paper: conflict-only dependencies would wrongly accept S1"
        );
        let v = relative_seriality_violation(&txns, &s1, &spec).unwrap();
        assert_eq!(v.op, OpId::new(T2, 0), "w2[y] intrudes");
        assert_eq!(v.owner, T1);
    }

    #[test]
    fn absolute_spec_relative_serial_equals_dependency_free_interleaving() {
        // Under absolute atomicity a non-serial schedule can still be
        // relatively serial if interleaved transactions are independent.
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[y] w2[y]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let s = txns.parse_schedule("r1[x] r2[y] w1[x] w2[y]").unwrap();
        assert!(!s.is_serial());
        assert!(is_relatively_serial(&txns, &s, &spec));
        // But with a dependency, interleaving is rejected.
        let txns2 = TxnSet::parse(&["r1[x] w1[x]", "w2[x] w2[y]"]).unwrap();
        let spec2 = AtomicitySpec::absolute(&txns2);
        let s2 = txns2.parse_schedule("r1[x] w2[x] w1[x] w2[y]").unwrap();
        assert!(!is_relatively_serial(&txns2, &s2, &spec2));
    }

    #[test]
    fn violation_reports_are_none_for_clean_schedules() {
        let (txns, spec) = fig1();
        let s = txns.serial_schedule(&[T1, T2, TxnId(2)]).unwrap();
        assert_eq!(relative_atomicity_violation(&txns, &s, &spec), None);
        assert_eq!(relative_seriality_violation(&txns, &s, &spec), None);
    }
}
