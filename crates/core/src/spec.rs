//! Relative atomicity specifications.
//!
//! §2 of the paper: "an atomic unit of `T_i` relative to `T_j` is a sequence
//! of operations of `T_i` such that no operations of `T_j` are allowed to be
//! executed within this sequence. `Atomicity(T_i, T_j)` denotes the ordered
//! sequence of atomic units of `T_i` relative to `T_j`."
//!
//! Following Farrag–Özsu's equivalent *breakpoint* formulation (which the
//! paper cites in §2), the partition of `T_i` relative to `T_j` is stored as
//! a strictly-increasing set of breakpoints `b ∈ {1, …, len(T_i)-1}`, each
//! meaning "a unit boundary before the operation at 0-based program index
//! `b`". No breakpoints ⇒ absolute atomicity (one unit); all breakpoints ⇒
//! free interleaving (every operation its own unit).
//!
//! [`AtomicitySpec::push_forward`] and [`AtomicitySpec::pull_backward`] are
//! the paper's §3 `PushForward(o, T_k)` / `PullBackward(o, T_k)`: the last /
//! first operation of the atomic unit containing `o` relative to `T_k`.

use crate::error::{Error, Result};
use crate::ids::{OpId, TxnId};
use crate::txn::TxnSet;
use std::ops::RangeInclusive;

/// The relative atomicity specification for a whole transaction set: one
/// breakpoint set per *ordered* pair of distinct transactions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomicitySpec {
    /// Lengths of the transactions, indexed by `TxnId`.
    lens: Vec<u32>,
    /// `breaks[i * n + j]` = breakpoints of `Atomicity(T_i, T_j)`,
    /// strictly increasing, each in `1..lens[i]`. Diagonal entries unused.
    breaks: Vec<Vec<u32>>,
}

impl AtomicitySpec {
    /// Absolute atomicity: every transaction is a single atomic unit with
    /// respect to every other transaction. Under this spec the paper's
    /// classes collapse onto the traditional ones (Lemma 1).
    pub fn absolute(txns: &TxnSet) -> Self {
        let n = txns.len();
        AtomicitySpec {
            lens: txns.txns().iter().map(|t| t.len() as u32).collect(),
            breaks: vec![Vec::new(); n * n],
        }
    }

    /// Free interleaving: every operation is its own atomic unit with
    /// respect to every other transaction (Garcia-Molina's "arbitrarily
    /// interleaved" compatibility within a set).
    pub fn free(txns: &TxnSet) -> Self {
        let mut spec = Self::absolute(txns);
        for i in txns.txn_ids() {
            for j in txns.txn_ids() {
                if i != j {
                    let all: Vec<u32> = (1..spec.lens[i.index()]).collect();
                    let slot = spec.slot(i, j);
                    spec.breaks[slot] = all;
                }
            }
        }
        spec
    }

    /// Number of transactions covered.
    pub fn txn_count(&self) -> usize {
        self.lens.len()
    }

    /// Length of transaction `t` as recorded by the spec.
    pub fn txn_len(&self, t: TxnId) -> u32 {
        self.lens[t.index()]
    }

    fn slot(&self, i: TxnId, j: TxnId) -> usize {
        debug_assert_ne!(i, j, "Atomicity(T_i, T_i) is undefined");
        i.index() * self.lens.len() + j.index()
    }

    /// Sets the breakpoints of `Atomicity(T_i, T_j)`.
    ///
    /// `breakpoints` must be strictly increasing with every value in
    /// `1..len(T_i)`.
    pub fn set_breakpoints(&mut self, i: TxnId, j: TxnId, breakpoints: &[u32]) -> Result<()> {
        if i.index() >= self.lens.len() {
            return Err(Error::UnknownTxn(i));
        }
        if j.index() >= self.lens.len() {
            return Err(Error::UnknownTxn(j));
        }
        if i == j {
            return Err(Error::BadSpec(format!(
                "Atomicity({i}, {i}) is undefined: a transaction has no atomicity relative to itself"
            )));
        }
        let len = self.lens[i.index()];
        for w in breakpoints.windows(2) {
            if w[0] >= w[1] {
                return Err(Error::BadSpec(format!(
                    "breakpoints must be strictly increasing, got {breakpoints:?}"
                )));
            }
        }
        if let (Some(&first), Some(&last)) = (breakpoints.first(), breakpoints.last()) {
            if first == 0 || last >= len {
                return Err(Error::BadSpec(format!(
                    "breakpoints of Atomicity({i}, {j}) must lie in 1..{len}, got {breakpoints:?}"
                )));
            }
        }
        let slot = self.slot(i, j);
        self.breaks[slot] = breakpoints.to_vec();
        Ok(())
    }

    /// Sets `Atomicity(T_i, T_j)` from unit sizes, e.g. `[2, 2]` for a
    /// 4-operation transaction split into two 2-operation units.
    pub fn set_unit_sizes(&mut self, i: TxnId, j: TxnId, sizes: &[u32]) -> Result<()> {
        if i.index() >= self.lens.len() {
            return Err(Error::UnknownTxn(i));
        }
        if sizes.contains(&0) {
            return Err(Error::Empty("atomic unit".into()));
        }
        let total: u32 = sizes.iter().sum();
        if total != self.lens[i.index()] {
            return Err(Error::BadSpec(format!(
                "unit sizes {sizes:?} sum to {total}, but {i} has {} operations",
                self.lens[i.index()]
            )));
        }
        let mut breakpoints = Vec::with_capacity(sizes.len().saturating_sub(1));
        let mut acc = 0;
        for &s in &sizes[..sizes.len() - 1] {
            acc += s;
            breakpoints.push(acc);
        }
        self.set_breakpoints(i, j, &breakpoints)
    }

    /// Sets `Atomicity(T_i, T_j)` from the paper's visual notation, with `|`
    /// separating units:
    ///
    /// ```
    /// # use relser_core::prelude::*;
    /// let txns = TxnSet::parse(&["r1[x] w1[x] w1[z] r1[y]", "r2[y] w2[y] r2[x]"]).unwrap();
    /// let mut spec = AtomicitySpec::absolute(&txns);
    /// spec.set_units_str(&txns, 0, 1, "r1[x] w1[x] | w1[z] r1[y]").unwrap();
    /// assert_eq!(spec.breakpoints(TxnId(0), TxnId(1)), &[2]);
    /// ```
    ///
    /// Every operation of `T_i` must appear, in program order, with the
    /// correct mode and object; `i`/`j` are 0-based indexes here.
    pub fn set_units_str(&mut self, txns: &TxnSet, i: usize, j: usize, s: &str) -> Result<()> {
        let ti = TxnId(i as u32);
        let tj = TxnId(j as u32);
        let txn = txns.get(ti).ok_or(Error::UnknownTxn(ti))?;
        let mut breakpoints = Vec::new();
        let mut cursor: u32 = 0;
        for (unit_idx, unit_src) in s.split('|').enumerate() {
            let unit_src = unit_src.trim();
            if unit_src.is_empty() {
                return Err(Error::BadSpec(format!(
                    "unit {unit_idx} of Atomicity({ti}, {tj}) is empty"
                )));
            }
            if unit_idx > 0 {
                breakpoints.push(cursor);
            }
            for tok in unit_src.split_whitespace() {
                let expected = txn.ops().get(cursor as usize).ok_or_else(|| {
                    Error::BadSpec(format!(
                        "Atomicity({ti}, {tj}) lists more operations than {ti} has (at `{tok}`)"
                    ))
                })?;
                let want = format!(
                    "{}{}[{}]",
                    expected.mode.letter(),
                    ti.0 + 1,
                    txns.objects().name(expected.object)
                );
                if tok != want {
                    return Err(Error::BadSpec(format!(
                        "Atomicity({ti}, {tj}): expected `{want}` at position {cursor}, found `{tok}`"
                    )));
                }
                cursor += 1;
            }
        }
        if cursor != txn.len() as u32 {
            return Err(Error::BadSpec(format!(
                "Atomicity({ti}, {tj}) covers {cursor} of {} operations",
                txn.len()
            )));
        }
        self.set_breakpoints(ti, tj, &breakpoints)
    }

    /// The breakpoints of `Atomicity(T_i, T_j)`.
    pub fn breakpoints(&self, i: TxnId, j: TxnId) -> &[u32] {
        &self.breaks[self.slot(i, j)]
    }

    /// Number of atomic units of `T_i` relative to `T_j`.
    pub fn unit_count(&self, i: TxnId, j: TxnId) -> usize {
        self.breaks[self.slot(i, j)].len() + 1
    }

    /// The index (0-based) of the atomic unit of `T_i` relative to
    /// `observer` that contains operation index `op_index`.
    pub fn unit_of_index(&self, i: TxnId, observer: TxnId, op_index: u32) -> usize {
        let b = &self.breaks[self.slot(i, observer)];
        // Number of breakpoints <= op_index.
        b.partition_point(|&bp| bp <= op_index)
    }

    /// The unit containing operation `op`, relative to `observer`
    /// (`observer` must differ from `op.txn`).
    pub fn unit_of(&self, op: OpId, observer: TxnId) -> usize {
        self.unit_of_index(op.txn, observer, op.index)
    }

    /// Inclusive range of operation indices spanned by `unit` of
    /// `Atomicity(T_i, observer)`.
    pub fn unit_bounds(&self, i: TxnId, observer: TxnId, unit: usize) -> RangeInclusive<u32> {
        let b = &self.breaks[self.slot(i, observer)];
        let first = if unit == 0 { 0 } else { b[unit - 1] };
        let last = if unit == b.len() {
            self.lens[i.index()] - 1
        } else {
            b[unit] - 1
        };
        first..=last
    }

    /// `PushForward(o, T_k)` (§3): the *last* operation of the atomic unit
    /// of `o`'s transaction containing `o`, relative to `observer`.
    pub fn push_forward(&self, op: OpId, observer: TxnId) -> OpId {
        let unit = self.unit_of(op, observer);
        let last = *self.unit_bounds(op.txn, observer, unit).end();
        OpId::new(op.txn, last)
    }

    /// `PullBackward(o, T_k)` (§3): the *first* operation of the atomic
    /// unit of `o`'s transaction containing `o`, relative to `observer`.
    pub fn pull_backward(&self, op: OpId, observer: TxnId) -> OpId {
        let unit = self.unit_of(op, observer);
        let first = *self.unit_bounds(op.txn, observer, unit).start();
        OpId::new(op.txn, first)
    }

    /// `true` if every pair uses a single atomic unit — the traditional
    /// absolute-atomicity model.
    pub fn is_absolute(&self) -> bool {
        self.breaks.iter().all(Vec::is_empty)
    }

    /// Renders `Atomicity(T_i, T_j)` in the paper's boxed-units style using
    /// `|` separators, e.g. `r1[x] w1[x] | w1[z] r1[y]`.
    pub fn display_pair(&self, txns: &TxnSet, i: TxnId, j: TxnId) -> String {
        let txn = txns.txn(i);
        let b = self.breakpoints(i, j);
        let mut parts = Vec::new();
        let mut next_break = b.iter().peekable();
        for (idx, _) in txn.ops().iter().enumerate() {
            if next_break.peek() == Some(&&(idx as u32)) {
                parts.push("|".to_string());
                next_break.next();
            }
            parts.push(txns.display_op(OpId::new(i, idx as u32)));
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> TxnSet {
        TxnSet::parse(&[
            "r1[x] w1[x] w1[z] r1[y]",
            "r2[y] w2[y] r2[x]",
            "w3[x] w3[y] w3[z]",
        ])
        .unwrap()
    }

    const T1: TxnId = TxnId(0);
    const T2: TxnId = TxnId(1);
    const T3: TxnId = TxnId(2);

    /// The full Figure 1 specification.
    fn fig1_spec(txns: &TxnSet) -> AtomicitySpec {
        let mut spec = AtomicitySpec::absolute(txns);
        spec.set_units_str(txns, 0, 1, "r1[x] w1[x] | w1[z] r1[y]")
            .unwrap();
        spec.set_units_str(txns, 0, 2, "r1[x] w1[x] | w1[z] | r1[y]")
            .unwrap();
        spec.set_units_str(txns, 1, 0, "r2[y] | w2[y] r2[x]")
            .unwrap();
        spec.set_units_str(txns, 1, 2, "r2[y] w2[y] | r2[x]")
            .unwrap();
        spec.set_units_str(txns, 2, 0, "w3[x] w3[y] | w3[z]")
            .unwrap();
        spec.set_units_str(txns, 2, 1, "w3[x] w3[y] | w3[z]")
            .unwrap();
        spec
    }

    #[test]
    fn absolute_spec_has_single_units() {
        let t = fig1();
        let spec = AtomicitySpec::absolute(&t);
        assert!(spec.is_absolute());
        assert_eq!(spec.unit_count(T1, T2), 1);
        assert_eq!(spec.unit_bounds(T1, T2, 0), 0..=3);
    }

    #[test]
    fn free_spec_has_singleton_units() {
        let t = fig1();
        let spec = AtomicitySpec::free(&t);
        assert!(!spec.is_absolute());
        assert_eq!(spec.unit_count(T1, T2), 4);
        for u in 0..4u32 {
            assert_eq!(spec.unit_bounds(T1, T2, u as usize), u..=u);
        }
    }

    #[test]
    fn figure1_units_parse_to_expected_breakpoints() {
        let t = fig1();
        let spec = fig1_spec(&t);
        assert_eq!(spec.breakpoints(T1, T2), &[2]);
        assert_eq!(spec.breakpoints(T1, T3), &[2, 3]);
        assert_eq!(spec.breakpoints(T2, T1), &[1]);
        assert_eq!(spec.breakpoints(T2, T3), &[2]);
        assert_eq!(spec.breakpoints(T3, T1), &[2]);
        assert_eq!(spec.breakpoints(T3, T2), &[2]);
    }

    #[test]
    fn push_forward_and_pull_backward_match_paper_examples() {
        // §3: "PushForward(r1[x], T2) is w1[x] and PullBackward(r1[y], T2)
        // is w1[z]."
        let t = fig1();
        let spec = fig1_spec(&t);
        let r1x = OpId::new(T1, 0);
        let r1y = OpId::new(T1, 3);
        assert_eq!(spec.push_forward(r1x, T2), OpId::new(T1, 1)); // w1[x]
        assert_eq!(spec.pull_backward(r1y, T2), OpId::new(T1, 2)); // w1[z]
    }

    #[test]
    fn unit_of_counts_breakpoints() {
        let t = fig1();
        let spec = fig1_spec(&t);
        // Atomicity(T1, T3) = [r1x w1x][w1z][r1y]
        assert_eq!(spec.unit_of(OpId::new(T1, 0), T3), 0);
        assert_eq!(spec.unit_of(OpId::new(T1, 1), T3), 0);
        assert_eq!(spec.unit_of(OpId::new(T1, 2), T3), 1);
        assert_eq!(spec.unit_of(OpId::new(T1, 3), T3), 2);
    }

    #[test]
    fn unit_bounds_cover_the_transaction() {
        let t = fig1();
        let spec = fig1_spec(&t);
        let mut covered = Vec::new();
        for u in 0..spec.unit_count(T1, T3) {
            covered.extend(spec.unit_bounds(T1, T3, u));
        }
        assert_eq!(covered, vec![0, 1, 2, 3]);
    }

    #[test]
    fn set_unit_sizes_equivalent_to_breakpoints() {
        let t = fig1();
        let mut a = AtomicitySpec::absolute(&t);
        a.set_unit_sizes(T1, T2, &[2, 2]).unwrap();
        assert_eq!(a.breakpoints(T1, T2), &[2]);
        // Wrong total rejected.
        assert!(a.set_unit_sizes(T1, T2, &[2, 3]).is_err());
        // Zero-size unit rejected.
        assert!(a.set_unit_sizes(T1, T2, &[0, 4]).is_err());
    }

    #[test]
    fn bad_breakpoints_rejected() {
        let t = fig1();
        let mut spec = AtomicitySpec::absolute(&t);
        assert!(spec.set_breakpoints(T1, T2, &[0]).is_err()); // 0 invalid
        assert!(spec.set_breakpoints(T1, T2, &[4]).is_err()); // == len invalid
        assert!(spec.set_breakpoints(T1, T2, &[2, 2]).is_err()); // not strict
        assert!(spec.set_breakpoints(T1, T2, &[3, 2]).is_err()); // decreasing
        assert!(spec.set_breakpoints(T1, T1, &[1]).is_err()); // diagonal
        assert!(spec.set_breakpoints(TxnId(9), T1, &[1]).is_err()); // unknown
        assert!(spec.set_breakpoints(T1, T2, &[1, 2, 3]).is_ok());
    }

    #[test]
    fn set_units_str_validates_coverage_and_tokens() {
        let t = fig1();
        let mut spec = AtomicitySpec::absolute(&t);
        // Missing an operation.
        assert!(spec.set_units_str(&t, 0, 1, "r1[x] w1[x] | w1[z]").is_err());
        // Wrong token.
        assert!(spec
            .set_units_str(&t, 0, 1, "w1[x] r1[x] | w1[z] r1[y]")
            .is_err());
        // Empty unit.
        assert!(spec
            .set_units_str(&t, 0, 1, "r1[x] w1[x] | | w1[z] r1[y]")
            .is_err());
        // Too many operations.
        assert!(spec
            .set_units_str(&t, 0, 1, "r1[x] w1[x] w1[z] r1[y] r1[y]")
            .is_err());
    }

    #[test]
    fn display_pair_roundtrips() {
        let t = fig1();
        let spec = fig1_spec(&t);
        assert_eq!(spec.display_pair(&t, T1, T2), "r1[x] w1[x] | w1[z] r1[y]");
        assert_eq!(spec.display_pair(&t, T1, T3), "r1[x] w1[x] | w1[z] | r1[y]");
        let absolute = AtomicitySpec::absolute(&t);
        assert_eq!(absolute.display_pair(&t, T3, T1), "w3[x] w3[y] w3[z]");
    }
}
