//! Executable versions of the paper's figures and named schedules.
//!
//! Every figure of the PODS'94 paper is packaged here so tests, examples,
//! and the `paper-tables` experiment harness all reproduce the *same*
//! objects the paper prints. Figure and schedule names follow the paper:
//! `S_ra` (§2), `S_rs` (§2), `S_2` (§2 / Figure 3), `S_1` (Figure 2), `S`
//! (Figure 4).

use crate::spec::AtomicitySpec;
use crate::txn::TxnSet;

/// Figure 1: three transactions with their relative atomicity
/// specifications, plus the schedules the paper discusses over them.
pub struct Figure1 {
    /// `T1 = r1[x] w1[x] w1[z] r1[y]`, `T2 = r2[y] w2[y] r2[x]`,
    /// `T3 = w3[x] w3[y] w3[z]`.
    pub txns: TxnSet,
    /// The six `Atomicity(T_i, T_j)` rows of Figure 1.
    pub spec: AtomicitySpec,
}

impl Figure1 {
    /// Builds the figure.
    pub fn new() -> Self {
        let txns = TxnSet::parse(&[
            "r1[x] w1[x] w1[z] r1[y]",
            "r2[y] w2[y] r2[x]",
            "w3[x] w3[y] w3[z]",
        ])
        .expect("figure 1 transactions are well-formed");
        let mut spec = AtomicitySpec::absolute(&txns);
        let rows = [
            (0, 1, "r1[x] w1[x] | w1[z] r1[y]"),
            (0, 2, "r1[x] w1[x] | w1[z] | r1[y]"),
            (1, 0, "r2[y] | w2[y] r2[x]"),
            (1, 2, "r2[y] w2[y] | r2[x]"),
            (2, 0, "w3[x] w3[y] | w3[z]"),
            (2, 1, "w3[x] w3[y] | w3[z]"),
        ];
        for (i, j, units) in rows {
            spec.set_units_str(&txns, i, j, units)
                .expect("figure 1 spec rows are well-formed");
        }
        Figure1 { txns, spec }
    }

    /// §2 `S_ra`: "not a serial schedule, \[but\] correct with respect to the
    /// relative atomicity specifications" — relatively atomic.
    pub fn s_ra(&self) -> crate::schedule::Schedule {
        self.txns
            .parse_schedule("r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]")
            .expect("S_ra is a valid schedule")
    }

    /// §2 `S_rs`: relatively serial but not relatively atomic.
    pub fn s_rs(&self) -> crate::schedule::Schedule {
        self.txns
            .parse_schedule("r1[x] r2[y] w1[x] w2[y] w3[x] w1[z] w3[y] r2[x] r1[y] w3[z]")
            .expect("S_rs is a valid schedule")
    }

    /// §2 `S_2`: not relatively serial, but relatively serializable
    /// (conflict-equivalent to `S_rs`).
    pub fn s_2(&self) -> crate::schedule::Schedule {
        self.txns
            .parse_schedule("r1[x] r2[y] w2[y] w1[x] w3[x] r2[x] w1[z] w3[y] r1[y] w3[z]")
            .expect("S_2 is a valid schedule")
    }
}

impl Default for Figure1 {
    fn default() -> Self {
        Self::new()
    }
}

/// Figure 2: the example showing that direct conflicts are not sufficient
/// for correctness — `r1[z]` is *affected by* `w2[y]` only transitively.
pub struct Figure2 {
    /// `T1 = w1[x] r1[z]`, `T2 = w2[y]`, `T3 = r3[y] w3[z]`.
    pub txns: TxnSet,
    /// `Atomicity(T1,T2) = [w1[x] r1[z]]`, `Atomicity(T1,T3) = [w1[x]][r1[z]]`,
    /// `Atomicity(T3,T1) = [r3[y]][w3[z]]`, `Atomicity(T3,T2) = [r3[y] w3[z]]`.
    pub spec: AtomicitySpec,
}

impl Figure2 {
    /// Builds the figure.
    pub fn new() -> Self {
        let txns = TxnSet::parse(&["w1[x] r1[z]", "w2[y]", "r3[y] w3[z]"])
            .expect("figure 2 transactions are well-formed");
        let mut spec = AtomicitySpec::absolute(&txns);
        spec.set_units_str(&txns, 0, 2, "w1[x] | r1[z]").unwrap();
        spec.set_units_str(&txns, 2, 0, "r3[y] | w3[z]").unwrap();
        Figure2 { txns, spec }
    }

    /// `S_1 = w1[x] w2[y] r3[y] w3[z] r1[z]` — not relatively serial, but a
    /// conflict-only dependency relation would wrongly accept it.
    pub fn s_1(&self) -> crate::schedule::Schedule {
        self.txns
            .parse_schedule("w1[x] w2[y] r3[y] w3[z] r1[z]")
            .expect("S_1 is a valid schedule")
    }
}

impl Default for Figure2 {
    fn default() -> Self {
        Self::new()
    }
}

/// Figure 3: the worked relative serialization graph.
pub struct Figure3 {
    /// `T1 = w1[x] r1[z]`, `T2 = r2[x] w2[y]`, `T3 = r3[z] r3[y]`.
    pub txns: TxnSet,
    /// The six `Atomicity` rows of Figure 3.
    pub spec: AtomicitySpec,
}

impl Figure3 {
    /// Builds the figure.
    pub fn new() -> Self {
        let txns = TxnSet::parse(&["w1[x] r1[z]", "r2[x] w2[y]", "r3[z] r3[y]"])
            .expect("figure 3 transactions are well-formed");
        let mut spec = AtomicitySpec::absolute(&txns);
        // Atomicity(T1,T3): w1[x] | r1[z];   Atomicity(T1,T2): one unit.
        spec.set_units_str(&txns, 0, 2, "w1[x] | r1[z]").unwrap();
        // Atomicity(T2,T3): r2[x] | w2[y];   Atomicity(T2,T1): r2[x] | w2[y].
        spec.set_units_str(&txns, 1, 2, "r2[x] | w2[y]").unwrap();
        spec.set_units_str(&txns, 1, 0, "r2[x] | w2[y]").unwrap();
        // Atomicity(T3,T1): r3[z] | r3[y];   Atomicity(T3,T2): one unit.
        spec.set_units_str(&txns, 2, 0, "r3[z] | r3[y]").unwrap();
        Figure3 { txns, spec }
    }

    /// The schedule whose RSG the paper draws:
    /// `S_2 = w1[x] r2[x] r3[z] w2[y] r3[y] r1[z]`.
    pub fn s_2(&self) -> crate::schedule::Schedule {
        self.txns
            .parse_schedule("w1[x] r2[x] r3[z] w2[y] r3[y] r1[z]")
            .expect("figure 3 schedule is valid")
    }
}

impl Default for Figure3 {
    fn default() -> Self {
        Self::new()
    }
}

/// Figure 4: a relatively *serial* schedule that is **not** relatively
/// consistent — the witness separating the paper's class from
/// Farrag–Özsu's.
pub struct Figure4 {
    /// `T1 = w1[x] w1[y]`, `T2 = w2[z] w2[y]`, `T3 = w3[t] w3[z]`,
    /// `T4 = w4[x] w4[t]`.
    pub txns: TxnSet,
    /// Everyone is atomic toward everyone, except:
    /// `Atomicity(T2,T4) = [w2[z]][w2[y]]`, `Atomicity(T3,T2) =
    /// [w3[t]][w3[z]]`, `Atomicity(T3,T4) = [w3[t]][w3[z]]`,
    /// `Atomicity(T4,T2) = [w4[x]][w4[t]]`, `Atomicity(T4,T3) =
    /// [w4[x]][w4[t]]`.
    pub spec: AtomicitySpec,
}

impl Figure4 {
    /// Builds the figure.
    pub fn new() -> Self {
        let txns = TxnSet::parse(&["w1[x] w1[y]", "w2[z] w2[y]", "w3[t] w3[z]", "w4[x] w4[t]"])
            .expect("figure 4 transactions are well-formed");
        let mut spec = AtomicitySpec::absolute(&txns);
        spec.set_units_str(&txns, 1, 3, "w2[z] | w2[y]").unwrap();
        spec.set_units_str(&txns, 2, 1, "w3[t] | w3[z]").unwrap();
        spec.set_units_str(&txns, 2, 3, "w3[t] | w3[z]").unwrap();
        spec.set_units_str(&txns, 3, 1, "w4[x] | w4[t]").unwrap();
        spec.set_units_str(&txns, 3, 2, "w4[x] | w4[t]").unwrap();
        Figure4 { txns, spec }
    }

    /// `S = w4[x] w3[t] w4[t] w1[x] w1[y] w2[z] w2[y] w3[z]` — relatively
    /// serial, not relatively consistent.
    pub fn s(&self) -> crate::schedule::Schedule {
        self.txns
            .parse_schedule("w4[x] w3[t] w4[t] w1[x] w1[y] w2[z] w2[y] w3[z]")
            .expect("figure 4 schedule is valid")
    }
}

impl Default for Figure4 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{classify, is_relatively_serial};
    use crate::ids::{OpId, TxnId};
    use crate::rsg::{ArcKinds, Rsg};

    #[test]
    fn figure1_schedules_classify_as_the_paper_says() {
        let fig = Figure1::new();
        let ra = classify(&fig.txns, &fig.s_ra(), &fig.spec);
        assert!(ra.relatively_atomic && !ra.serial);
        let rs = classify(&fig.txns, &fig.s_rs(), &fig.spec);
        assert!(rs.relatively_serial && !rs.relatively_atomic);
        let s2 = classify(&fig.txns, &fig.s_2(), &fig.spec);
        assert!(s2.relatively_serializable && !s2.relatively_serial);
        // And S2 is conflict-equivalent to S_rs (the paper's witness).
        assert!(fig.s_2().conflict_equivalent(&fig.s_rs(), &fig.txns));
    }

    #[test]
    fn figure2_schedule_rejected_only_with_transitive_dependencies() {
        let fig = Figure2::new();
        let s1 = fig.s_1();
        assert!(!is_relatively_serial(&fig.txns, &s1, &fig.spec));
        let direct = crate::depends::DependsOn::direct(&fig.txns, &s1);
        assert!(crate::classes::relative_seriality_violation_with_deps(
            &fig.txns, &s1, &fig.spec, &direct
        )
        .is_none());
    }

    /// The paper's Figure 3, arc for arc. The drawing contains (besides the
    /// three I-arcs): D/F/B combinations on seven operation pairs.
    #[test]
    fn figure3_rsg_arcs_match_the_paper_exactly() {
        let fig = Figure3::new();
        let s2 = fig.s_2();
        let rsg = Rsg::build(&fig.txns, &s2, &fig.spec);

        let t1 = TxnId(0);
        let t2 = TxnId(1);
        let t3 = TxnId(2);
        let w1x = OpId::new(t1, 0);
        let r1z = OpId::new(t1, 1);
        let r2x = OpId::new(t2, 0);
        let w2y = OpId::new(t2, 1);
        let r3z = OpId::new(t3, 0);
        let r3y = OpId::new(t3, 1);

        // I-arcs along each transaction.
        assert_eq!(rsg.arc_between(w1x, r1z), Some(ArcKinds::I));
        assert_eq!(rsg.arc_between(r2x, w2y), Some(ArcKinds::I));
        assert_eq!(rsg.arc_between(r3z, r3y), Some(ArcKinds::I));

        // w1[x] -> r2[x]: r2[x] depends on w1[x] (conflict on x); the
        // B-arc pulls r2[x] back to the start of its unit wrt T1, which is
        // r2[x] itself (Atomicity(T2,T1) = [r2x][w2y]) — merged D,B.
        assert_eq!(rsg.arc_between(w1x, r2x), Some(ArcKinds::D | ArcKinds::B));
        // "since w1[x]r1[z] is atomic with respect to T2 and since r2[x]
        // depends on w1[x], RSG(S2) contains the F-arc from r1[z] to
        // r2[x]" — the paper's own example sentence.
        assert_eq!(rsg.arc_between(r1z, r2x), Some(ArcKinds::F));

        // w1[x] -> w2[y]: transitive dependency (w1x -> r2x -> w2y);
        // B-arc target PullBackward(w2[y], T1) = w2[y] itself — merged D,B;
        // F-arc source PushForward(w1[x], T2) = r1[z].
        assert_eq!(rsg.arc_between(w1x, w2y), Some(ArcKinds::D | ArcKinds::B));
        assert_eq!(rsg.arc_between(r1z, w2y), Some(ArcKinds::F));

        // w1[x] -> r3[y]: transitive dependency; PushForward(w1[x], T3) =
        // w1[x] (unit [w1x][r1z] wrt T3) and PullBackward(r3[y], T1) =
        // r3[y] (units [r3z][r3y] wrt T1): all three kinds merge.
        assert_eq!(
            rsg.arc_between(w1x, r3y),
            Some(ArcKinds::D | ArcKinds::F | ArcKinds::B)
        );

        // r2[x] -> r3[y]: transitive dependency (r2x -> w2y -> r3y);
        // PushForward(r2[x], T3) = r2[x] (unit [r2x][w2y] wrt T3 splits) —
        // D,F merged; B-arc pulls r3[y] back to r3[z] (Atomicity(T3,T2) is
        // one unit).
        assert_eq!(rsg.arc_between(r2x, r3y), Some(ArcKinds::D | ArcKinds::F));
        assert_eq!(rsg.arc_between(r2x, r3z), Some(ArcKinds::B));

        // "Since r3[z]r3[y] is atomic relative to T2 and r3[y] depends on
        // w2[y], RSG(S2) contains the B-arc from w2[y] to r3[z]" — the
        // paper's other example sentence. The direct arc itself is D plus a
        // coinciding F (PushForward(w2[y], T3) = w2[y]).
        assert_eq!(rsg.arc_between(w2y, r3y), Some(ArcKinds::D | ArcKinds::F));
        assert_eq!(rsg.arc_between(w2y, r3z), Some(ArcKinds::B));

        // r3[z] and r1[z] are both reads: no conflict, no dependency, no
        // arc either way.
        assert_eq!(rsg.arc_between(r3z, r1z), None);
        assert_eq!(rsg.arc_between(r1z, r3z), None);

        // Figure 3's RSG is acyclic: S2 is relatively serializable even
        // though it is not relatively serial (r2[x] and w2[y] intrude into
        // T1's unit while depending on it).
        assert!(rsg.is_acyclic());
        let witness = rsg.witness(&fig.txns).unwrap();
        assert!(witness.conflict_equivalent(&s2, &fig.txns));
        assert!(crate::classes::is_relatively_serial(
            &fig.txns, &witness, &fig.spec
        ));
        assert!(!crate::classes::is_relatively_serial(
            &fig.txns, &s2, &fig.spec
        ));
    }

    #[test]
    fn figure3_total_arc_inventory() {
        // The published drawing has exactly 12 labelled arcs: I×3, F×2,
        // B×2, "D,F"×2, "D,B"×2, "D,F,B"×1.
        let fig = Figure3::new();
        let rsg = Rsg::build(&fig.txns, &fig.s_2(), &fig.spec);
        assert_eq!(rsg.arc_count(), 12);
        let mut label_counts = std::collections::HashMap::new();
        for (_, _, kinds) in rsg.arcs() {
            *label_counts.entry(kinds.to_string()).or_insert(0u32) += 1;
        }
        assert_eq!(label_counts.get("I"), Some(&3));
        assert_eq!(label_counts.get("F"), Some(&2));
        assert_eq!(label_counts.get("B"), Some(&2));
        assert_eq!(label_counts.get("D,F"), Some(&2));
        assert_eq!(label_counts.get("D,B"), Some(&2));
        assert_eq!(label_counts.get("D,F,B"), Some(&1));
    }

    #[test]
    fn figure4_schedule_is_relatively_serial() {
        let fig = Figure4::new();
        let s = fig.s();
        let report = classify(&fig.txns, &s, &fig.spec);
        assert!(report.relatively_serial, "paper: S is relatively serial");
        assert!(report.relatively_serializable);
        assert!(
            !report.relatively_atomic,
            "T1 sits inside T3's unit as seen by T1"
        );
    }
}
