//! Incremental RSG maintenance — the engine behind the online RSG-SGT
//! scheduler.
//!
//! The offline builder ([`crate::rsg::Rsg`]) recomputes the depends-on
//! closure and every arc family from scratch; doing that per scheduler
//! request costs O(P²) in the executed prefix length P. This module
//! maintains the same graph *incrementally*: admitting one operation
//! produces exactly the new D/F/B arcs it induces (an [`RsgDelta`]) in
//! time proportional to the operation's depends-on set, with no
//! recomputation of the closure.
//!
//! ## Why deltas are exact
//!
//! The depends-on relation (§2) is the transitive closure of program
//! order and conflicts, both of which point from earlier to later
//! schedule positions. Appending an operation `o` therefore never
//! changes the ancestor set of an already-admitted operation: the only
//! new depends-on pairs are `(u, o)` for
//!
//! ```text
//! ancestors(o) = ⋃ { ancestors(p) ∪ {p} : p direct predecessor of o }
//! ```
//!
//! where the direct predecessors are `o`'s program-order predecessor and
//! every earlier admitted conflicting access to `o`'s object. The engine
//! stores `ancestors` as one [`BitSet`] per admitted operation (indexed
//! by *global operation id*), so the union is a word-parallel O(P/64)
//! sweep. Each cross-transaction ancestor `u` then contributes the
//! Definition 3 arcs: the D-arc `u → o`, the F-arc
//! `PushForward(u, txn(o)) → o`, and the B-arc
//! `o's PullBackward image: u → PullBackward(o, txn(u))`.
//!
//! Nodes for **all** operations (and the I-arc skeleton) are installed up
//! front from the static transaction programs — push-forward/pull-backward
//! targets must exist as nodes before they execute, exactly as in the
//! offline graph.
//!
//! ## Rollback and retirement
//!
//! All engine state is append-only per admission, so each admission is
//! journalled: the graph arcs via [`relser_digraph::BatchUndo`] and the
//! ancestor/access tables by position. An abort undoes journals
//! newest-first down to the aborted transaction's first admission and
//! replays the surviving suffix — replay cannot fail, because the replayed
//! graph is a subgraph of the previously acyclic one.
//!
//! Committed transactions are *retired* once every arc into them
//! originates from retired nodes (or their own): retired nodes are masked
//! out of cycle searches, so long-finished transactions stop costing
//! anything. Retirement is sound because an admission only ever targets
//! the requester's own nodes — a committed transaction never gains new
//! incoming arcs — so no future cycle can enter the retired region.
//!
//! ## Reclamation and compaction
//!
//! Masking alone leaves memory O(total history): retired nodes keep their
//! arcs, journals, ancestor bitsets and access-list entries. Retirement
//! therefore *prunes* — the retired transaction's journals are blanked,
//! its ancestor sets dropped, and its access-list entries removed. This
//! is decision-neutral: a retired transaction's ancestors are themselves
//! retired (every in-arc comes from a retired node, by the retirement
//! rule), so any arc a pruned entry could have contributed would have had
//! a retired endpoint and been masked from every cycle search anyway.
//! When the retired fraction of the arena crosses the
//! [`CompactionPolicy`] threshold, the arena itself is rebuilt
//! ([`IncrementalDag::compact`]) with an old→new index remap, dropping
//! retired nodes and their arcs and translating the outstanding live
//! journals — so arena size tracks the live window, not total history.

use crate::ids::{OpId, TxnId};
use crate::rsg::ArcKinds;
use crate::spec::AtomicitySpec;
use crate::txn::TxnSet;
use relser_digraph::bitset::BitSet;
use relser_digraph::incremental::ArcRejection;
use relser_digraph::{BatchUndo, IncrementalDag, NodeIdx};

/// The exact set of new arcs one admitted operation adds to the RSG.
///
/// I-arcs are static (installed with the node skeleton at construction),
/// so a delta carries only the D/F/B arcs induced by the operation's new
/// depends-on pairs. Arcs are merged per ordered endpoint pair and sorted
/// for determinism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsgDelta {
    /// The operation whose admission induces these arcs.
    pub op: OpId,
    /// New or label-widened arcs, `(from, to, kinds)`, deterministic order.
    pub arcs: Vec<(OpId, OpId, ArcKinds)>,
    /// Depends-on ancestors of `op` (global operation ids).
    ancestors: BitSet,
}

impl RsgDelta {
    /// Number of operations `op` depends on.
    pub fn depends_on_count(&self) -> usize {
        self.ancestors.len()
    }
}

/// Allocation-free summary of a successful admission.
///
/// [`IncrementalRsg::try_admit`] returns this `Copy` digest instead of the
/// full [`RsgDelta`] so the steady grant path materializes nothing; callers
/// that need the arc list (tests, explainers) call
/// [`IncrementalRsg::propose`] *before* admitting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmitSummary {
    /// The admitted operation.
    pub op: OpId,
    /// Number of D/F/B arcs the admission applied (after per-pair merging).
    pub arcs: usize,
    /// Number of operations `op` depends on.
    pub depends_on: usize,
}

/// Why an admission was refused: one of the delta's arcs would have
/// closed a cycle in the RSG (Theorem 1 violated by the extended prefix).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// The refused operation.
    pub op: OpId,
    /// The offending arc `(from, to, kinds)` from the delta.
    pub arc: (OpId, OpId, ArcKinds),
    /// Pre-existing path `to ~> from` (inclusive) the arc would close.
    pub cycle: Vec<OpId>,
}

/// Why [`IncrementalRsg::try_admit`] refused an operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// Admission would close a cycle in the RSG.
    Cycle(Rejection),
    /// The operation belongs to an already-retired (committed and swept)
    /// transaction — a late-arriving request after the transaction's
    /// information was reclaimed. The engine is unchanged; the caller
    /// should fail that request, not the scheduler.
    Retired(TxnId),
}

/// When [`IncrementalRsg`] rebuilds its arena to drop retired state.
///
/// Compaction runs after a retirement sweep once **both** bounds hold:
/// at least `min_retired_ops` operation nodes are retired, and they make
/// up more than `retired_fraction_pct` percent of the arena. The first
/// bound stops tiny universes from compacting constantly; the second
/// keeps the amortized cost O(1) per retired node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Minimum retired operation nodes before compaction is considered.
    pub min_retired_ops: usize,
    /// Retired percentage of the arena (0–100) that triggers compaction.
    pub retired_fraction_pct: u8,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            min_retired_ops: 256,
            retired_fraction_pct: 50,
        }
    }
}

impl CompactionPolicy {
    /// Never compact automatically (callers may still
    /// [`IncrementalRsg::force_compact`]).
    pub fn never() -> Self {
        CompactionPolicy {
            min_retired_ops: usize::MAX,
            retired_fraction_pct: 100,
        }
    }

    /// Compact as soon as anything at all is retired — used by tests to
    /// exercise the remap machinery on every sweep.
    pub fn aggressive() -> Self {
        CompactionPolicy {
            min_retired_ops: 1,
            retired_fraction_pct: 0,
        }
    }
}

/// Incrementally maintained relative serialization graph over the full
/// (static) operation set, supporting admission, rollback, and
/// retirement. See the module docs for the invariants.
#[derive(Clone, Debug)]
pub struct IncrementalRsg {
    txns: TxnSet,
    spec: AtomicitySpec,
    /// Global node index base per transaction.
    offset: Vec<u32>,
    /// Owning transaction per global operation id.
    owner: Vec<TxnId>,
    total: u32,
    dag: IncrementalDag<ArcKinds>,
    /// Arena node per global operation id; `None` once the operation's
    /// transaction retired and a compaction dropped the node.
    nodes: Vec<Option<NodeIdx>>,
    /// Global operation id per arena node (the inverse of `nodes`),
    /// rebuilt at each compaction.
    node_global: Vec<u32>,
    /// Granted operations in grant order.
    admitted: Vec<OpId>,
    /// One graph journal per admission, parallel to `admitted`. Journals
    /// of retired transactions are blanked (their arcs are masked, so
    /// undoing them is decision-neutral either way).
    journals: Vec<BatchUndo<ArcKinds>>,
    /// `ancestors[g]` = depends-on set of admitted operation `g`;
    /// dropped back to `None` (row recycled) when the owner retires.
    ancestors: Vec<Option<BitSet>>,
    /// Admitted accesses per object id: (global id, is_write), grant
    /// order. Rows are grown lazily to the highest object id actually
    /// touched (an untouched row is an empty `Vec`, no heap behind it),
    /// so a sparse workload over a huge object space pays for the objects
    /// it touches rather than `O(objects)` setup per engine — while the
    /// hot path keeps plain `O(1)` slice indexing instead of hashing.
    /// Entries of retired transactions are pruned; emptied rows keep
    /// their capacity.
    accesses: Vec<Vec<(u32, bool)>>,
    committed: Vec<bool>,
    retired: Vec<bool>,
    /// Running count of retired transactions (O(1) `retired_count`).
    retired_txns: usize,
    /// Running count of retired operation nodes still in the arena.
    retired_ops: usize,
    policy: CompactionPolicy,
    compactions: u64,
    /// Reusable per-admission working memory; see [`Scratch`].
    scratch: Scratch,
    /// Recycled ancestor rows (uniform capacity `total`): rows released by
    /// rollback and retirement are reused by later admissions, so the
    /// steady path never allocates a closure bitset.
    row_pool: Vec<BitSet>,
    /// Recycled admission journals, same discipline as `row_pool`.
    journal_pool: Vec<BatchUndo<ArcKinds>>,
}

/// Reusable buffers for the admit/rollback hot path. Every admission
/// clears and refills these in place; after warm-up their capacities
/// stabilize and the steady path performs zero heap allocations.
#[derive(Clone, Debug, Default)]
struct Scratch {
    /// Depends-on closure of the operation being proposed.
    ancestors: BitSet,
    /// Arc merge buffer: `((from << 32) | to, kinds)`, sorted ascending
    /// and key-coalesced — replaces the old per-propose `HashMap`. The
    /// packed-key order is exactly the old `(from, to)` lexicographic arc
    /// order, so decisions and rejection reports are bit-for-bit
    /// unchanged.
    merged: Vec<(u64, ArcKinds)>,
    /// D/B-arc stream for the merge producing `merged` (already sorted:
    /// keys ascend with the ancestor id).
    dbuf: Vec<(u64, ArcKinds)>,
    /// F-arc stream for the merge (already sorted: `push_forward` targets
    /// ascend as the ancestor walk ascends).
    fbuf: Vec<(u64, ArcKinds)>,
    /// Node-index batch handed to the dag.
    batch: Vec<(NodeIdx, NodeIdx, ArcKinds)>,
    /// Abort replay suffix.
    suffix: Vec<OpId>,
}

impl IncrementalRsg {
    /// Creates the engine with the default [`CompactionPolicy`]; nodes and
    /// the I-arc skeleton are installed up front from the transaction
    /// programs.
    pub fn new(txns: &TxnSet, spec: &AtomicitySpec) -> Self {
        Self::with_policy(txns, spec, CompactionPolicy::default())
    }

    /// Creates the engine with an explicit [`CompactionPolicy`].
    pub fn with_policy(txns: &TxnSet, spec: &AtomicitySpec, policy: CompactionPolicy) -> Self {
        let mut offset = Vec::with_capacity(txns.len());
        let mut owner = Vec::with_capacity(txns.total_ops());
        let mut acc = 0u32;
        for t in txns.txns() {
            offset.push(acc);
            acc += t.len() as u32;
            owner.extend(std::iter::repeat_n(t.id(), t.len()));
        }
        let mut dag: IncrementalDag<ArcKinds> = IncrementalDag::new();
        let nodes: Vec<Option<NodeIdx>> = (0..acc).map(|_| Some(dag.add_node())).collect();
        for t in txns.txns() {
            let base = offset[t.id().index()];
            for j in 1..t.len() as u32 {
                let r = dag.try_add_labeled_edge(
                    nodes[(base + j - 1) as usize].unwrap(),
                    nodes[(base + j) as usize].unwrap(),
                    ArcKinds::I,
                );
                debug_assert!(matches!(r, relser_digraph::AddEdge::Added));
            }
        }
        IncrementalRsg {
            txns: txns.clone(),
            spec: spec.clone(),
            offset,
            owner,
            total: acc,
            dag,
            nodes,
            node_global: (0..acc).collect(),
            admitted: Vec::new(),
            journals: Vec::new(),
            ancestors: vec![None; acc as usize],
            accesses: Vec::new(),
            committed: vec![false; txns.len()],
            retired: vec![false; txns.len()],
            retired_txns: 0,
            retired_ops: 0,
            policy,
            compactions: 0,
            scratch: Scratch {
                ancestors: BitSet::with_capacity(acc as usize),
                ..Scratch::default()
            },
            row_pool: Vec::new(),
            journal_pool: Vec::new(),
        }
    }

    /// Total operations (= graph nodes), admitted or not.
    pub fn total_ops(&self) -> u32 {
        self.total
    }

    /// The granted prefix, in grant order.
    pub fn admitted(&self) -> &[OpId] {
        &self.admitted
    }

    /// Has `txn` been committed (via [`IncrementalRsg::commit`])?
    pub fn is_committed(&self, txn: TxnId) -> bool {
        self.committed[txn.index()]
    }

    /// Has `txn` been retired (masked out of cycle searches)?
    pub fn is_retired(&self, txn: TxnId) -> bool {
        self.retired[txn.index()]
    }

    /// Number of retired transactions. O(1) — a running counter.
    pub fn retired_count(&self) -> usize {
        self.retired_txns
    }

    /// Number of merged arcs currently in the graph (including the static
    /// I-skeleton and any not-yet-compacted arcs of retired transactions).
    pub fn arc_count(&self) -> usize {
        self.dag.graph().edge_count()
    }

    /// Nodes currently in the arena (live plus retired-but-uncompacted).
    /// After a soak this is bounded by the live window, not total history.
    pub fn dag_node_count(&self) -> usize {
        self.dag.node_count()
    }

    /// Number of arena compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    #[inline]
    fn global(&self, op: OpId) -> u32 {
        self.offset[op.txn.index()] + op.index
    }

    #[inline]
    fn op_of(&self, g: u32) -> OpId {
        let t = self.owner[g as usize];
        OpId::new(t, g - self.offset[t.index()])
    }

    /// Computes the delta `op`'s admission would apply, without applying
    /// it. Arcs whose endpoints lie in retired transactions are omitted:
    /// retired nodes are invisible to cycle searches, so such arcs are
    /// decision-neutral (they can only occur when replaying a committed
    /// transaction's own operations after an unrelated abort, or when an
    /// ancestor has retired).
    pub fn propose(&self, op: OpId) -> RsgDelta {
        let mut ancestors = BitSet::with_capacity(self.total as usize);
        let mut merged = Vec::new();
        let (mut dbuf, mut fbuf) = (Vec::new(), Vec::new());
        self.propose_into(op, &mut ancestors, &mut merged, &mut dbuf, &mut fbuf);
        RsgDelta {
            op,
            arcs: merged
                .iter()
                .map(|&(key, k)| (self.op_of((key >> 32) as u32), self.op_of(key as u32), k))
                .collect(),
            ancestors,
        }
    }

    /// [`IncrementalRsg::propose`] into caller-owned buffers — the
    /// allocation-free core the admit path runs on. `ancestors` must have
    /// capacity `total`; both buffers are cleared and refilled. `merged`
    /// ends sorted by packed `(from << 32) | to` key with per-pair kinds
    /// coalesced — the same deterministic arc order `propose` publishes.
    fn propose_into(
        &self,
        op: OpId,
        ancestors: &mut BitSet,
        merged: &mut Vec<(u64, ArcKinds)>,
        dbuf: &mut Vec<(u64, ArcKinds)>,
        fbuf: &mut Vec<(u64, ArcKinds)>,
    ) {
        let g = self.global(op);
        let operation = self.txns.op(op).expect("operation belongs to the set");

        // Direct predecessors: program order + earlier conflicting
        // accesses; ancestors = union of their closures plus themselves.
        // The program-order predecessor is the *nearest admitted* earlier
        // operation of the transaction: a single-core feed admits in
        // program order (so that is `op.index - 1`), while a shard core
        // sees only its shard's projection of a cross-shard transaction —
        // the skipped operations live on other shards, their closures are
        // foreign, and their nodes still participate in cycle searches
        // through the static I-skeleton.
        ancestors.clear();
        let base = self.offset[op.txn.index()];
        if let Some(prev) = (base..g)
            .rev()
            .find(|&p| self.ancestors[p as usize].is_some())
        {
            if let Some(prev_anc) = &self.ancestors[prev as usize] {
                ancestors.union_with(prev_anc);
            }
            ancestors.insert(prev as usize);
        }
        if let Some(accesses) = self.accesses.get(operation.object.index()) {
            for &(u, was_write) in accesses {
                if was_write || operation.is_write() {
                    if let Some(u_anc) = &self.ancestors[u as usize] {
                        ancestors.union_with(u_anc);
                    }
                    ancestors.insert(u as usize);
                }
            }
        }

        // Definition 3 arcs for every *new* depends-on pair (u, op).
        //
        // `ancestors` iterates ascending global ids and global ids are
        // contiguous per transaction, so same-transaction ancestors form
        // one run: the per-ancestor `push_forward`/`pull_backward` unit
        // searches reduce to a pointer walked monotonically through the
        // breakpoint list, recomputed once per run instead of per
        // ancestor. The walk emits two already-sorted packed-key streams
        // — D/B arcs (keys ascend with `u`; within one `u` the B key
        // `(u, pb)` precedes the D key `(u, g)` because `pb <= g`) and F
        // arcs (`push_forward` targets are non-decreasing along the walk,
        // with duplicates therefore adjacent) — and a linear merge with
        // key coalescing replaces the old O(n log n) sort. The output is
        // the identical sorted, per-pair-merged arc list.
        //
        // Arcs with a retired endpoint are omitted as before: every
        // D/F/B arc has one endpoint in `op.txn`, so a retired proposer
        // emits nothing (the abort-replay case), and arcs touching a
        // retired ancestor transaction are dropped by skipping that run.
        merged.clear();
        dbuf.clear();
        fbuf.clear();
        if !self.retired[op.txn.index()] {
            let mut anc_txn = usize::MAX;
            let mut fwd: &[u32] = &[]; // breakpoints(anc_txn, op.txn)
            let mut fwd_unit = 0usize;
            let mut anc_base = 0u32;
            let mut anc_last = 0u32; // last op index of anc_txn
            let mut pb_g = 0u32; // global id of pull_backward(op, anc_txn)
            let gg = u64::from(g);
            for u in ancestors.iter() {
                let ut = self.owner[u].index();
                if ut == op.txn.index() || self.retired[ut] {
                    continue; // D-arcs are cross-transaction only
                }
                if ut != anc_txn {
                    anc_txn = ut;
                    let ut_id = self.owner[u];
                    fwd = self.spec.breakpoints(ut_id, op.txn);
                    fwd_unit = 0;
                    anc_base = self.offset[ut];
                    anc_last = self.txns.txns()[ut].len() as u32 - 1;
                    let back = self.spec.breakpoints(op.txn, ut_id);
                    let unit = back.partition_point(|&bp| bp <= op.index);
                    let first = if unit == 0 { 0 } else { back[unit - 1] };
                    pb_g = base + first;
                }
                let u_index = u as u32 - anc_base;
                while fwd_unit < fwd.len() && fwd[fwd_unit] <= u_index {
                    fwd_unit += 1;
                }
                let last = if fwd_unit == fwd.len() {
                    anc_last
                } else {
                    fwd[fwd_unit] - 1
                };
                let ukey = u64::from(u as u32) << 32;
                if pb_g == g {
                    dbuf.push((ukey | gg, ArcKinds::D | ArcKinds::B));
                } else {
                    dbuf.push((ukey | u64::from(pb_g), ArcKinds::B));
                    dbuf.push((ukey | gg, ArcKinds::D));
                }
                let fkey = (u64::from(anc_base + last) << 32) | gg;
                match fbuf.last_mut() {
                    Some(prev) if prev.0 == fkey => {}
                    _ => fbuf.push((fkey, ArcKinds::F)),
                }
            }
        }
        let (mut i, mut j) = (0, 0);
        while i < dbuf.len() && j < fbuf.len() {
            let (dk, dv) = dbuf[i];
            let (fk, fv) = fbuf[j];
            if dk < fk {
                merged.push((dk, dv));
                i += 1;
            } else if fk < dk {
                merged.push((fk, fv));
                j += 1;
            } else {
                merged.push((dk, dv | fv));
                i += 1;
                j += 1;
            }
        }
        merged.extend_from_slice(&dbuf[i..]);
        merged.extend_from_slice(&fbuf[j..]);
    }

    /// Attempts to admit `op`: applies its delta atomically. On success a
    /// `Copy` [`AdmitSummary`] is returned and the admission is
    /// journalled; on failure graph and engine state are **unchanged**
    /// and the error names either the offending arc and cycle, or the
    /// retired transaction a late request arrived for.
    ///
    /// The steady grant path is allocation-free: the delta is computed in
    /// reusable scratch, the ancestor row comes from a recycled pool, and
    /// the journal reuses a released journal's buffer.
    pub fn try_admit(&mut self, op: OpId) -> Result<AdmitSummary, AdmitError> {
        if self.retired[op.txn.index()] {
            return Err(AdmitError::Retired(op.txn));
        }
        self.admit_inner(op, false)
    }

    /// Admission without the retired-transaction gate: abort-replay uses
    /// this to re-admit a retired survivor's own operations (their deltas
    /// are empty, so replay stays exact). `trusted` marks a replay of
    /// arcs that are a subset of a previously acyclic graph, letting the
    /// dag skip the cycle sweep (debug builds still verify it).
    fn admit_inner(&mut self, op: OpId, trusted: bool) -> Result<AdmitSummary, AdmitError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let res = self.admit_with(op, &mut scratch, trusted);
        self.scratch = scratch;
        res
    }

    fn admit_with(
        &mut self,
        op: OpId,
        s: &mut Scratch,
        trusted: bool,
    ) -> Result<AdmitSummary, AdmitError> {
        self.propose_into(
            op,
            &mut s.ancestors,
            &mut s.merged,
            &mut s.dbuf,
            &mut s.fbuf,
        );
        s.batch.clear();
        for &(key, k) in s.merged.iter() {
            let (a, b) = ((key >> 32) as usize, key as u32 as usize);
            s.batch.push((
                self.nodes[a].expect("delta endpoints belong to uncompacted transactions"),
                self.nodes[b].expect("delta endpoints belong to uncompacted transactions"),
                k,
            ));
        }
        let mut undo = self.journal_pool.pop().unwrap_or_default();
        let applied = if trusted {
            self.dag.add_batch_trusted_into(&s.batch, &mut undo)
        } else {
            self.dag.try_add_batch_into(&s.batch, &mut undo)
        };
        match applied {
            Ok(()) => {
                if !self.retired[op.txn.index()] {
                    let g = self.global(op);
                    let operation = self.txns.op(op).expect("operation belongs to the set");
                    let mut row = self
                        .row_pool
                        .pop()
                        .unwrap_or_else(|| BitSet::with_capacity(self.total as usize));
                    row.copy_from(&s.ancestors);
                    self.ancestors[g as usize] = Some(row);
                    let obj = operation.object.index();
                    if obj >= self.accesses.len() {
                        self.accesses.resize_with(obj + 1, Vec::new);
                    }
                    self.accesses[obj].push((g, operation.is_write()));
                }
                self.admitted.push(op);
                self.journals.push(undo);
                Ok(AdmitSummary {
                    op,
                    arcs: s.merged.len(),
                    depends_on: s.ancestors.len(),
                })
            }
            Err(rej) => {
                self.journal_pool.push(undo); // rolled back: empty, reusable
                let (key, k) = s.merged[rej.arc];
                let arc = (self.op_of((key >> 32) as u32), self.op_of(key as u32), k);
                match rej.cause {
                    ArcRejection::WouldCycle(path) => {
                        let cycle = path
                            .iter()
                            .map(|v| self.op_of(self.node_global[v.index()]))
                            .collect::<Vec<OpId>>();
                        Err(AdmitError::Cycle(Rejection { op, arc, cycle }))
                    }
                    // `propose` filters arcs whose endpoints lie in retired
                    // transactions, so the dag can only see a retired endpoint
                    // if the owner retired between propose and apply — which
                    // cannot happen single-threaded. Surface it typed anyway.
                    ArcRejection::RetiredEndpoint(v) => Err(AdmitError::Retired(
                        self.owner[self.node_global[v.index()] as usize],
                    )),
                }
            }
        }
    }

    /// Undoes the newest admission (graph arcs and tables). For retired
    /// operations the tables were already pruned at retirement, so only
    /// the (blanked) journal is popped.
    fn pop_admission(&mut self) {
        let op = self.admitted.pop().expect("admission to pop");
        let mut undo = self.journals.pop().expect("journal parallel to admitted");
        self.dag.undo_batch_into(&mut undo);
        self.journal_pool.push(undo);
        if self.retired[op.txn.index()] {
            return;
        }
        let g = self.global(op);
        if let Some(row) = self.ancestors[g as usize].take() {
            self.row_pool.push(row);
        }
        let operation = self.txns.op(op).expect("operation belongs to the set");
        let popped = self.accesses[operation.object.index()].pop();
        debug_assert_eq!(popped, Some((g, operation.is_write())));
    }

    /// Aborts `txn`: rolls the engine back to `txn`'s first admission and
    /// replays the surviving operations in their original grant order.
    /// Replay cannot fail — the replayed graph is a subgraph of the
    /// previously acyclic graph.
    pub fn abort(&mut self, txn: TxnId) {
        let Some(k) = self.admitted.iter().position(|o| o.txn == txn) else {
            return; // nothing of txn was admitted
        };
        let mut suffix = std::mem::take(&mut self.scratch.suffix);
        suffix.clear();
        suffix.extend_from_slice(&self.admitted[k..]);
        while self.admitted.len() > k {
            self.pop_admission();
        }
        for &op in &suffix {
            if op.txn == txn {
                continue;
            }
            self.admit_inner(op, true)
                .expect("replaying a subgraph of an acyclic graph cannot cycle");
        }
        suffix.clear();
        self.scratch.suffix = suffix;
        self.sweep_retirement();
    }

    /// Marks `txn` committed and retires every transaction whose
    /// information can no longer participate in a cycle.
    pub fn commit(&mut self, txn: TxnId) {
        self.committed[txn.index()] = true;
        self.sweep_retirement();
    }

    /// Retires committed transactions whose every incoming arc originates
    /// from retired nodes or their own, iterating to a fixpoint (retiring
    /// one transaction may unblock another), then prunes the retired
    /// state and compacts the arena if the policy says so.
    fn sweep_retirement(&mut self) {
        loop {
            let mut changed = false;
            'txns: for t in 0..self.txns.len() {
                if !self.committed[t] || self.retired[t] {
                    continue;
                }
                let base = self.offset[t];
                let len = self.txns.txns()[t].len() as u32;
                for g in base..base + len {
                    let node = self.nodes[g as usize].expect("unretired txn is uncompacted");
                    for p in self.dag.graph().predecessors(node) {
                        let src = self.owner[self.node_global[p.index()] as usize];
                        if src.index() != t && !self.retired[src.index()] {
                            continue 'txns; // a live arc still points in
                        }
                    }
                }
                self.retire_txn(t);
                changed = true;
            }
            if !changed {
                break;
            }
        }
        self.maybe_compact();
    }

    /// Masks `t`'s nodes and reclaims its per-operation state; see the
    /// module docs for why the pruning is decision-neutral.
    fn retire_txn(&mut self, t: usize) {
        let base = self.offset[t];
        let len = self.txns.txns()[t].len() as u32;
        for g in base..base + len {
            self.dag
                .retire_node(self.nodes[g as usize].expect("retiring an uncompacted txn"));
            if let Some(row) = self.ancestors[g as usize].take() {
                self.row_pool.push(row);
            }
        }
        for op in self.txns.txns()[t].ops() {
            if let Some(accesses) = self.accesses.get_mut(op.object.index()) {
                accesses.retain(|&(u, _)| !(base..base + len).contains(&u));
            }
        }
        for (i, op) in self.admitted.iter().enumerate() {
            if op.txn.index() == t {
                self.journals[i].clear();
            }
        }
        self.retired[t] = true;
        self.retired_txns += 1;
        self.retired_ops += len as usize;
    }

    /// Compacts when the policy's thresholds are met.
    fn maybe_compact(&mut self) {
        let arena = self.dag.node_count();
        if arena == 0 || self.retired_ops < self.policy.min_retired_ops {
            return;
        }
        if self.retired_ops * 100 > self.policy.retired_fraction_pct as usize * arena {
            self.force_compact();
        }
    }

    /// Rebuilds the arena dropping retired nodes and their arcs,
    /// remapping the node tables and outstanding journals. Decisions are
    /// bit-for-bit unchanged: retired nodes were already masked from
    /// every cycle search, so the compacted arena answers every
    /// reachability query identically.
    pub fn force_compact(&mut self) {
        let map = self.dag.compact();
        for slot in self.nodes.iter_mut() {
            *slot = slot.and_then(|n| map.node(n));
        }
        let mut node_global = vec![0u32; self.dag.node_count()];
        for (g, slot) in self.nodes.iter().enumerate() {
            if let Some(n) = slot {
                node_global[n.index()] = g as u32;
            }
        }
        self.node_global = node_global;
        for j in self.journals.iter_mut() {
            let old = std::mem::take(j);
            *j = map.remap_undo(old);
        }
        self.retired_ops = 0;
        self.compactions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::Figure1;
    use crate::rsg::Rsg;
    use crate::schedule::Schedule;
    use std::collections::HashMap;

    fn op(t: u32, j: u32) -> OpId {
        OpId::new(TxnId(t), j)
    }

    /// Feeds a complete schedule; panics on rejection. Returns the delta
    /// each admission applied (proposed before admitting, since
    /// `try_admit` itself returns only a summary).
    fn feed(engine: &mut IncrementalRsg, schedule: &Schedule) -> Vec<RsgDelta> {
        schedule
            .ops()
            .iter()
            .map(|&o| {
                let delta = engine.propose(o);
                let summary = engine.try_admit(o).expect("schedule known admissible");
                assert_eq!(summary.arcs, delta.arcs.len());
                assert_eq!(summary.depends_on, delta.depends_on_count());
                delta
            })
            .collect()
    }

    /// The union of all deltas plus the static I-skeleton is exactly the
    /// offline RSG of the admitted schedule.
    #[test]
    fn delta_union_equals_offline_rsg() {
        let fig = Figure1::new();
        for schedule in [fig.s_ra(), fig.s_2()] {
            let mut engine = IncrementalRsg::new(&fig.txns, &fig.spec);
            let deltas = feed(&mut engine, &schedule);

            let mut incremental: HashMap<(OpId, OpId), ArcKinds> = HashMap::new();
            for t in fig.txns.txns() {
                for j in 1..t.len() as u32 {
                    incremental.insert(
                        (
                            op(t.id().index() as u32, j - 1),
                            op(t.id().index() as u32, j),
                        ),
                        ArcKinds::I,
                    );
                }
            }
            for d in deltas {
                for (a, b, k) in d.arcs {
                    *incremental.entry((a, b)).or_insert_with(ArcKinds::empty) |= k;
                }
            }

            let offline: HashMap<(OpId, OpId), ArcKinds> =
                Rsg::build(&fig.txns, &schedule, &fig.spec)
                    .arcs()
                    .into_iter()
                    .map(|(a, b, k)| ((a, b), k))
                    .collect();
            assert_eq!(
                incremental,
                offline,
                "schedule {}",
                schedule.display(&fig.txns)
            );
        }
    }

    #[test]
    fn rejects_lost_update_and_reports_cycle() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let mut engine = IncrementalRsg::new(&txns, &spec);
        engine.try_admit(op(0, 0)).unwrap();
        engine.try_admit(op(1, 0)).unwrap();
        engine.try_admit(op(0, 1)).unwrap();
        let rej = match engine.try_admit(op(1, 1)) {
            Err(AdmitError::Cycle(r)) => r,
            other => panic!("expected cycle rejection, got {other:?}"),
        };
        assert_eq!(rej.op, op(1, 1));
        assert!(rej.cycle.len() >= 2, "cycle witness: {:?}", rej.cycle);
        // Rejection leaves the engine unchanged.
        assert_eq!(engine.admitted().len(), 3);
    }

    #[test]
    fn abort_restores_the_surviving_prefix_exactly() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]", "r3[y] w3[x]"]).unwrap();
        let spec = AtomicitySpec::free(&txns);
        let mut engine = IncrementalRsg::new(&txns, &spec);
        for o in [op(0, 0), op(1, 0), op(2, 0), op(0, 1), op(1, 1)] {
            engine.try_admit(o).unwrap();
        }
        engine.abort(TxnId(1));

        // Reference: a fresh engine fed only the survivors.
        let mut fresh = IncrementalRsg::new(&txns, &spec);
        for o in [op(0, 0), op(2, 0), op(0, 1)] {
            fresh.try_admit(o).unwrap();
        }
        assert_eq!(engine.admitted(), fresh.admitted());
        assert_eq!(engine.arc_count(), fresh.arc_count());
        let edges = |e: &IncrementalRsg| -> Vec<(u32, u32)> {
            let mut v: Vec<(u32, u32)> = e
                .dag
                .graph()
                .edge_refs()
                .map(|r| (r.from.0, r.to.0))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(edges(&engine), edges(&fresh));
    }

    #[test]
    fn abort_of_unadmitted_txn_is_a_noop() {
        let txns = TxnSet::parse(&["r1[x]", "r2[x]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let mut engine = IncrementalRsg::new(&txns, &spec);
        engine.try_admit(op(0, 0)).unwrap();
        engine.abort(TxnId(1));
        assert_eq!(engine.admitted(), &[op(0, 0)]);
    }

    #[test]
    fn commit_retires_transactions_and_keeps_decisions_sound() {
        // T1 runs alone and commits: retirable immediately. T2 and T3 then
        // conflict with T1's history; their arcs from T1 are masked but the
        // schedule they produce must still be relatively serializable.
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]", "w3[x]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let mut engine = IncrementalRsg::new(&txns, &spec);
        engine.try_admit(op(0, 0)).unwrap();
        engine.try_admit(op(0, 1)).unwrap();
        engine.commit(TxnId(0));
        assert!(engine.is_retired(TxnId(0)), "no outside arcs point at T1");

        engine.try_admit(op(1, 0)).unwrap();
        engine.try_admit(op(1, 1)).unwrap();
        engine.commit(TxnId(1));
        engine.try_admit(op(2, 0)).unwrap();
        engine.commit(TxnId(2));
        assert_eq!(engine.retired_count(), 3);

        let s = Schedule::new(&txns, engine.admitted().to_vec()).unwrap();
        assert!(Rsg::build(&txns, &s, &spec).is_acyclic());
    }

    #[test]
    fn retirement_blocked_by_live_in_arc_until_source_retires() {
        // Interleave so T2 depends on T1 *and* T1 on T2's first op:
        // r2[x] r1[x] w1[x] ... under free spec both admit; T1 commits
        // first but has an in-arc from the still-live T2.
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[y]"]).unwrap();
        let spec = AtomicitySpec::free(&txns);
        let mut engine = IncrementalRsg::new(&txns, &spec);
        engine.try_admit(op(1, 0)).unwrap();
        engine.try_admit(op(0, 0)).unwrap();
        engine.try_admit(op(0, 1)).unwrap();
        engine.commit(TxnId(0));
        assert!(
            !engine.is_retired(TxnId(0)),
            "live T2's r2[x] -> w1[x] D-arc pins T1"
        );
        engine.try_admit(op(1, 1)).unwrap();
        engine.commit(TxnId(1));
        assert!(engine.is_retired(TxnId(0)), "fixpoint retires both");
        assert!(engine.is_retired(TxnId(1)));
    }

    #[test]
    fn replay_after_abort_handles_retired_survivors() {
        // T1 commits and retires; T2 aborts afterwards; the replay must
        // re-admit T1's (retired) operations without panicking.
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let spec = AtomicitySpec::free(&txns);
        let mut engine = IncrementalRsg::new(&txns, &spec);
        engine.try_admit(op(1, 0)).unwrap();
        engine.try_admit(op(0, 0)).unwrap();
        engine.try_admit(op(0, 1)).unwrap();
        engine.commit(TxnId(0));
        engine.abort(TxnId(1));
        assert_eq!(engine.admitted(), &[op(0, 0), op(0, 1)]);
        // T2 restarts and completes.
        engine.try_admit(op(1, 0)).unwrap();
        engine.try_admit(op(1, 1)).unwrap();
        engine.commit(TxnId(1));
        assert_eq!(engine.retired_count(), 2);
    }

    #[test]
    fn late_request_for_retired_txn_is_a_typed_error() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[y]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let mut engine = IncrementalRsg::new(&txns, &spec);
        engine.try_admit(op(0, 0)).unwrap();
        engine.commit(TxnId(0));
        assert!(engine.is_retired(TxnId(0)));
        // A straggler request for the retired T1 must not panic and must
        // not disturb the engine.
        let before = engine.admitted().len();
        assert_eq!(
            engine.try_admit(op(0, 1)),
            Err(AdmitError::Retired(TxnId(0)))
        );
        assert_eq!(engine.admitted().len(), before);
        // Live transactions are unaffected.
        engine.try_admit(op(1, 0)).unwrap();
    }

    #[test]
    fn compaction_shrinks_arena_and_preserves_decisions() {
        // Sequential committed transactions retire immediately; under the
        // aggressive policy every sweep compacts. A lockstep engine that
        // never compacts must make identical decisions throughout.
        let programs = ["r1[x] w1[x]", "r2[x] w2[x]", "r3[x] w3[x]", "r4[x] w4[x]"];
        let txns = TxnSet::parse(&programs).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let mut compacting =
            IncrementalRsg::with_policy(&txns, &spec, CompactionPolicy::aggressive());
        let mut plain = IncrementalRsg::with_policy(&txns, &spec, CompactionPolicy::never());
        for t in 0..4u32 {
            for j in 0..2u32 {
                let a = compacting.try_admit(op(t, j));
                let b = plain.try_admit(op(t, j));
                assert_eq!(a.is_ok(), b.is_ok(), "op {t}:{j}");
            }
            compacting.commit(TxnId(t));
            plain.commit(TxnId(t));
            assert_eq!(compacting.admitted(), plain.admitted());
        }
        assert!(compacting.compactions() >= 2, "policy forced compactions");
        assert_eq!(compacting.retired_count(), 4);
        assert_eq!(
            compacting.dag_node_count(),
            0,
            "everything retired: arena fully reclaimed"
        );
        assert_eq!(plain.dag_node_count(), 8, "masking alone keeps all nodes");
    }

    #[test]
    fn abort_replay_is_exact_across_a_compaction() {
        // T1 commits, retires, and is compacted away; T2 and T3 interleave
        // and T2 aborts. The rollback walks journals that were written
        // before the compaction — they must have been remapped.
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[y]", "r3[y] w3[x]"]).unwrap();
        let spec = AtomicitySpec::free(&txns);
        let mut engine = IncrementalRsg::with_policy(&txns, &spec, CompactionPolicy::aggressive());
        engine.try_admit(op(0, 0)).unwrap();
        engine.try_admit(op(0, 1)).unwrap();
        engine.commit(TxnId(0));
        assert!(engine.compactions() >= 1, "T1 compacted away");
        engine.try_admit(op(1, 0)).unwrap();
        engine.try_admit(op(2, 0)).unwrap();
        engine.try_admit(op(1, 1)).unwrap();
        engine.try_admit(op(2, 1)).unwrap();
        engine.abort(TxnId(1));

        // Reference: fresh engine fed the survivors only.
        let mut fresh = IncrementalRsg::with_policy(&txns, &spec, CompactionPolicy::never());
        fresh.try_admit(op(0, 0)).unwrap();
        fresh.try_admit(op(0, 1)).unwrap();
        fresh.commit(TxnId(0));
        fresh.try_admit(op(2, 0)).unwrap();
        fresh.try_admit(op(2, 1)).unwrap();
        assert_eq!(engine.admitted(), fresh.admitted());
        // And both accept T2's restart identically.
        engine.try_admit(op(1, 0)).unwrap();
        fresh.try_admit(op(1, 0)).unwrap();
        engine.try_admit(op(1, 1)).unwrap();
        fresh.try_admit(op(1, 1)).unwrap();
        engine.commit(TxnId(1));
        engine.commit(TxnId(2));
        assert_eq!(engine.retired_count(), 3);
        assert_eq!(engine.dag_node_count(), 0);
    }
}
