//! Incremental RSG maintenance — the engine behind the online RSG-SGT
//! scheduler.
//!
//! The offline builder ([`crate::rsg::Rsg`]) recomputes the depends-on
//! closure and every arc family from scratch; doing that per scheduler
//! request costs O(P²) in the executed prefix length P. This module
//! maintains the same graph *incrementally*: admitting one operation
//! produces exactly the new D/F/B arcs it induces (an [`RsgDelta`]) in
//! time proportional to the operation's depends-on set, with no
//! recomputation of the closure.
//!
//! ## Why deltas are exact
//!
//! The depends-on relation (§2) is the transitive closure of program
//! order and conflicts, both of which point from earlier to later
//! schedule positions. Appending an operation `o` therefore never
//! changes the ancestor set of an already-admitted operation: the only
//! new depends-on pairs are `(u, o)` for
//!
//! ```text
//! ancestors(o) = ⋃ { ancestors(p) ∪ {p} : p direct predecessor of o }
//! ```
//!
//! where the direct predecessors are `o`'s program-order predecessor and
//! every earlier admitted conflicting access to `o`'s object. The engine
//! stores `ancestors` as one [`BitSet`] per admitted operation (indexed
//! by *global operation id*), so the union is a word-parallel O(P/64)
//! sweep. Each cross-transaction ancestor `u` then contributes the
//! Definition 3 arcs: the D-arc `u → o`, the F-arc
//! `PushForward(u, txn(o)) → o`, and the B-arc
//! `o's PullBackward image: u → PullBackward(o, txn(u))`.
//!
//! Nodes for **all** operations (and the I-arc skeleton) are installed up
//! front from the static transaction programs — push-forward/pull-backward
//! targets must exist as nodes before they execute, exactly as in the
//! offline graph.
//!
//! ## Rollback and retirement
//!
//! All engine state is append-only per admission, so each admission is
//! journalled: the graph arcs via [`relser_digraph::BatchUndo`] and the
//! ancestor/access tables by position. An abort undoes journals
//! newest-first down to the aborted transaction's first admission and
//! replays the surviving suffix — replay cannot fail, because the replayed
//! graph is a subgraph of the previously acyclic one.
//!
//! Committed transactions are *retired* once every arc into them
//! originates from retired nodes (or their own): retired nodes are masked
//! out of cycle searches, so long-finished transactions stop costing
//! anything. Retirement is sound because an admission only ever targets
//! the requester's own nodes — a committed transaction never gains new
//! incoming arcs — so no future cycle can enter the retired region.

use crate::ids::{OpId, TxnId};
use crate::rsg::ArcKinds;
use crate::spec::AtomicitySpec;
use crate::txn::TxnSet;
use relser_digraph::bitset::BitSet;
use relser_digraph::{BatchUndo, IncrementalDag, NodeIdx};
use std::collections::HashMap;

/// The exact set of new arcs one admitted operation adds to the RSG.
///
/// I-arcs are static (installed with the node skeleton at construction),
/// so a delta carries only the D/F/B arcs induced by the operation's new
/// depends-on pairs. Arcs are merged per ordered endpoint pair and sorted
/// for determinism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsgDelta {
    /// The operation whose admission induces these arcs.
    pub op: OpId,
    /// New or label-widened arcs, `(from, to, kinds)`, deterministic order.
    pub arcs: Vec<(OpId, OpId, ArcKinds)>,
    /// Depends-on ancestors of `op` (global operation ids).
    ancestors: BitSet,
}

impl RsgDelta {
    /// Number of operations `op` depends on.
    pub fn depends_on_count(&self) -> usize {
        self.ancestors.len()
    }
}

/// Why an admission was refused: one of the delta's arcs would have
/// closed a cycle in the RSG (Theorem 1 violated by the extended prefix).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// The refused operation.
    pub op: OpId,
    /// The offending arc `(from, to, kinds)` from the delta.
    pub arc: (OpId, OpId, ArcKinds),
    /// Pre-existing path `to ~> from` (inclusive) the arc would close.
    pub cycle: Vec<OpId>,
}

/// Incrementally maintained relative serialization graph over the full
/// (static) operation set, supporting admission, rollback, and
/// retirement. See the module docs for the invariants.
#[derive(Clone, Debug)]
pub struct IncrementalRsg {
    txns: TxnSet,
    spec: AtomicitySpec,
    /// Global node index base per transaction.
    offset: Vec<u32>,
    /// Owning transaction per global operation id.
    owner: Vec<TxnId>,
    total: u32,
    dag: IncrementalDag<ArcKinds>,
    nodes: Vec<NodeIdx>,
    /// Granted operations in grant order.
    admitted: Vec<OpId>,
    /// One graph journal per admission, parallel to `admitted`.
    journals: Vec<BatchUndo<ArcKinds>>,
    /// `ancestors[g]` = depends-on set of admitted operation `g`.
    ancestors: Vec<Option<BitSet>>,
    /// Admitted accesses per object: (global id, is_write), grant order.
    accesses: Vec<Vec<(u32, bool)>>,
    committed: Vec<bool>,
    retired: Vec<bool>,
}

impl IncrementalRsg {
    /// Creates the engine; nodes and the I-arc skeleton are installed up
    /// front from the transaction programs.
    pub fn new(txns: &TxnSet, spec: &AtomicitySpec) -> Self {
        let mut offset = Vec::with_capacity(txns.len());
        let mut owner = Vec::with_capacity(txns.total_ops());
        let mut acc = 0u32;
        for t in txns.txns() {
            offset.push(acc);
            acc += t.len() as u32;
            owner.extend(std::iter::repeat_n(t.id(), t.len()));
        }
        let mut dag: IncrementalDag<ArcKinds> = IncrementalDag::new();
        let nodes: Vec<NodeIdx> = (0..acc).map(|_| dag.add_node()).collect();
        for t in txns.txns() {
            let base = offset[t.id().index()];
            for j in 1..t.len() as u32 {
                let r = dag.try_add_labeled_edge(
                    nodes[(base + j - 1) as usize],
                    nodes[(base + j) as usize],
                    ArcKinds::I,
                );
                debug_assert!(matches!(r, relser_digraph::AddEdge::Added));
            }
        }
        IncrementalRsg {
            txns: txns.clone(),
            spec: spec.clone(),
            offset,
            owner,
            total: acc,
            dag,
            nodes,
            admitted: Vec::new(),
            journals: Vec::new(),
            ancestors: vec![None; acc as usize],
            accesses: vec![Vec::new(); txns.objects().len()],
            committed: vec![false; txns.len()],
            retired: vec![false; txns.len()],
        }
    }

    /// Total operations (= graph nodes), admitted or not.
    pub fn total_ops(&self) -> u32 {
        self.total
    }

    /// The granted prefix, in grant order.
    pub fn admitted(&self) -> &[OpId] {
        &self.admitted
    }

    /// Has `txn` been committed (via [`IncrementalRsg::commit`])?
    pub fn is_committed(&self, txn: TxnId) -> bool {
        self.committed[txn.index()]
    }

    /// Has `txn` been retired (masked out of cycle searches)?
    pub fn is_retired(&self, txn: TxnId) -> bool {
        self.retired[txn.index()]
    }

    /// Number of retired transactions.
    pub fn retired_count(&self) -> usize {
        self.retired.iter().filter(|&&r| r).count()
    }

    /// Number of merged arcs currently in the graph (including the static
    /// I-skeleton and arcs of retired transactions).
    pub fn arc_count(&self) -> usize {
        self.dag.graph().edge_count()
    }

    #[inline]
    fn global(&self, op: OpId) -> u32 {
        self.offset[op.txn.index()] + op.index
    }

    #[inline]
    fn op_of(&self, g: u32) -> OpId {
        let t = self.owner[g as usize];
        OpId::new(t, g - self.offset[t.index()])
    }

    /// Computes the delta `op`'s admission would apply, without applying
    /// it. Arcs whose endpoints lie in retired transactions are omitted:
    /// retired nodes are invisible to cycle searches, so such arcs are
    /// decision-neutral (they can only occur when replaying a committed
    /// transaction's own operations after an unrelated abort, or when an
    /// ancestor has retired).
    pub fn propose(&self, op: OpId) -> RsgDelta {
        let g = self.global(op);
        let operation = self.txns.op(op).expect("operation belongs to the set");

        // Direct predecessors: program order + earlier conflicting
        // accesses; ancestors = union of their closures plus themselves.
        let mut ancestors = BitSet::with_capacity(self.total as usize);
        if op.index > 0 {
            let prev = (g - 1) as usize;
            debug_assert!(
                self.ancestors[prev].is_some(),
                "operations must be admitted in program order"
            );
            if let Some(prev_anc) = &self.ancestors[prev] {
                ancestors.union_with(prev_anc);
            }
            ancestors.insert(prev);
        }
        for &(u, was_write) in &self.accesses[operation.object.index()] {
            if was_write || operation.is_write() {
                if let Some(u_anc) = &self.ancestors[u as usize] {
                    ancestors.union_with(u_anc);
                }
                ancestors.insert(u as usize);
            }
        }

        // Definition 3 arcs for every *new* depends-on pair (u, op).
        let mut merged: HashMap<(u32, u32), ArcKinds> = HashMap::new();
        let mut add = |a: u32, b: u32, kind: ArcKinds| {
            if a == b {
                return; // F/B arc collapsed onto its own endpoint
            }
            if self.retired[self.owner[a as usize].index()]
                || self.retired[self.owner[b as usize].index()]
            {
                return; // decision-neutral: masked from searches anyway
            }
            *merged.entry((a, b)).or_insert_with(ArcKinds::empty) |= kind;
        };
        for u in ancestors.iter() {
            let u_op = self.op_of(u as u32);
            if u_op.txn == op.txn {
                continue; // D-arcs are cross-transaction only
            }
            add(u as u32, g, ArcKinds::D);
            let pf = self.spec.push_forward(u_op, op.txn);
            add(self.global(pf), g, ArcKinds::F);
            let pb = self.spec.pull_backward(op, u_op.txn);
            add(u as u32, self.global(pb), ArcKinds::B);
        }
        let mut arcs: Vec<((u32, u32), ArcKinds)> = merged.into_iter().collect();
        arcs.sort_by_key(|&(k, _)| k);
        RsgDelta {
            op,
            arcs: arcs
                .into_iter()
                .map(|((a, b), k)| (self.op_of(a), self.op_of(b), k))
                .collect(),
            ancestors,
        }
    }

    /// Attempts to admit `op`: applies its delta atomically. On success
    /// the delta is returned and the admission is journalled; on failure
    /// graph and engine state are **unchanged** and the rejection names
    /// the offending arc and cycle.
    pub fn try_admit(&mut self, op: OpId) -> Result<RsgDelta, Rejection> {
        let delta = self.propose(op);
        let batch: Vec<(NodeIdx, NodeIdx, ArcKinds)> = delta
            .arcs
            .iter()
            .map(|&(a, b, k)| {
                (
                    self.nodes[self.global(a) as usize],
                    self.nodes[self.global(b) as usize],
                    k,
                )
            })
            .collect();
        match self.dag.try_add_batch(&batch) {
            Ok(undo) => {
                let g = self.global(op);
                let operation = self.txns.op(op).expect("operation belongs to the set");
                self.ancestors[g as usize] = Some(delta.ancestors.clone());
                self.accesses[operation.object.index()].push((g, operation.is_write()));
                self.admitted.push(op);
                self.journals.push(undo);
                Ok(delta)
            }
            Err(rej) => {
                let arc = delta.arcs[rej.arc];
                let cycle = rej
                    .path
                    .iter()
                    .map(|v| self.op_of(v.0))
                    .collect::<Vec<OpId>>();
                Err(Rejection { op, arc, cycle })
            }
        }
    }

    /// Undoes the newest admission (graph arcs and tables).
    fn pop_admission(&mut self) {
        let op = self.admitted.pop().expect("admission to pop");
        let undo = self.journals.pop().expect("journal parallel to admitted");
        self.dag.undo_batch(undo);
        let g = self.global(op);
        self.ancestors[g as usize] = None;
        let operation = self.txns.op(op).expect("operation belongs to the set");
        let popped = self.accesses[operation.object.index()].pop();
        debug_assert_eq!(popped, Some((g, operation.is_write())));
    }

    /// Aborts `txn`: rolls the engine back to `txn`'s first admission and
    /// replays the surviving operations in their original grant order.
    /// Replay cannot fail — the replayed graph is a subgraph of the
    /// previously acyclic graph.
    pub fn abort(&mut self, txn: TxnId) {
        let Some(k) = self.admitted.iter().position(|o| o.txn == txn) else {
            return; // nothing of txn was admitted
        };
        let suffix: Vec<OpId> = self.admitted[k..].to_vec();
        while self.admitted.len() > k {
            self.pop_admission();
        }
        for op in suffix {
            if op.txn == txn {
                continue;
            }
            self.try_admit(op)
                .expect("replaying a subgraph of an acyclic graph cannot cycle");
        }
        self.sweep_retirement();
    }

    /// Marks `txn` committed and retires every transaction whose
    /// information can no longer participate in a cycle.
    pub fn commit(&mut self, txn: TxnId) {
        self.committed[txn.index()] = true;
        self.sweep_retirement();
    }

    /// Retires committed transactions whose every incoming arc originates
    /// from retired nodes or their own, iterating to a fixpoint (retiring
    /// one transaction may unblock another).
    fn sweep_retirement(&mut self) {
        loop {
            let mut changed = false;
            'txns: for t in 0..self.txns.len() {
                if !self.committed[t] || self.retired[t] {
                    continue;
                }
                let base = self.offset[t];
                let len = self.txns.txns()[t].len() as u32;
                for g in base..base + len {
                    for p in self.dag.graph().predecessors(self.nodes[g as usize]) {
                        let src = self.owner[p.index()];
                        if src.index() != t && !self.retired[src.index()] {
                            continue 'txns; // a live arc still points in
                        }
                    }
                }
                for g in base..base + len {
                    self.dag.retire_node(self.nodes[g as usize]);
                }
                self.retired[t] = true;
                changed = true;
            }
            if !changed {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::Figure1;
    use crate::rsg::Rsg;
    use crate::schedule::Schedule;

    fn op(t: u32, j: u32) -> OpId {
        OpId::new(TxnId(t), j)
    }

    /// Feeds a complete schedule; panics on rejection.
    fn feed(engine: &mut IncrementalRsg, schedule: &Schedule) -> Vec<RsgDelta> {
        schedule
            .ops()
            .iter()
            .map(|&o| engine.try_admit(o).expect("schedule known admissible"))
            .collect()
    }

    /// The union of all deltas plus the static I-skeleton is exactly the
    /// offline RSG of the admitted schedule.
    #[test]
    fn delta_union_equals_offline_rsg() {
        let fig = Figure1::new();
        for schedule in [fig.s_ra(), fig.s_2()] {
            let mut engine = IncrementalRsg::new(&fig.txns, &fig.spec);
            let deltas = feed(&mut engine, &schedule);

            let mut incremental: HashMap<(OpId, OpId), ArcKinds> = HashMap::new();
            for t in fig.txns.txns() {
                for j in 1..t.len() as u32 {
                    incremental.insert(
                        (
                            op(t.id().index() as u32, j - 1),
                            op(t.id().index() as u32, j),
                        ),
                        ArcKinds::I,
                    );
                }
            }
            for d in deltas {
                for (a, b, k) in d.arcs {
                    *incremental.entry((a, b)).or_insert_with(ArcKinds::empty) |= k;
                }
            }

            let offline: HashMap<(OpId, OpId), ArcKinds> =
                Rsg::build(&fig.txns, &schedule, &fig.spec)
                    .arcs()
                    .into_iter()
                    .map(|(a, b, k)| ((a, b), k))
                    .collect();
            assert_eq!(
                incremental,
                offline,
                "schedule {}",
                schedule.display(&fig.txns)
            );
        }
    }

    #[test]
    fn rejects_lost_update_and_reports_cycle() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let mut engine = IncrementalRsg::new(&txns, &spec);
        engine.try_admit(op(0, 0)).unwrap();
        engine.try_admit(op(1, 0)).unwrap();
        engine.try_admit(op(0, 1)).unwrap();
        let rej = engine.try_admit(op(1, 1)).unwrap_err();
        assert_eq!(rej.op, op(1, 1));
        assert!(rej.cycle.len() >= 2, "cycle witness: {:?}", rej.cycle);
        // Rejection leaves the engine unchanged.
        assert_eq!(engine.admitted().len(), 3);
    }

    #[test]
    fn abort_restores_the_surviving_prefix_exactly() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]", "r3[y] w3[x]"]).unwrap();
        let spec = AtomicitySpec::free(&txns);
        let mut engine = IncrementalRsg::new(&txns, &spec);
        for o in [op(0, 0), op(1, 0), op(2, 0), op(0, 1), op(1, 1)] {
            engine.try_admit(o).unwrap();
        }
        engine.abort(TxnId(1));

        // Reference: a fresh engine fed only the survivors.
        let mut fresh = IncrementalRsg::new(&txns, &spec);
        for o in [op(0, 0), op(2, 0), op(0, 1)] {
            fresh.try_admit(o).unwrap();
        }
        assert_eq!(engine.admitted(), fresh.admitted());
        assert_eq!(engine.arc_count(), fresh.arc_count());
        let edges = |e: &IncrementalRsg| -> Vec<(u32, u32)> {
            let mut v: Vec<(u32, u32)> = e
                .dag
                .graph()
                .edge_refs()
                .map(|r| (r.from.0, r.to.0))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(edges(&engine), edges(&fresh));
    }

    #[test]
    fn abort_of_unadmitted_txn_is_a_noop() {
        let txns = TxnSet::parse(&["r1[x]", "r2[x]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let mut engine = IncrementalRsg::new(&txns, &spec);
        engine.try_admit(op(0, 0)).unwrap();
        engine.abort(TxnId(1));
        assert_eq!(engine.admitted(), &[op(0, 0)]);
    }

    #[test]
    fn commit_retires_transactions_and_keeps_decisions_sound() {
        // T1 runs alone and commits: retirable immediately. T2 and T3 then
        // conflict with T1's history; their arcs from T1 are masked but the
        // schedule they produce must still be relatively serializable.
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]", "w3[x]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let mut engine = IncrementalRsg::new(&txns, &spec);
        engine.try_admit(op(0, 0)).unwrap();
        engine.try_admit(op(0, 1)).unwrap();
        engine.commit(TxnId(0));
        assert!(engine.is_retired(TxnId(0)), "no outside arcs point at T1");

        engine.try_admit(op(1, 0)).unwrap();
        engine.try_admit(op(1, 1)).unwrap();
        engine.commit(TxnId(1));
        engine.try_admit(op(2, 0)).unwrap();
        engine.commit(TxnId(2));
        assert_eq!(engine.retired_count(), 3);

        let s = Schedule::new(&txns, engine.admitted().to_vec()).unwrap();
        assert!(Rsg::build(&txns, &s, &spec).is_acyclic());
    }

    #[test]
    fn retirement_blocked_by_live_in_arc_until_source_retires() {
        // Interleave so T2 depends on T1 *and* T1 on T2's first op:
        // r2[x] r1[x] w1[x] ... under free spec both admit; T1 commits
        // first but has an in-arc from the still-live T2.
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[y]"]).unwrap();
        let spec = AtomicitySpec::free(&txns);
        let mut engine = IncrementalRsg::new(&txns, &spec);
        engine.try_admit(op(1, 0)).unwrap();
        engine.try_admit(op(0, 0)).unwrap();
        engine.try_admit(op(0, 1)).unwrap();
        engine.commit(TxnId(0));
        assert!(
            !engine.is_retired(TxnId(0)),
            "live T2's r2[x] -> w1[x] D-arc pins T1"
        );
        engine.try_admit(op(1, 1)).unwrap();
        engine.commit(TxnId(1));
        assert!(engine.is_retired(TxnId(0)), "fixpoint retires both");
        assert!(engine.is_retired(TxnId(1)));
    }

    #[test]
    fn replay_after_abort_handles_retired_survivors() {
        // T1 commits and retires; T2 aborts afterwards; the replay must
        // re-admit T1's (retired) operations without panicking.
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let spec = AtomicitySpec::free(&txns);
        let mut engine = IncrementalRsg::new(&txns, &spec);
        engine.try_admit(op(1, 0)).unwrap();
        engine.try_admit(op(0, 0)).unwrap();
        engine.try_admit(op(0, 1)).unwrap();
        engine.commit(TxnId(0));
        engine.abort(TxnId(1));
        assert_eq!(engine.admitted(), &[op(0, 0), op(0, 1)]);
        // T2 restarts and completes.
        engine.try_admit(op(1, 0)).unwrap();
        engine.try_admit(op(1, 1)).unwrap();
        engine.commit(TxnId(1));
        assert_eq!(engine.retired_count(), 2);
    }
}
