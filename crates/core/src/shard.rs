//! Object-space sharding: partition the object universe across N
//! admission cores while keeping one correctness story.
//!
//! The paper defines relative serializability per *history* over the RSG,
//! so a sharded service is sound as long as (a) every conflict is decided
//! by exactly one shard — guaranteed here because conflicts are
//! same-object and [`ShardMap`] assigns each object to exactly one shard —
//! and (b) the committed multi-shard history can be merged back into one
//! schedule for the offline Theorem 1 oracle. This module holds the three
//! pure pieces the server builds on:
//!
//! * [`ShardMap`] — the deterministic object → shard hash and the derived
//!   per-transaction shard sets;
//! * [`ArcExchange`] — the cross-shard D-arc summary: a vector of
//!   per-shard commit-epoch counters piggybacked on two-phase admit
//!   messages, so each shard records which committed frontier an incoming
//!   cross-shard transaction could have observed elsewhere;
//! * [`merge_program_order`] — the recovery-side merge of per-shard grant
//!   logs into one global schedule consistent with every shard's local
//!   order and every transaction's program order.

use crate::error::{Error, Result};
use crate::ids::{ObjectId, OpId, TxnId};
use crate::txn::TxnSet;

/// A deterministic partition of the object space over `shards` cores.
///
/// Uses a Fibonacci multiplicative hash so consecutive interned object
/// ids spread instead of clustering on one shard; two maps with the same
/// shard count agree forever, which is what makes routing, the WAL
/// streams, and recovery mutually consistent without coordination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
}

impl ShardMap {
    /// A map over `shards` ≥ 1 shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: u32) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardMap { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `object`.
    pub fn shard_of(&self, object: ObjectId) -> u32 {
        // Fibonacci hashing: multiply by 2^64 / φ, take the top bits.
        let h = (object.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 33) % self.shards as u64) as u32
    }

    /// The shard owning operation `op` (via its object).
    pub fn shard_of_op(&self, txns: &TxnSet, op: OpId) -> Result<u32> {
        Ok(self.shard_of(txns.op(op)?.object))
    }

    /// The set of shards a transaction touches, ascending and deduplicated.
    pub fn shards_of_txn(&self, txns: &TxnSet, txn: TxnId) -> Vec<u32> {
        let mut shards: Vec<u32> = txns
            .txn(txn)
            .ops()
            .iter()
            .map(|o| self.shard_of(o.object))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// Projects an operation sequence onto one shard: the sub-history of
    /// operations whose objects that shard owns, in the original order.
    pub fn shard_schedule(&self, txns: &TxnSet, ops: &[OpId], shard: u32) -> Result<Vec<OpId>> {
        let mut kept = Vec::new();
        for &op in ops {
            if self.shard_of_op(txns, op)? == shard {
                kept.push(op);
            }
        }
        Ok(kept)
    }
}

/// A cross-shard D-arc summary: one commit-epoch counter per shard,
/// exchanged on two-phase admit messages (vector-clock style, after
/// Mathur & Viswanathan's clock-based atomicity checking).
///
/// Shard `s` bumps `epochs[s]` on every commit it applies. When the
/// router fans a cross-shard admit out, it snapshots the current vector
/// and sends it along; each receiving shard folds the snapshot into its
/// own observed clock ([`ArcExchange::observe`]). The resulting per-shard
/// clocks record exactly which committed frontier every cross-shard
/// admission could depend on — the information the offline oracle's
/// whole-history re-certification makes rigorous.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArcExchange {
    /// The shard this summary belongs to (the sender of an admit message,
    /// or the owner of an observed clock).
    pub source: u32,
    /// One commit-epoch counter per shard.
    pub epochs: Vec<u64>,
}

impl ArcExchange {
    /// A zeroed clock for `source` over `shards` shards.
    pub fn new(source: u32, shards: u32) -> Self {
        ArcExchange {
            source,
            epochs: vec![0; shards as usize],
        }
    }

    /// Folds another summary in: element-wise maximum (the union of the
    /// two observed commit frontiers).
    pub fn observe(&mut self, other: &ArcExchange) {
        if self.epochs.len() < other.epochs.len() {
            self.epochs.resize(other.epochs.len(), 0);
        }
        for (mine, theirs) in self.epochs.iter_mut().zip(&other.epochs) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Advances this shard's own epoch (one commit applied locally).
    pub fn tick(&mut self) {
        let s = self.source as usize;
        if self.epochs.len() <= s {
            self.epochs.resize(s + 1, 0);
        }
        self.epochs[s] += 1;
    }

    /// Does this clock dominate `other` (≥ in every component)? A
    /// dominated admit summary carries no frontier information the shard
    /// has not already observed.
    pub fn dominates(&self, other: &ArcExchange) -> bool {
        other
            .epochs
            .iter()
            .enumerate()
            .all(|(s, &e)| self.epochs.get(s).copied().unwrap_or(0) >= e)
    }
}

/// Merges per-shard grant logs into one global operation sequence that
/// respects (a) each shard's local order and (b) each transaction's
/// program order.
///
/// Greedy head-selection: at every step some shard's head operation has
/// all of its same-transaction predecessors already emitted (the logs are
/// projections of a real execution, whose global order is a witness);
/// ties break by shard index, so the merge is deterministic. Because all
/// conflicting operation pairs share an object — hence a shard — the
/// relative order of every conflicting pair is fixed by its shard's log,
/// and any program-order-consistent merge is conflict-equivalent to the
/// execution's true global order: the RSG verdict does not depend on the
/// tie-break.
///
/// Fails with [`Error`] if the logs are not mergeable (an op's program-
/// order predecessor is missing or buried inconsistently), which means
/// they are not projections of any single valid execution.
pub fn merge_program_order(txns: &TxnSet, shard_logs: &[Vec<OpId>]) -> Result<Vec<OpId>> {
    let total: usize = shard_logs.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    let mut cursor = vec![0usize; shard_logs.len()];
    // emitted[t] = number of t's operations already emitted; an op is
    // emittable when every same-txn op with a smaller index that appears
    // anywhere in the logs has been emitted. Committed histories carry
    // complete op sets, so "count emitted so far == op.index" suffices.
    let mut emitted = vec![0u32; txns.len()];
    while merged.len() < total {
        let mut progressed = false;
        for (s, log) in shard_logs.iter().enumerate() {
            let Some(&op) = log.get(cursor[s]) else {
                continue;
            };
            if op.txn.index() >= txns.len() {
                return Err(Error::Parse(format!(
                    "shard {s} log references unknown transaction {:?}",
                    op.txn
                )));
            }
            if emitted[op.txn.index()] == op.index {
                merged.push(op);
                emitted[op.txn.index()] += 1;
                cursor[s] += 1;
                progressed = true;
            }
        }
        if !progressed {
            return Err(Error::Parse(
                "shard logs are not projections of one execution (merge stuck)".into(),
            ));
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> TxnSet {
        TxnSet::parse(&["w1[x] w1[y]", "w2[y] w2[x]", "r3[x] r3[x]"]).unwrap()
    }

    #[test]
    fn shard_map_is_deterministic_and_total() {
        let map = ShardMap::new(4);
        for i in 0..1000 {
            let s = map.shard_of(ObjectId(i));
            assert!(s < 4);
            assert_eq!(s, map.shard_of(ObjectId(i)), "stable per object");
        }
    }

    #[test]
    fn shard_map_spreads_objects() {
        let map = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4096 {
            counts[map.shard_of(ObjectId(i)) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 512, "badly skewed partition: {counts:?}");
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::new(1);
        for i in 0..64 {
            assert_eq!(map.shard_of(ObjectId(i)), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ShardMap::new(0);
    }

    #[test]
    fn txn_shard_sets_are_sorted_and_deduped() {
        let txns = universe();
        let map = ShardMap::new(8);
        for t in txns.txn_ids() {
            let shards = map.shards_of_txn(&txns, t);
            assert!(!shards.is_empty());
            assert!(shards.windows(2).all(|w| w[0] < w[1]), "{shards:?}");
        }
        // T3 touches only x: exactly one shard.
        assert_eq!(map.shards_of_txn(&txns, TxnId(2)).len(), 1);
    }

    #[test]
    fn shard_schedule_projects_by_object_owner() {
        let txns = universe();
        let map = ShardMap::new(8);
        let all: Vec<OpId> = txns.all_op_ids().collect();
        let mut reunited: Vec<Vec<OpId>> = Vec::new();
        for s in 0..8 {
            reunited.push(map.shard_schedule(&txns, &all, s).unwrap());
        }
        let total: usize = reunited.iter().map(Vec::len).sum();
        assert_eq!(total, all.len(), "projections partition the schedule");
        for (s, ops) in reunited.iter().enumerate() {
            for &op in ops {
                assert_eq!(map.shard_of_op(&txns, op).unwrap(), s as u32);
            }
        }
    }

    #[test]
    fn arc_exchange_observe_is_elementwise_max() {
        let mut a = ArcExchange::new(0, 3);
        a.epochs = vec![5, 0, 2];
        let mut b = ArcExchange::new(1, 3);
        b.epochs = vec![1, 7, 2];
        a.observe(&b);
        assert_eq!(a.epochs, vec![5, 7, 2]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn arc_exchange_tick_bumps_own_component() {
        let mut a = ArcExchange::new(2, 4);
        a.tick();
        a.tick();
        assert_eq!(a.epochs, vec![0, 0, 2, 0]);
    }

    #[test]
    fn merge_reunites_shard_projections() {
        let txns = universe();
        let map = ShardMap::new(4);
        // A real interleaved execution, projected per shard…
        let global = txns
            .parse_schedule("w1[x] w2[y] w1[y] r3[x] w2[x] r3[x]")
            .unwrap();
        let logs: Vec<Vec<OpId>> = (0..4)
            .map(|s| map.shard_schedule(&txns, global.ops(), s).unwrap())
            .collect();
        // …merges back into a schedule with the same per-shard orders and
        // program order (possibly a different, conflict-equivalent
        // interleaving of non-conflicting ops).
        let merged = merge_program_order(&txns, &logs).unwrap();
        assert_eq!(merged.len(), global.ops().len());
        let merged_sched = crate::schedule::Schedule::new(&txns, merged).unwrap();
        assert!(merged_sched.conflict_equivalent(&global, &txns));
    }

    #[test]
    fn merge_rejects_impossible_logs() {
        let txns = universe();
        // Op index 1 of T1 without op 0 anywhere: stuck immediately.
        let logs = vec![vec![OpId::new(TxnId(0), 1)]];
        assert!(merge_program_order(&txns, &logs).is_err());
        // Unknown transaction id.
        let logs = vec![vec![OpId::new(TxnId(99), 0)]];
        assert!(merge_program_order(&txns, &logs).is_err());
    }

    #[test]
    fn merge_of_empty_logs_is_empty() {
        let txns = universe();
        assert!(merge_program_order(&txns, &[]).unwrap().is_empty());
        assert!(merge_program_order(&txns, &[vec![], vec![]])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn conflicting_ops_always_share_a_shard() {
        // The soundness anchor: conflicts are same-object, and the map is
        // a function of the object alone.
        let txns = universe();
        let map = ShardMap::new(3);
        let all: Vec<OpId> = txns.all_op_ids().collect();
        for &a in &all {
            for &b in &all {
                let oa = txns.op(a).unwrap();
                let ob = txns.op(b).unwrap();
                if oa.conflicts_with(ob) {
                    assert_eq!(map.shard_of(oa.object), map.shard_of(ob.object));
                }
            }
        }
    }
}
