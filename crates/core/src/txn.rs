//! Transactions and transaction sets, including the text DSL.
//!
//! The DSL mirrors the paper's notation: a transaction is a
//! whitespace-separated sequence of `r<i>[<obj>]` / `w<i>[<obj>]` tokens,
//! e.g. `T1 = r1[x] w1[x] w1[z] r1[y]` is written `"r1[x] w1[x] w1[z] r1[y]"`.
//! Transaction numbers in the DSL are 1-based (as in the paper) and map to
//! 0-based [`TxnId`]s.

use crate::error::{Error, Result};
use crate::ids::{ObjectTable, OpId, TxnId};
use crate::op::{AccessMode, Operation};
use crate::schedule::Schedule;

/// A transaction: a totally-ordered sequence of read/write operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    id: TxnId,
    ops: Vec<Operation>,
}

impl Transaction {
    /// Creates a transaction. Errors if `ops` is empty: the paper's model
    /// has no empty transactions, and empty transactions would make
    /// atomic-unit machinery degenerate.
    pub fn new(id: TxnId, ops: Vec<Operation>) -> Result<Self> {
        if ops.is_empty() {
            return Err(Error::Empty(format!("transaction {id}")));
        }
        Ok(Transaction { id, ops })
    }

    /// The transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Transactions are never empty, but clippy likes the pair.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The operations in program order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// The `index`-th operation (0-based program order).
    pub fn op(&self, index: u32) -> Operation {
        self.ops[index as usize]
    }

    /// Iterates the transaction's [`OpId`]s in program order.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        let id = self.id;
        (0..self.ops.len() as u32).map(move |j| OpId::new(id, j))
    }
}

/// A set of transactions sharing one object namespace — the paper's `T`.
///
/// Transaction ids are dense: `TxnId(k)` is the `k`-th transaction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TxnSet {
    txns: Vec<Transaction>,
    objects: ObjectTable,
}

impl TxnSet {
    /// An empty set (populate with [`TxnSet::add`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a transaction built from `(mode, object-name)` pairs and returns
    /// its id.
    pub fn add(&mut self, ops: &[(AccessMode, &str)]) -> Result<TxnId> {
        let id = TxnId(u32::try_from(self.txns.len()).expect("too many transactions"));
        let ops: Vec<Operation> = ops
            .iter()
            .map(|&(mode, name)| Operation {
                mode,
                object: self.objects.intern(name),
            })
            .collect();
        self.txns.push(Transaction::new(id, ops)?);
        Ok(id)
    }

    /// Parses one transaction per DSL string; the `k`-th string must use
    /// transaction number `k+1`.
    ///
    /// ```
    /// use relser_core::txn::TxnSet;
    /// let t = TxnSet::parse(&["r1[x] w1[x]", "w2[y]"]).unwrap();
    /// assert_eq!(t.len(), 2);
    /// ```
    pub fn parse(sources: &[&str]) -> Result<Self> {
        let mut set = TxnSet::new();
        for (k, src) in sources.iter().enumerate() {
            let tokens = parse_op_tokens(src)?;
            if tokens.is_empty() {
                return Err(Error::Empty(format!("transaction T{}", k + 1)));
            }
            let mut ops = Vec::with_capacity(tokens.len());
            for tok in tokens {
                if tok.txn_number as usize != k + 1 {
                    return Err(Error::Parse(format!(
                        "operation `{}` carries transaction number {} but appears in the definition of T{}",
                        tok.raw,
                        tok.txn_number,
                        k + 1
                    )));
                }
                ops.push((tok.mode, tok.object));
            }
            let pairs: Vec<(AccessMode, &str)> =
                ops.iter().map(|(m, o)| (*m, o.as_str())).collect();
            set.add(&pairs)?;
        }
        Ok(set)
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Total number of operations across all transactions.
    pub fn total_ops(&self) -> usize {
        self.txns.iter().map(Transaction::len).sum()
    }

    /// The transactions in id order.
    pub fn txns(&self) -> &[Transaction] {
        &self.txns
    }

    /// The transaction with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; use [`TxnSet::get`] for a checked
    /// lookup.
    pub fn txn(&self, id: TxnId) -> &Transaction {
        &self.txns[id.index()]
    }

    /// Checked transaction lookup.
    pub fn get(&self, id: TxnId) -> Option<&Transaction> {
        self.txns.get(id.index())
    }

    /// Iterates all transaction ids.
    pub fn txn_ids(&self) -> impl ExactSizeIterator<Item = TxnId> {
        (0..self.txns.len() as u32).map(TxnId)
    }

    /// The operation named by `id`.
    pub fn op(&self, id: OpId) -> Result<Operation> {
        let txn = self.get(id.txn).ok_or(Error::UnknownTxn(id.txn))?;
        txn.ops()
            .get(id.index as usize)
            .copied()
            .ok_or(Error::UnknownOp(id))
    }

    /// Iterates every operation id of every transaction, grouped by
    /// transaction in id order.
    pub fn all_op_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        self.txns.iter().flat_map(Transaction::op_ids)
    }

    /// The shared object table.
    pub fn objects(&self) -> &ObjectTable {
        &self.objects
    }

    /// Renders an operation the way the paper writes it, e.g. `r1[x]`.
    pub fn display_op(&self, id: OpId) -> String {
        match self.op(id) {
            Ok(op) => format!(
                "{}{}[{}]",
                op.mode.letter(),
                id.txn.0 + 1,
                self.objects.name(op.object)
            ),
            Err(_) => format!("{id:?}"),
        }
    }

    /// Parses a schedule over this transaction set from the DSL, e.g.
    /// `"r2[y] r1[x] w1[x] …"`. The schedule must be a permutation of all
    /// operations respecting each transaction's program order, and each
    /// token's mode/object must match the transaction definition.
    pub fn parse_schedule(&self, src: &str) -> Result<Schedule> {
        let tokens = parse_op_tokens(src)?;
        // Next-expected op index per transaction.
        let mut cursor = vec![0u32; self.txns.len()];
        let mut order = Vec::with_capacity(tokens.len());
        for tok in tokens {
            let txn_id = TxnId(tok.txn_number - 1);
            let txn = self.get(txn_id).ok_or(Error::UnknownTxn(txn_id))?;
            let j = cursor[txn_id.index()];
            let op_id = OpId::new(txn_id, j);
            let expected = txn
                .ops()
                .get(j as usize)
                .copied()
                .ok_or_else(|| Error::Parse(format!(
                    "schedule contains more operations of {txn_id} than the transaction has (at `{}`)",
                    tok.raw
                )))?;
            let obj = self.objects.get(&tok.object).ok_or_else(|| {
                Error::Parse(format!("unknown object `{}` in `{}`", tok.object, tok.raw))
            })?;
            if expected.mode != tok.mode || expected.object != obj {
                return Err(Error::Parse(format!(
                    "schedule token `{}` does not match the next operation of {txn_id}, which is `{}`",
                    tok.raw,
                    self.display_op(op_id)
                )));
            }
            cursor[txn_id.index()] = j + 1;
            order.push(op_id);
        }
        Schedule::new(self, order)
    }

    /// The serial schedule running transactions in the order given by
    /// `perm` (a permutation of all transaction ids).
    pub fn serial_schedule(&self, perm: &[TxnId]) -> Result<Schedule> {
        let mut order = Vec::with_capacity(self.total_ops());
        for &t in perm {
            let txn = self.get(t).ok_or(Error::UnknownTxn(t))?;
            order.extend(txn.op_ids());
        }
        Schedule::new(self, order)
    }
}

/// One parsed DSL token.
struct OpToken {
    raw: String,
    mode: AccessMode,
    txn_number: u32, // 1-based as written
    object: String,
}

/// Splits a DSL string into operation tokens. Grammar per token:
/// `('r'|'w') <digits> '[' <name> ']'`, where `<name>` is any non-empty
/// string without `]` or whitespace.
fn parse_op_tokens(src: &str) -> Result<Vec<OpToken>> {
    let mut out = Vec::new();
    for raw in src.split_whitespace() {
        let mut chars = raw.chars();
        let mode = match chars.next() {
            Some('r') => AccessMode::Read,
            Some('w') => AccessMode::Write,
            other => {
                return Err(Error::Parse(format!(
                    "token `{raw}` must start with `r` or `w` (got {other:?})"
                )))
            }
        };
        let rest: String = chars.collect();
        let bracket = rest
            .find('[')
            .ok_or_else(|| Error::Parse(format!("token `{raw}` is missing `[`")))?;
        let (num, obj_part) = rest.split_at(bracket);
        let txn_number: u32 = num.parse().map_err(|_| {
            Error::Parse(format!(
                "token `{raw}` has a bad transaction number `{num}`"
            ))
        })?;
        if txn_number == 0 {
            return Err(Error::Parse(format!(
                "token `{raw}`: transaction numbers are 1-based"
            )));
        }
        if !obj_part.ends_with(']') {
            return Err(Error::Parse(format!(
                "token `{raw}` is missing closing `]`"
            )));
        }
        let object = &obj_part[1..obj_part.len() - 1];
        if object.is_empty() {
            return Err(Error::Parse(format!(
                "token `{raw}` has an empty object name"
            )));
        }
        out.push(OpToken {
            raw: raw.to_owned(),
            mode,
            txn_number,
            object: object.to_owned(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_figure1_transactions() {
        let t = TxnSet::parse(&[
            "r1[x] w1[x] w1[z] r1[y]",
            "r2[y] w2[y] r2[x]",
            "w3[x] w3[y] w3[z]",
        ])
        .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_ops(), 10);
        assert_eq!(t.txn(TxnId(0)).len(), 4);
        assert_eq!(t.display_op(OpId::new(TxnId(0), 0)), "r1[x]");
        assert_eq!(t.display_op(OpId::new(TxnId(2), 2)), "w3[z]");
        // x, y, z interned once each.
        assert_eq!(t.objects().len(), 3);
    }

    #[test]
    fn wrong_txn_number_in_definition_rejected() {
        let err = TxnSet::parse(&["r1[x] w2[x]"]).unwrap_err();
        assert!(matches!(err, Error::Parse(_)), "{err}");
    }

    #[test]
    fn empty_transaction_rejected() {
        let err = TxnSet::parse(&[""]).unwrap_err();
        assert!(matches!(err, Error::Empty(_)));
    }

    #[test]
    fn token_errors_are_specific() {
        assert!(TxnSet::parse(&["q1[x]"]).is_err());
        assert!(TxnSet::parse(&["r[x]"]).is_err());
        assert!(TxnSet::parse(&["r1x]"]).is_err());
        assert!(TxnSet::parse(&["r1[x"]).is_err());
        assert!(TxnSet::parse(&["r1[]"]).is_err());
        assert!(TxnSet::parse(&["r0[x]"]).is_err());
    }

    #[test]
    fn parse_schedule_roundtrip() {
        let t = TxnSet::parse(&["r1[x] w1[y]", "w2[x]"]).unwrap();
        let s = t.parse_schedule("r1[x] w2[x] w1[y]").unwrap();
        let rendered: Vec<String> = s.ops().iter().map(|&o| t.display_op(o)).collect();
        assert_eq!(rendered, vec!["r1[x]", "w2[x]", "w1[y]"]);
    }

    #[test]
    fn parse_schedule_checks_token_against_program() {
        let t = TxnSet::parse(&["r1[x] w1[y]"]).unwrap();
        // w1[x] is not the next op of T1 (r1[x] is).
        let err = t.parse_schedule("w1[x] w1[y]").unwrap_err();
        assert!(matches!(err, Error::Parse(_)), "{err}");
    }

    #[test]
    fn parse_schedule_rejects_missing_ops() {
        let t = TxnSet::parse(&["r1[x] w1[y]"]).unwrap();
        let err = t.parse_schedule("r1[x]").unwrap_err();
        assert!(matches!(err, Error::NotAPermutation(_)), "{err}");
    }

    #[test]
    fn parse_schedule_rejects_extra_ops() {
        let t = TxnSet::parse(&["r1[x]"]).unwrap();
        let err = t.parse_schedule("r1[x] r1[x]").unwrap_err();
        assert!(matches!(err, Error::Parse(_)), "{err}");
    }

    #[test]
    fn parse_schedule_rejects_unknown_txn() {
        let t = TxnSet::parse(&["r1[x]"]).unwrap();
        let err = t.parse_schedule("r1[x] w9[x]").unwrap_err();
        assert!(matches!(err, Error::UnknownTxn(_)), "{err}");
    }

    #[test]
    fn serial_schedule_in_permuted_order() {
        let t = TxnSet::parse(&["r1[x] w1[x]", "r2[x]"]).unwrap();
        let s = t.serial_schedule(&[TxnId(1), TxnId(0)]).unwrap();
        let rendered: Vec<String> = s.ops().iter().map(|&o| t.display_op(o)).collect();
        assert_eq!(rendered, vec!["r2[x]", "r1[x]", "w1[x]"]);
    }

    #[test]
    fn add_api_builds_transactions() {
        let mut t = TxnSet::new();
        let id = t
            .add(&[(AccessMode::Read, "acct_a"), (AccessMode::Write, "acct_a")])
            .unwrap();
        assert_eq!(id, TxnId(0));
        assert_eq!(t.txn(id).op(0).mode, AccessMode::Read);
        assert_eq!(t.display_op(OpId::new(id, 1)), "w1[acct_a]");
    }

    #[test]
    fn op_lookup_errors() {
        let t = TxnSet::parse(&["r1[x]"]).unwrap();
        assert!(t.op(OpId::new(TxnId(5), 0)).is_err());
        assert!(t.op(OpId::new(TxnId(0), 9)).is_err());
        assert!(t.op(OpId::new(TxnId(0), 0)).is_ok());
    }
}
