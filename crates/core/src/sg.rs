//! The classical serialization graph `SG(S)` and conflict serializability
//! \[Pap79, BSW79\] — the baseline theory the paper generalizes, and the
//! tool used in the proof of Lemma 1.

use crate::ids::TxnId;
use crate::schedule::Schedule;
use crate::txn::TxnSet;
use relser_digraph::{cycle, topo, DiGraph, NodeIdx};

/// The serialization graph: one node per transaction, an edge
/// `T_i -> T_k` whenever some operation of `T_i` conflicts with and
/// precedes some operation of `T_k` in the schedule.
#[derive(Clone, Debug)]
pub struct SerializationGraph {
    g: DiGraph<TxnId, ()>,
}

impl SerializationGraph {
    /// Builds `SG(schedule)`.
    pub fn build(txns: &TxnSet, schedule: &Schedule) -> Self {
        let mut g: DiGraph<TxnId, ()> = DiGraph::with_capacity(txns.len(), txns.len());
        for t in txns.txn_ids() {
            g.add_node(t);
        }
        let mut seen = std::collections::HashSet::new();
        for (a, b) in schedule.conflict_pairs(txns) {
            if seen.insert((a.txn, b.txn)) {
                g.add_edge(NodeIdx(a.txn.0), NodeIdx(b.txn.0), ());
            }
        }
        SerializationGraph { g }
    }

    /// Is the graph acyclic (⇔ the schedule is conflict serializable)?
    pub fn is_acyclic(&self) -> bool {
        cycle::is_acyclic(&self.g)
    }

    /// Some cycle of transactions, if one exists.
    pub fn find_cycle(&self) -> Option<Vec<TxnId>> {
        cycle::find_cycle(&self.g).map(|c| c.into_iter().map(|v| TxnId(v.0)).collect())
    }

    /// An equivalent serial order of the transactions, if the graph is
    /// acyclic (the standard serializability witness).
    pub fn serial_order(&self) -> Option<Vec<TxnId>> {
        topo::topological_sort(&self.g).map(|o| o.into_iter().map(|v| TxnId(v.0)).collect())
    }

    /// Does the graph contain the edge `a -> b`?
    pub fn has_edge(&self, a: TxnId, b: TxnId) -> bool {
        self.g.has_edge(NodeIdx(a.0), NodeIdx(b.0))
    }

    /// Number of (deduplicated) edges.
    pub fn edge_count(&self) -> usize {
        self.g.edge_count()
    }
}

/// Is `schedule` conflict serializable?
pub fn is_conflict_serializable(txns: &TxnSet, schedule: &Schedule) -> bool {
    SerializationGraph::build(txns, schedule).is_acyclic()
}

/// If `schedule` is conflict serializable, returns an equivalent *serial*
/// schedule (transactions in a topological order of `SG`).
pub fn serialization_witness(txns: &TxnSet, schedule: &Schedule) -> Option<Schedule> {
    let order = SerializationGraph::build(txns, schedule).serial_order()?;
    let witness = txns
        .serial_schedule(&order)
        .expect("topological order over all transactions is a valid serial schedule");
    debug_assert!(witness.conflict_equivalent(schedule, txns));
    Some(witness)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializable_schedule_accepted_with_witness() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let s = txns.parse_schedule("r1[x] w1[x] r2[x] w2[x]").unwrap();
        assert!(is_conflict_serializable(&txns, &s));
        let w = serialization_witness(&txns, &s).unwrap();
        assert!(w.is_serial());
        assert!(w.conflict_equivalent(&s, &txns));
    }

    #[test]
    fn lost_update_rejected() {
        // Classic non-serializable interleaving.
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let s = txns.parse_schedule("r1[x] r2[x] w1[x] w2[x]").unwrap();
        assert!(!is_conflict_serializable(&txns, &s));
        let sg = SerializationGraph::build(&txns, &s);
        assert!(sg.has_edge(TxnId(0), TxnId(1))); // r1[x] < w2[x]
        assert!(sg.has_edge(TxnId(1), TxnId(0))); // r2[x] < w1[x]
        let cycle = sg.find_cycle().unwrap();
        assert_eq!(cycle.len(), 2);
        assert!(serialization_witness(&txns, &s).is_none());
    }

    #[test]
    fn serializable_but_not_serial() {
        let txns = TxnSet::parse(&["r1[x] w1[y]", "r2[z] w2[t]"]).unwrap();
        let s = txns.parse_schedule("r1[x] r2[z] w1[y] w2[t]").unwrap();
        assert!(!s.is_serial());
        assert!(is_conflict_serializable(&txns, &s));
    }

    #[test]
    fn edges_deduplicated() {
        let txns = TxnSet::parse(&["w1[x] w1[y]", "w2[x] w2[y]"]).unwrap();
        let s = txns.parse_schedule("w1[x] w1[y] w2[x] w2[y]").unwrap();
        let sg = SerializationGraph::build(&txns, &s);
        assert_eq!(sg.edge_count(), 1); // two conflicts, one edge
    }

    #[test]
    fn three_txn_cycle_detected() {
        let txns = TxnSet::parse(&["w1[a] r1[c]", "w2[b] r2[a]", "w3[c] r3[b]"]).unwrap();
        // w1[a] < r2[a]: 1->2; w2[b] < r3[b]: 2->3; w3[c] < r1[c]: 3->1.
        let s = txns
            .parse_schedule("w1[a] w2[b] w3[c] r2[a] r3[b] r1[c]")
            .unwrap();
        assert!(!is_conflict_serializable(&txns, &s));
        assert_eq!(
            SerializationGraph::build(&txns, &s)
                .find_cycle()
                .unwrap()
                .len(),
            3
        );
    }

    #[test]
    fn serial_schedules_always_serializable() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]", "w3[x]"]).unwrap();
        for perm in [[0u32, 1, 2], [2, 1, 0], [1, 0, 2]] {
            let order: Vec<TxnId> = perm.iter().map(|&i| TxnId(i)).collect();
            let s = txns.serial_schedule(&order).unwrap();
            assert!(is_conflict_serializable(&txns, &s));
            // The witness must be conflict-equivalent (possibly the same).
            let w = serialization_witness(&txns, &s).unwrap();
            assert!(w.conflict_equivalent(&s, &txns));
        }
    }
}
