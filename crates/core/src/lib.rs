//! # relser-core — Relative Serializability
//!
//! A faithful, executable implementation of
//!
//! > D. Agrawal, J. L. Bruno, A. El Abbadi, V. Krishnaswamy.
//! > *Relative Serializability: An Approach for Relaxing the Atomicity of
//! > Transactions.* PODS 1994.
//!
//! Traditional concurrency control treats each transaction as one atomic
//! unit with respect to every other transaction and accepts exactly the
//! conflict-serializable schedules. When application semantics are known,
//! that is needlessly restrictive: the paper lets a transaction present
//! **different atomicity views to different transactions** — for every
//! ordered pair `(T_i, T_j)` the user partitions `T_i`'s operations into
//! *atomic units* relative to `T_j` ([`spec::AtomicitySpec`]). The paper then
//! develops:
//!
//! * **relatively atomic** schedules (Definition 1) — no operation of `T_j`
//!   interleaves inside an atomic unit of `T_i` relative to `T_j`
//!   ([`classes::is_relatively_atomic`]);
//! * the **depends-on** relation — the transitive closure of program order
//!   and conflicts ([`depends::DependsOn`]);
//! * **relatively serial** schedules (Definition 2) — interleavings inside a
//!   unit are tolerated when no dependency links the intruding operation to
//!   the unit ([`classes::is_relatively_serial`]);
//! * **relatively serializable** schedules — conflict-equivalent to a
//!   relatively serial schedule — recognized in polynomial time by
//!   acyclicity of the **relative serialization graph** ([`rsg::Rsg`],
//!   Definition 3 + Theorem 1), with four arc families: `I` (program
//!   order), `D` (depends-on), `F` (push-forward), `B` (pull-backward).
//!
//! This crate contains the model (§2), the graph test (§3), checkers for
//! every polynomial schedule class of the paper's Figure 5, constructors
//! for the prior-art specification styles it generalizes (Garcia-Molina
//! compatibility sets, Lynch multilevel atomicity), a small text DSL for
//! writing transactions and schedules the way the paper does
//! (`r1[x] w1[x] …`), and executable versions of the paper's Figures 1–4.
//!
//! ## Quick start
//!
//! ```
//! use relser_core::prelude::*;
//!
//! // The three transactions of the paper's Figure 1.
//! let txns = TxnSet::parse(&[
//!     "r1[x] w1[x] w1[z] r1[y]",
//!     "r2[y] w2[y] r2[x]",
//!     "w3[x] w3[y] w3[z]",
//! ]).unwrap();
//!
//! // Relative atomicity: `|` separates atomic units (the six
//! // Atomicity(T_i, T_j) rows of Figure 1).
//! let mut spec = AtomicitySpec::absolute(&txns);
//! spec.set_units_str(&txns, 0, 1, "r1[x] w1[x] | w1[z] r1[y]").unwrap();
//! spec.set_units_str(&txns, 0, 2, "r1[x] w1[x] | w1[z] | r1[y]").unwrap();
//! spec.set_units_str(&txns, 1, 0, "r2[y] | w2[y] r2[x]").unwrap();
//! spec.set_units_str(&txns, 1, 2, "r2[y] w2[y] | r2[x]").unwrap();
//! spec.set_units_str(&txns, 2, 0, "w3[x] w3[y] | w3[z]").unwrap();
//! spec.set_units_str(&txns, 2, 1, "w3[x] w3[y] | w3[z]").unwrap();
//!
//! // The paper's correct-but-non-serial schedule S_ra.
//! let s = txns.parse_schedule(
//!     "r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]",
//! ).unwrap();
//!
//! assert!(!s.is_serial());
//! assert!(classify(&txns, &s, &spec).relatively_atomic);
//! let rsg = Rsg::build(&txns, &s, &spec);
//! assert!(rsg.is_acyclic()); // S_ra is relatively serializable
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classes;
pub mod depends;
pub mod error;
pub mod explain;
pub mod expressibility;
pub mod format;
pub mod ids;
pub mod incremental;
pub mod infer;
pub mod op;
pub mod paper;
pub mod project;
pub mod rsg;
pub mod schedule;
pub mod sg;
pub mod shard;
pub mod spec;
pub mod spec_builders;
pub mod txn;
pub mod vclock;

/// One-stop imports for downstream crates, tests, and examples.
pub mod prelude {
    pub use crate::classes::{classify, ClassReport};
    pub use crate::depends::DependsOn;
    pub use crate::error::{Error, Result};
    pub use crate::ids::{ObjectId, OpId, TxnId};
    pub use crate::incremental::{AdmitError, CompactionPolicy, IncrementalRsg, RsgDelta};
    pub use crate::op::{AccessMode, Operation};
    pub use crate::project::Projection;
    pub use crate::rsg::{ArcKinds, Rsg};
    pub use crate::schedule::Schedule;
    pub use crate::sg::SerializationGraph;
    pub use crate::shard::{merge_program_order, ArcExchange, ShardMap};
    pub use crate::spec::AtomicitySpec;
    pub use crate::spec_builders::{compatibility_sets, multilevel, MultilevelSpec};
    pub use crate::txn::{Transaction, TxnSet};
    pub use crate::vclock::{self, CertifierStats, CycleWitness, VClockCertifier, Verdict};
}

pub use prelude::*;
