//! Linear-time vector-clock certifier for relative serializability.
//!
//! Theorem 1 decides relative serializability by acyclicity of the RSG
//! (Definition 3), and the offline [`Rsg`](crate::rsg::Rsg) builder pays for
//! it twice: the depends-on relation is a full transitive closure
//! (O(n²/w) bitset words) and the D-arc family alone is O(n²) arcs. In the
//! style of Mathur–Viswanathan ("Atomicity Checking in Linear Time using
//! Vector Clocks") and RegionTrack, this module carries the same
//! reachability information in **per-transaction vector clocks** and decides
//! the same predicate in a single forward pass, O(K) work per operation for
//! K transactions — the Biswas–Enea regime where checking is linear in
//! history length once the number of transactions is a parameter, not part
//! of the input growth.
//!
//! ## Clock layout
//!
//! For an executed operation `o`, define its *dependency clock* `D(o)` as a
//! vector with one entry per transaction: `D(o)[i]` is the number of leading
//! operations of `T_i` that `o` depends on (§2's depends-on relation), i.e.
//! one plus the largest program index `a` such that `o_{i,a}` depends-into
//! `o`, or `0` when no operation of `T_i` does. Per-transaction *maxima*
//! lose nothing because depends-on is downward closed along each program
//! order: if `o_{i,a}` reaches `o` then so does every earlier `o_{i,a'}`
//! (via the same-transaction direct dependency `o_{i,a'} → o_{i,a}`).
//!
//! `D(o)` is computable forward, without ever revisiting an earlier
//! operation, from three running summaries:
//!
//! * `txn_clock[t]` — `D(p) ⊔ {p}` for `p` the latest observed operation of
//!   `T_t` (covers program-order predecessors and their closures);
//! * `write_clock[x]` — `D(w) ⊔ {w}` for `w` the latest write of object `x`
//!   (covers **all** earlier writes and pre-`w` reads of `x`: each of them
//!   depends-into `w` through the per-object conflict chain);
//! * `read_clock[x]` — the join of `D(r) ⊔ {r}` over the reads of `x` since
//!   the latest write (only the next write of `x` depends on those).
//!
//! Then `D(o) = txn_clock[t] ⊔ write_clock[x] ⊔ (read_clock[x] if o writes)`
//! where `⊔` is the element-wise max, and the summaries are updated with
//! `D(o) ⊔ {o}` afterwards. Every step is O(K).
//!
//! ## Why one linear pass suffices
//!
//! The RSG itself is *not* forward-constructible op by op — an F-arc's
//! source (`PushForward`) may be an operation that has not executed yet.
//! But the full RSG is closure-equivalent to a sparse **clock skeleton**
//! with O(nK) arcs, all of them genuine RSG arcs:
//!
//! * the static I-chains `o_{t,j} → o_{t,j+1}` over *all* program
//!   operations (exactly the static skeleton `IncrementalRsg` holds);
//! * per executed `o = o_{t,j}` and per transaction `i ≠ t` with
//!   `D(o)[i] = a+1 > 0`, only the **maximal** dependency `o_{i,a}`
//!   contributes arcs: the F-arc `PushForward(o_{i,a}, T_t) → o` and the
//!   B-arc `o_{i,a} → PullBackward(o, T_i)`.
//!
//! Dropped arcs are recovered by the skeleton's closure: for a non-maximal
//! dependency `o_{i,e}` (`e < a`), its F-arc source
//! `PushForward(o_{i,e}, T_t)` ends at or before `PushForward(o_{i,a}, T_t)`
//! in `T_i`'s program order (`PushForward` is monotone in the operation
//! index), so the I-chain reaches the retained F-arc; its B-arc shares the
//! retained B-arc's target, and the I-chain from `o_{i,e}` to `o_{i,a}`
//! reaches the retained source. The D-arc `o_{i,a} → o` itself is implied by
//! the retained B-arc followed by the I-chain from `PullBackward(o, T_i)` to
//! `o`. Hence *skeleton ⊆ RSG ⊆ closure(skeleton)*: the two graphs have the
//! same transitive closure, so the skeleton is acyclic iff the RSG is —
//! and because every skeleton arc is a genuine RSG arc, any skeleton cycle
//! is verbatim an RSG cycle.
//!
//! ## Witness extraction
//!
//! On violation the certifier returns the skeleton cycle as a
//! [`CycleWitness`]: the operation sequence plus the arc kinds of each hop
//! (`I`, or `F`/`B` merged with `D` when the hop coincides with the direct
//! dependency arc). Since skeleton arcs are RSG arcs with those exact
//! kinds, the witness replays under [`Rsg::arc_between`]
//! (crate::rsg::Rsg::arc_between) — the negative-path tests assert this.
//!
//! Partial histories are supported the way `IncrementalRsg` supports them:
//! operations may be observed for only a prefix of each transaction, and
//! even with gaps (a shard observing its own objects only); the verdict
//! then matches the incremental engine's graph over the same feed.

use crate::error::{Error, Result};
use crate::ids::{OpId, TxnId};
use crate::rsg::ArcKinds;
use crate::schedule::Schedule;
use crate::spec::AtomicitySpec;
use crate::txn::TxnSet;
use relser_digraph::{cycle, DiGraph, NodeIdx};
use std::collections::HashMap;

/// A dependency clock: one entry per transaction, `clock[i]` = number of
/// leading operations of `T_i` in the summarized closure (0 = none).
type Clock = Vec<u32>;

/// Element-wise max join.
fn join(dst: &mut [u32], src: &[u32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        if s > *d {
            *d = s;
        }
    }
}

/// Size/cost accounting for one certification pass, reported with either
/// verdict. `cross_arcs` is the number of materialized skeleton arcs beyond
/// the static I-chains — bounded by `2 · ops · (width - 1)`, the linearity
/// claim the bench suite asserts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CertifierStats {
    /// Operations observed.
    pub ops: usize,
    /// Clock width = number of transactions in the universe.
    pub width: usize,
    /// Merged cross-transaction skeleton arcs (F/B, with coinciding D).
    pub cross_arcs: usize,
    /// Skeleton nodes (all static operations of the universe).
    pub nodes: usize,
    /// Skeleton edges including the static I-chains.
    pub edges: usize,
}

/// A concrete RSG cycle extracted from the clock skeleton: `ops[k]` reaches
/// `ops[k+1]` (cyclically) by an arc whose kinds include `kinds[k]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleWitness {
    /// The operations in cycle order.
    pub ops: Vec<OpId>,
    /// Arc kinds of each hop; `kinds[k]` labels `ops[k] → ops[k+1 mod len]`.
    pub kinds: Vec<ArcKinds>,
}

impl CycleWitness {
    /// Paper-style rendering, e.g.
    /// `r2[x] -[B]-> w1[x] -[I]-> w1[y] -[D,B]-> (r2[x])`.
    pub fn render(&self, txns: &TxnSet) -> String {
        let mut out = String::new();
        for (op, kinds) in self.ops.iter().zip(&self.kinds) {
            out.push_str(&txns.display_op(*op));
            out.push_str(&format!(" -[{kinds}]-> "));
        }
        out.push_str(&format!("({})", txns.display_op(self.ops[0])));
        out
    }
}

/// The certifier's answer for one history.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The history is relatively serializable (skeleton acyclic).
    RelativelySerializable(CertifierStats),
    /// The history is not relatively serializable; `witness` is a genuine
    /// RSG cycle.
    Violation {
        /// A concrete RSG cycle proving the violation.
        witness: CycleWitness,
        /// Pass accounting.
        stats: CertifierStats,
    },
}

impl Verdict {
    /// Mirrors [`Rsg::is_acyclic`](crate::rsg::Rsg::is_acyclic): `true` iff
    /// the history was accepted.
    pub fn is_acyclic(&self) -> bool {
        matches!(self, Verdict::RelativelySerializable(_))
    }

    /// Pass accounting, regardless of outcome.
    pub fn stats(&self) -> &CertifierStats {
        match self {
            Verdict::RelativelySerializable(s) => s,
            Verdict::Violation { stats, .. } => stats,
        }
    }

    /// The cycle witness when the history was rejected.
    pub fn witness(&self) -> Option<&CycleWitness> {
        match self {
            Verdict::RelativelySerializable(_) => None,
            Verdict::Violation { witness, .. } => Some(witness),
        }
    }
}

/// One-pass vector-clock certifier (see module docs for the algorithm).
///
/// Feed operations in execution order via [`observe`](Self::observe), then
/// [`seal`](Self::seal) for the verdict; [`certify`] wraps both for complete
/// schedules.
///
/// ```
/// use relser_core::prelude::*;
/// use relser_core::vclock;
/// let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
/// let spec = AtomicitySpec::absolute(&txns);
/// let lost_update = txns.parse_schedule("r1[x] r2[x] w1[x] w2[x]").unwrap();
/// let verdict = vclock::certify(&txns, &lost_update, &spec);
/// assert!(!verdict.is_acyclic());
/// let witness = verdict.witness().unwrap();
/// // The witness is a genuine RSG cycle.
/// let rsg = Rsg::build(&txns, &lost_update, &spec);
/// for (k, &from) in witness.ops.iter().enumerate() {
///     let to = witness.ops[(k + 1) % witness.ops.len()];
///     assert!(rsg.arc_between(from, to).unwrap().contains(witness.kinds[k]));
/// }
/// ```
pub struct VClockCertifier<'a> {
    txns: &'a TxnSet,
    spec: &'a AtomicitySpec,
    /// Global node id of `o_{t,0}` in the static skeleton.
    offsets: Vec<u32>,
    total_static: usize,
    /// Last observed program index per transaction (`None` = none yet);
    /// indices must strictly increase, gaps allowed.
    last_seen: Vec<Option<u32>>,
    txn_clock: Vec<Clock>,
    write_clock: Vec<Clock>,
    read_clock: Vec<Clock>,
    /// Cross-transaction skeleton arcs keyed by global ids, kinds merged.
    arcs: HashMap<(u32, u32), ArcKinds>,
    observed: usize,
    scratch: Clock,
}

impl<'a> VClockCertifier<'a> {
    /// A certifier over the universe `(txns, spec)` with empty clocks.
    pub fn new(txns: &'a TxnSet, spec: &'a AtomicitySpec) -> Self {
        let k = txns.len();
        debug_assert_eq!(k, spec.txn_count(), "spec must cover the universe");
        let mut offsets = Vec::with_capacity(k);
        let mut total = 0u32;
        for t in txns.txns() {
            offsets.push(total);
            total += t.len() as u32;
        }
        let objects = txns.objects().len();
        VClockCertifier {
            txns,
            spec,
            offsets,
            total_static: total as usize,
            last_seen: vec![None; k],
            txn_clock: vec![vec![0; k]; k],
            write_clock: vec![vec![0; k]; objects],
            read_clock: vec![vec![0; k]; objects],
            arcs: HashMap::new(),
            observed: 0,
            scratch: vec![0; k],
        }
    }

    fn gid(&self, op: OpId) -> u32 {
        self.offsets[op.txn.index()] + op.index
    }

    fn add_arc(&mut self, from: u32, to: u32, kinds: ArcKinds) {
        debug_assert_ne!(from, to, "skeleton arcs never self-loop");
        *self.arcs.entry((from, to)).or_insert_with(ArcKinds::empty) |= kinds;
    }

    /// Observes the next executed operation. Errors if `op` does not exist
    /// in the universe or does not extend `op.txn`'s observed program order
    /// (indices must strictly increase; gaps are allowed, matching
    /// `IncrementalRsg`'s gap admission on sharded projections).
    pub fn observe(&mut self, op: OpId) -> Result<()> {
        let operation = self.txns.op(op)?;
        let t = op.txn.index();
        if let Some(last) = self.last_seen[t] {
            if op.index <= last {
                return Err(Error::ProgramOrderViolated { txn: op.txn, op });
            }
        }

        // D(op) = txn_clock[t] ⊔ write_clock[x] ⊔ (read_clock[x] if write).
        let x = operation.object.index();
        self.scratch.copy_from_slice(&self.txn_clock[t]);
        join(&mut self.scratch, &self.write_clock[x]);
        if operation.is_write() {
            join(&mut self.scratch, &self.read_clock[x]);
        }

        // Skeleton arcs from the per-transaction maximal dependencies.
        let to = self.gid(op);
        for i in 0..self.scratch.len() {
            if i == t || self.scratch[i] == 0 {
                continue;
            }
            let src = OpId::new(TxnId(i as u32), self.scratch[i] - 1);
            // F-arc: PushForward(src, T_t) → op; it is also the D-arc when
            // the unit end *is* the maximal dependency itself.
            let pf = self.spec.push_forward(src, op.txn);
            let mut kinds = ArcKinds::F;
            if pf.index == src.index {
                kinds |= ArcKinds::D;
            }
            let from = self.gid(pf);
            self.add_arc(from, to, kinds);
            // B-arc: src → PullBackward(op, T_i); also the D-arc when the
            // unit of `op` starts at `op`.
            let pb = self.spec.pull_backward(op, src.txn);
            let mut kinds = ArcKinds::B;
            if pb.index == op.index {
                kinds |= ArcKinds::D;
            }
            let (from, to_b) = (self.gid(src), self.gid(pb));
            self.add_arc(from, to_b, kinds);
        }

        // Fold the operation itself in and refresh the summaries.
        self.scratch[t] = self.scratch[t].max(op.index + 1);
        if operation.is_write() {
            self.write_clock[x].copy_from_slice(&self.scratch);
            self.read_clock[x].fill(0);
        } else {
            join(&mut self.read_clock[x], &self.scratch);
        }
        self.txn_clock[t].copy_from_slice(&self.scratch);
        self.last_seen[t] = Some(op.index);
        self.observed += 1;
        Ok(())
    }

    /// Number of operations observed so far.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Builds the clock skeleton (static I-chains + collected cross arcs)
    /// and decides Theorem 1's criterion over the observed history.
    pub fn seal(self) -> Verdict {
        let mut g: DiGraph<OpId, ArcKinds> =
            DiGraph::with_capacity(self.total_static, self.total_static + self.arcs.len());
        for t in self.txns.txns() {
            for j in 0..t.len() as u32 {
                g.add_node(OpId::new(t.id(), j));
            }
        }
        for t in self.txns.txns() {
            let base = self.offsets[t.id().index()];
            for j in 1..t.len() as u32 {
                g.add_edge(NodeIdx(base + j - 1), NodeIdx(base + j), ArcKinds::I);
            }
        }
        // Deterministic edge order for reproducible witnesses.
        let mut sorted: Vec<((u32, u32), ArcKinds)> = self.arcs.into_iter().collect();
        sorted.sort_by_key(|&(k, _)| k);
        for ((a, b), kinds) in sorted {
            g.add_edge(NodeIdx(a), NodeIdx(b), kinds);
        }

        let stats = CertifierStats {
            ops: self.observed,
            width: self.txn_clock.len(),
            cross_arcs: g.edge_count() - (self.total_static - self.txns.len()),
            nodes: g.node_count(),
            edges: g.edge_count(),
        };
        match cycle::find_cycle(&g) {
            None => Verdict::RelativelySerializable(stats),
            Some(c) => {
                let ops: Vec<OpId> = c.iter().map(|&v| *g.node_weight(v)).collect();
                let kinds: Vec<ArcKinds> = (0..c.len())
                    .map(|k| {
                        let e = g
                            .find_edge(c[k], c[(k + 1) % c.len()])
                            .expect("witness hops are skeleton edges");
                        *g.edge_weight(e)
                    })
                    .collect();
                Verdict::Violation {
                    witness: CycleWitness { ops, kinds },
                    stats,
                }
            }
        }
    }
}

/// Certifies a complete schedule in one linear pass — the drop-in
/// replacement for `Rsg::build(..).is_acyclic()`.
pub fn certify(txns: &TxnSet, schedule: &Schedule, spec: &AtomicitySpec) -> Verdict {
    let mut c = VClockCertifier::new(txns, spec);
    for &op in schedule.ops() {
        c.observe(op)
            .expect("a validated Schedule satisfies program order");
    }
    c.seal()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::{AdmitError, IncrementalRsg};
    use crate::paper::{Figure1, Figure2, Figure3, Figure4};
    use crate::rsg::Rsg;

    /// Witness hops must be genuine RSG arcs with the reported kinds and
    /// close a cycle.
    fn assert_witness_replays(txns: &TxnSet, s: &Schedule, spec: &AtomicitySpec, w: &CycleWitness) {
        assert!(w.ops.len() >= 2, "RSG cycles have no self-loops");
        assert_eq!(w.ops.len(), w.kinds.len());
        let rsg = Rsg::build(txns, s, spec);
        for (k, &from) in w.ops.iter().enumerate() {
            let to = w.ops[(k + 1) % w.ops.len()];
            let kinds = rsg
                .arc_between(from, to)
                .unwrap_or_else(|| panic!("witness hop {from:?} -> {to:?} missing from RSG"));
            assert!(
                kinds.contains(w.kinds[k]),
                "hop {from:?} -> {to:?}: RSG has {kinds}, witness claims {}",
                w.kinds[k]
            );
        }
    }

    /// Certify and cross-check the verdict against the offline oracle.
    fn agree(txns: &TxnSet, s: &Schedule, spec: &AtomicitySpec) -> bool {
        let oracle = Rsg::build(txns, s, spec).is_acyclic();
        let verdict = certify(txns, s, spec);
        assert_eq!(
            verdict.is_acyclic(),
            oracle,
            "vclock disagrees with Rsg on {}",
            s.display(txns)
        );
        if let Some(w) = verdict.witness() {
            assert_witness_replays(txns, s, spec, w);
        }
        oracle
    }

    #[test]
    fn figure1_schedules_match_the_paper() {
        let fig = Figure1::new();
        assert!(agree(&fig.txns, &fig.s_ra(), &fig.spec));
        assert!(agree(&fig.txns, &fig.s_rs(), &fig.spec));
        assert!(agree(&fig.txns, &fig.s_2(), &fig.spec));
    }

    #[test]
    fn figure1_non_serializable_schedule_rejected_with_replayable_witness() {
        // The B-arc ablation witness from rsg.rs: not relatively
        // serializable under the full Definition 3.
        let fig = Figure1::new();
        let s = fig
            .txns
            .parse_schedule("r2[y] w2[y] w3[x] r1[x] w1[x] w1[z] r2[x] w3[y] r1[y] w3[z]")
            .unwrap();
        assert!(!agree(&fig.txns, &s, &fig.spec));
    }

    #[test]
    fn figure2_transitive_dependency_is_carried_by_the_clocks() {
        // r1[z] depends on w2[y] only through T3, so the clocks must
        // carry the transitive closure, not just direct conflicts. S_1
        // is not relatively *serial*, yet its RSG is acyclic — both
        // backends accept, and they must accept for the same reason.
        let fig = Figure2::new();
        assert!(agree(&fig.txns, &fig.s_1(), &fig.spec));
    }

    #[test]
    fn figure3_and_figure4_verdicts_match_oracle() {
        let fig3 = Figure3::new();
        assert!(agree(&fig3.txns, &fig3.s_2(), &fig3.spec));
        let fig4 = Figure4::new();
        assert!(agree(&fig4.txns, &fig4.s(), &fig4.spec));
    }

    #[test]
    fn absolute_spec_reduces_to_conflict_serializability() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let bad = txns.parse_schedule("r1[x] r2[x] w1[x] w2[x]").unwrap();
        assert!(!agree(&txns, &bad, &spec));
        let good = txns.parse_schedule("r1[x] w1[x] r2[x] w2[x]").unwrap();
        assert!(agree(&txns, &good, &spec));
    }

    #[test]
    fn free_spec_accepts_everything() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let spec = AtomicitySpec::free(&txns);
        let s = txns.parse_schedule("r1[x] r2[x] w1[x] w2[x]").unwrap();
        assert!(agree(&txns, &s, &spec));
    }

    /// Exhaustive agreement with the offline oracle over every interleaving
    /// of a universe, under several specs.
    fn exhaustive_agreement(specs: &[AtomicitySpec], txns: &TxnSet) {
        fn rec(
            txns: &TxnSet,
            specs: &[AtomicitySpec],
            next: &mut Vec<u32>,
            prefix: &mut Vec<OpId>,
            count: &mut usize,
        ) {
            if prefix.len() == txns.total_ops() {
                let s = Schedule::new(txns, prefix.clone()).unwrap();
                for spec in specs {
                    agree(txns, &s, spec);
                }
                *count += 1;
                return;
            }
            for t in txns.txn_ids() {
                if next[t.index()] < txns.txn(t).len() as u32 {
                    let op = OpId::new(t, next[t.index()]);
                    next[t.index()] += 1;
                    prefix.push(op);
                    rec(txns, specs, next, prefix, count);
                    prefix.pop();
                    next[t.index()] -= 1;
                }
            }
        }
        let mut next = vec![0u32; txns.len()];
        let mut count = 0;
        rec(txns, specs, &mut next, &mut Vec::new(), &mut count);
        assert!(count > 1, "enumeration must cover multiple interleavings");
    }

    #[test]
    fn exhaustive_small_universe_all_specs() {
        let txns = TxnSet::parse(&["r1[x] w1[x] w1[y]", "w2[y] r2[x]", "w3[x]"]).unwrap();
        let mut split = AtomicitySpec::absolute(&txns);
        split
            .set_units_str(&txns, 0, 1, "r1[x] w1[x] | w1[y]")
            .unwrap();
        split.set_units_str(&txns, 1, 0, "w2[y] | r2[x]").unwrap();
        split
            .set_units_str(&txns, 0, 2, "r1[x] | w1[x] w1[y]")
            .unwrap();
        let specs = [
            AtomicitySpec::absolute(&txns),
            AtomicitySpec::free(&txns),
            split,
        ];
        exhaustive_agreement(&specs, &txns);
    }

    #[test]
    fn exhaustive_figure2_universe() {
        let fig = Figure2::new();
        exhaustive_agreement(std::slice::from_ref(&fig.spec), &fig.txns);
    }

    /// Streaming prefixes agree with the incremental engine: after any
    /// admissible feed (including rejections), certifier and engine return
    /// the same accept/reject answer for the next operation.
    #[test]
    fn prefix_verdicts_match_incremental_engine() {
        let fig = Figure1::new();
        let feeds = [
            "r2[y] w2[y] w3[x] r1[x] w1[x] w1[z] r2[x] w3[y] r1[y] w3[z]",
            "r1[x] r2[y] w2[y] w1[x] w3[x] r2[x] w1[z] w3[y] r1[y] w3[z]",
            "w3[x] w3[y] r2[y] w2[y] r1[x] w1[x] r2[x] w3[z] w1[z] r1[y]",
        ];
        for feed in feeds {
            let s = fig.txns.parse_schedule(feed).unwrap();
            let mut engine = IncrementalRsg::new(&fig.txns, &fig.spec);
            let mut admitted: Vec<OpId> = Vec::new();
            for &op in s.ops() {
                let engine_ok = match engine.try_admit(op) {
                    Ok(_) => true,
                    Err(AdmitError::Cycle(_)) => false,
                    Err(AdmitError::Retired(_)) => unreachable!("nothing retires here"),
                };
                // Replay the same feed (prefix + op) through a fresh
                // certifier.
                let mut c = VClockCertifier::new(&fig.txns, &fig.spec);
                for &p in &admitted {
                    c.observe(p).unwrap();
                }
                c.observe(op).unwrap();
                assert_eq!(
                    c.seal().is_acyclic(),
                    engine_ok,
                    "prefix {admitted:?} + {op:?} in {feed}"
                );
                if engine_ok {
                    admitted.push(op);
                }
            }
        }
    }

    /// Gap feeds (a shard's projection of the history) agree with the
    /// engine's gap admission.
    #[test]
    fn gap_feeds_match_incremental_engine() {
        let fig = Figure1::new();
        let s = fig.s_ra();
        // Keep only operations on x and z — T1 sees indices 0,1,2 (gap
        // before r1[y] is fine, it is simply never observed), T2 sees only
        // index 2 (gap at the start), T3 sees 0 and 2 (internal gap).
        let keep: Vec<OpId> = s
            .ops()
            .iter()
            .copied()
            .filter(|&op| {
                let obj = fig.txns.op(op).unwrap().object;
                let name = fig.txns.objects().name(obj);
                name == "x" || name == "z"
            })
            .collect();
        let mut engine = IncrementalRsg::new(&fig.txns, &fig.spec);
        let mut c = VClockCertifier::new(&fig.txns, &fig.spec);
        for &op in &keep {
            engine.try_admit(op).expect("S_ra projection is admissible");
            c.observe(op).unwrap();
        }
        assert!(c.seal().is_acyclic());

        // Out-of-order within a transaction is rejected even across gaps.
        let mut c = VClockCertifier::new(&fig.txns, &fig.spec);
        c.observe(OpId::new(TxnId(0), 2)).unwrap();
        let err = c.observe(OpId::new(TxnId(0), 0)).unwrap_err();
        assert!(matches!(err, Error::ProgramOrderViolated { .. }));
        // Re-observing the same operation is also a program-order error.
        let mut c = VClockCertifier::new(&fig.txns, &fig.spec);
        c.observe(OpId::new(TxnId(0), 0)).unwrap();
        assert!(c.observe(OpId::new(TxnId(0), 0)).is_err());
    }

    #[test]
    fn unknown_operations_are_rejected() {
        let txns = TxnSet::parse(&["r1[x]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let mut c = VClockCertifier::new(&txns, &spec);
        assert!(c.observe(OpId::new(TxnId(5), 0)).is_err());
        assert!(c.observe(OpId::new(TxnId(0), 9)).is_err());
        assert_eq!(c.observed(), 0);
    }

    #[test]
    fn stats_are_linear_in_history_length() {
        // cross_arcs ≤ 2 · ops · (width - 1): the linearity invariant the
        // bench suite measures in wall-clock terms.
        let fig = Figure1::new();
        let s = fig.s_ra();
        let verdict = certify(&fig.txns, &s, &fig.spec);
        let stats = verdict.stats();
        assert_eq!(stats.ops, 10);
        assert_eq!(stats.width, 3);
        assert_eq!(stats.nodes, 10);
        assert!(stats.cross_arcs <= 2 * stats.ops * (stats.width - 1));
        assert_eq!(stats.edges, stats.cross_arcs + 7);
    }

    #[test]
    fn witness_renders_in_paper_notation() {
        let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]"]).unwrap();
        let spec = AtomicitySpec::absolute(&txns);
        let bad = txns.parse_schedule("r1[x] r2[x] w1[x] w2[x]").unwrap();
        let verdict = certify(&txns, &bad, &spec);
        let rendered = verdict.witness().unwrap().render(&txns);
        assert!(rendered.contains("-["), "{rendered}");
        assert!(rendered.contains("]->"), "{rendered}");
        assert!(rendered.starts_with('r') || rendered.starts_with('w'));
    }

    #[test]
    fn empty_history_is_accepted() {
        let fig = Figure1::new();
        let c = VClockCertifier::new(&fig.txns, &fig.spec);
        let verdict = c.seal();
        assert!(verdict.is_acyclic());
        assert_eq!(verdict.stats().ops, 0);
    }
}
