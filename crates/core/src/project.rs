//! Universe projection: restrict a `(TxnSet, AtomicitySpec)` pair to a
//! transaction subset (optionally with truncated program suffixes) and
//! map operation ids across the restriction.
//!
//! Three consumers need this:
//!
//! * the model checker's oracle suite (`relser-check`), to validate the
//!   *committed* transactions of a partial execution (crashed or
//!   given-up runs) as a complete schedule over the committed
//!   sub-universe;
//! * the counterexample shrinker, which minimizes a failing universe by
//!   deleting whole transactions and truncating program suffixes;
//! * the server's crash-recovery manager (`relser-server`), to
//!   re-certify the committed prefix recovered from the write-ahead log
//!   against the Theorem 1 RSG oracle.

use crate::error::Result;
use crate::ids::{OpId, TxnId};
use crate::schedule::Schedule;
use crate::spec::AtomicitySpec;
use crate::txn::TxnSet;

/// A sub-universe of an original `(TxnSet, AtomicitySpec)` pair, with the
/// id mapping needed to carry operations across.
pub struct Projection {
    /// The projected transaction set (dense new ids).
    pub txns: TxnSet,
    /// The projected atomicity specification: original breakpoints
    /// restricted to surviving pairs and clamped to truncated lengths.
    pub spec: AtomicitySpec,
    /// `kept[new]` = original id of projected transaction `new`.
    kept: Vec<TxnId>,
}

impl Projection {
    /// Projects onto `keep` (original ids, any order — the order becomes
    /// the new id order), truncating transaction `keep[k]` to its first
    /// `lens[k]` operations. Every length must be ≥ 1 and ≤ the original.
    pub fn new(
        txns: &TxnSet,
        spec: &AtomicitySpec,
        keep: &[TxnId],
        lens: &[u32],
    ) -> Result<Projection> {
        assert_eq!(keep.len(), lens.len());
        let mut sub = TxnSet::new();
        for (&t, &len) in keep.iter().zip(lens) {
            let txn = txns.txn(t);
            assert!(len >= 1 && len <= txn.len() as u32, "bad truncation");
            let pairs: Vec<_> = txn.ops()[..len as usize]
                .iter()
                .map(|op| (op.mode, txns.objects().name(op.object)))
                .collect();
            sub.add(&pairs)?;
        }
        let mut sub_spec = AtomicitySpec::absolute(&sub);
        for (new_i, &old_i) in keep.iter().enumerate() {
            for (new_j, &old_j) in keep.iter().enumerate() {
                if new_i == new_j {
                    continue;
                }
                // Original unit structure of T_i as seen by T_j, with
                // breakpoints beyond the truncated length dropped.
                let bps: Vec<u32> = spec
                    .breakpoints(old_i, old_j)
                    .iter()
                    .copied()
                    .filter(|&b| b < lens[new_i])
                    .collect();
                sub_spec.set_breakpoints(TxnId(new_i as u32), TxnId(new_j as u32), &bps)?;
            }
        }
        Ok(Projection {
            txns: sub,
            spec: sub_spec,
            kept: keep.to_vec(),
        })
    }

    /// Projects onto `keep` with full (untruncated) program lengths.
    pub fn subset(txns: &TxnSet, spec: &AtomicitySpec, keep: &[TxnId]) -> Result<Projection> {
        let lens: Vec<u32> = keep.iter().map(|&t| txns.txn(t).len() as u32).collect();
        Projection::new(txns, spec, keep, &lens)
    }

    /// Original ids of the projected transactions, in new-id order.
    pub fn kept(&self) -> &[TxnId] {
        &self.kept
    }

    /// Maps an original-universe operation into the projection. `None`
    /// if its transaction was dropped or the operation truncated away.
    pub fn from_original(&self, op: OpId) -> Option<OpId> {
        let new = self.kept.iter().position(|&t| t == op.txn)?;
        let new_txn = TxnId(new as u32);
        (op.index < self.txns.txn(new_txn).len() as u32).then(|| OpId::new(new_txn, op.index))
    }

    /// Maps a projected operation back to the original universe.
    pub fn to_original(&self, op: OpId) -> OpId {
        OpId::new(self.kept[op.txn.index()], op.index)
    }

    /// Interprets `log` (original-universe ops, e.g. a committed history)
    /// as a complete schedule over the projection. Errors if the mapped
    /// ops are not a valid permutation in program order — which for a
    /// committed history would itself be a service bug worth reporting.
    pub fn schedule(&self, log: &[OpId]) -> Result<Schedule> {
        let order: Vec<OpId> = log
            .iter()
            .filter_map(|&op| self.from_original(op))
            .collect();
        Schedule::new(&self.txns, order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::Figure1;

    #[test]
    fn subset_keeps_spec_rows() {
        let fig = Figure1::new();
        // Keep T1 and T3 (drop T2).
        let p = Projection::subset(&fig.txns, &fig.spec, &[TxnId(0), TxnId(2)]).unwrap();
        assert_eq!(p.txns.len(), 2);
        assert_eq!(p.txns.total_ops(), 7);
        // Atomicity(T1, T3) had breakpoints {2, 3}; T3 is new id 1.
        assert_eq!(p.spec.breakpoints(TxnId(0), TxnId(1)), &[2, 3]);
        // Atomicity(T3, T1) had breakpoint {2}.
        assert_eq!(p.spec.breakpoints(TxnId(1), TxnId(0)), &[2]);
    }

    #[test]
    fn truncation_clamps_breakpoints() {
        let fig = Figure1::new();
        // T1 truncated to its first 2 ops: breakpoints {2,3} wrt T3 are
        // out of range (must be < len) and get dropped.
        let p = Projection::new(&fig.txns, &fig.spec, &[TxnId(0), TxnId(2)], &[2, 3]).unwrap();
        assert_eq!(p.txns.txn(TxnId(0)).len(), 2);
        assert_eq!(p.spec.breakpoints(TxnId(0), TxnId(1)), &[] as &[u32]);
    }

    #[test]
    fn op_mapping_roundtrips() {
        let fig = Figure1::new();
        let p = Projection::subset(&fig.txns, &fig.spec, &[TxnId(2), TxnId(0)]).unwrap();
        let orig = OpId::new(TxnId(2), 1);
        let new = p.from_original(orig).unwrap();
        assert_eq!(new, OpId::new(TxnId(0), 1));
        assert_eq!(p.to_original(new), orig);
        assert_eq!(p.from_original(OpId::new(TxnId(1), 0)), None, "T2 dropped");
    }

    #[test]
    fn committed_log_projects_to_schedule() {
        let fig = Figure1::new();
        let p = Projection::subset(&fig.txns, &fig.spec, &[TxnId(0)]).unwrap();
        // A full-universe history filtered down to T1's ops.
        let s = p.schedule(fig.s_ra().ops()).unwrap();
        assert_eq!(s.len(), 4);
        assert!(s.is_serial());
    }
}
