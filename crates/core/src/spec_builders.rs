//! Constructors for the prior-art specification styles the paper
//! generalizes (§1, §4).
//!
//! * **Garcia-Molina compatibility sets** \[Gar83\]: transactions are grouped
//!   into sets; transactions in the same set "may be arbitrarily
//!   interleaved, but transactions in different sets observe each other as
//!   single atomic units". [`compatibility_sets`] expresses that as a
//!   relative atomicity specification (free within a group, absolute across
//!   groups) — demonstrating the paper's claim that \[Gar83\] is a special
//!   case of relative atomicity.
//! * **Lynch multilevel atomicity** \[Lyn83\]: transactions sit at the
//!   leaves of a hierarchy; each transaction carries a *nested* family of
//!   breakpoint sets, one per tree depth, finer for more closely related
//!   transactions. `Atomicity(T_i, T_j)` is `T_i`'s breakpoint set at the
//!   depth of the least common ancestor of `T_i` and `T_j`.
//!   [`MultilevelSpec`] enforces the nestedness constraints that make
//!   Lynch's model *strictly less expressive* than relative atomicity —
//!   which the tests demonstrate with a concrete inexpressible spec.

use crate::error::{Error, Result};
use crate::ids::TxnId;
use crate::spec::AtomicitySpec;
use crate::txn::TxnSet;

/// Builds the relative atomicity specification corresponding to
/// Garcia-Molina compatibility sets.
///
/// ```
/// use relser_core::prelude::*;
/// let txns = TxnSet::parse(&["r1[x] w1[x]", "r2[x] w2[x]", "w3[x]"]).unwrap();
/// // T1 and T2 share a family; T3 is foreign.
/// let spec = compatibility_sets(&txns, &[0, 0, 1]).unwrap();
/// assert_eq!(spec.breakpoints(TxnId(0), TxnId(1)), &[1]); // free in-family
/// assert!(spec.breakpoints(TxnId(0), TxnId(2)).is_empty()); // atomic outside
/// ```
///
/// `group_of[t]` is the compatibility-set index of transaction `t`.
/// Transactions sharing a group get fully-interleavable (per-operation)
/// units relative to each other; transactions in different groups are
/// mutually absolute.
pub fn compatibility_sets(txns: &TxnSet, group_of: &[usize]) -> Result<AtomicitySpec> {
    if group_of.len() != txns.len() {
        return Err(Error::BadSpec(format!(
            "group_of has {} entries for {} transactions",
            group_of.len(),
            txns.len()
        )));
    }
    let mut spec = AtomicitySpec::absolute(txns);
    for i in txns.txn_ids() {
        for j in txns.txn_ids() {
            if i != j && group_of[i.index()] == group_of[j.index()] {
                let all: Vec<u32> = (1..txns.txn(i).len() as u32).collect();
                spec.set_breakpoints(i, j, &all)?;
            }
        }
    }
    Ok(spec)
}

/// A node in a Lynch-style hierarchy: leaves are transactions (by 0-based
/// index), internal nodes group subtrees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Hierarchy {
    /// A leaf holding transaction index `t`.
    Txn(usize),
    /// An internal grouping node.
    Group(Vec<Hierarchy>),
}

impl Hierarchy {
    /// Depth of each transaction leaf and a path id per transaction, used
    /// to compute LCA depths. Returns `paths[t]` = sequence of child
    /// indices from the root to the leaf of transaction `t`.
    fn paths(&self, n: usize) -> Result<Vec<Vec<usize>>> {
        let mut paths: Vec<Option<Vec<usize>>> = vec![None; n];
        let mut stack: Vec<(&Hierarchy, Vec<usize>)> = vec![(self, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            match node {
                Hierarchy::Txn(t) => {
                    if *t >= n {
                        return Err(Error::UnknownTxn(TxnId(*t as u32)));
                    }
                    if paths[*t].is_some() {
                        return Err(Error::BadSpec(format!(
                            "transaction T{} appears twice in the hierarchy",
                            t + 1
                        )));
                    }
                    paths[*t] = Some(path);
                }
                Hierarchy::Group(children) => {
                    for (ci, child) in children.iter().enumerate() {
                        let mut p = path.clone();
                        p.push(ci);
                        stack.push((child, p));
                    }
                }
            }
        }
        paths
            .into_iter()
            .enumerate()
            .map(|(t, p)| {
                p.ok_or_else(|| {
                    Error::BadSpec(format!("transaction T{} missing from the hierarchy", t + 1))
                })
            })
            .collect()
    }
}

/// A validated multilevel-atomicity specification in the style of
/// \[Lyn83\].
#[derive(Clone, Debug)]
pub struct MultilevelSpec {
    /// `levels[t][d]` = breakpoints of transaction `t` exposed to
    /// transactions whose LCA with `t` is at depth `d`. Sets must be
    /// *nested*: `levels[t][d] ⊆ levels[t][d+1]` (deeper relationship ⇒
    /// finer interleaving). Pairs deeper than the provided levels use the
    /// deepest set.
    levels: Vec<Vec<Vec<u32>>>,
    /// Root-to-leaf child-index paths per transaction.
    paths: Vec<Vec<usize>>,
}

impl MultilevelSpec {
    /// Builds and validates a multilevel specification.
    ///
    /// * `hierarchy` must mention each transaction exactly once.
    /// * `levels[t]` lists breakpoint sets from depth 0 (most distant
    ///   relatives) inward; each must refine the previous (superset), each
    ///   value in `1..len(T_t)`. An empty `levels[t]` means `T_t` is always
    ///   a single unit.
    pub fn new(txns: &TxnSet, hierarchy: &Hierarchy, levels: Vec<Vec<Vec<u32>>>) -> Result<Self> {
        if levels.len() != txns.len() {
            return Err(Error::BadSpec(format!(
                "levels has {} entries for {} transactions",
                levels.len(),
                txns.len()
            )));
        }
        let paths = hierarchy.paths(txns.len())?;
        for (t, lvls) in levels.iter().enumerate() {
            let len = txns.txn(TxnId(t as u32)).len() as u32;
            let mut prev: &[u32] = &[];
            for (d, set) in lvls.iter().enumerate() {
                for w in set.windows(2) {
                    if w[0] >= w[1] {
                        return Err(Error::BadSpec(format!(
                            "level {d} of T{} is not strictly increasing",
                            t + 1
                        )));
                    }
                }
                if set.iter().any(|&b| b == 0 || b >= len) {
                    return Err(Error::BadSpec(format!(
                        "level {d} of T{} has out-of-range breakpoints",
                        t + 1
                    )));
                }
                if !prev.iter().all(|b| set.contains(b)) {
                    return Err(Error::BadSpec(format!(
                        "level {d} of T{} does not refine level {}: multilevel \
                         atomicity requires nested breakpoint sets",
                        t + 1,
                        d.wrapping_sub(1)
                    )));
                }
                prev = set;
            }
        }
        Ok(MultilevelSpec { levels, paths })
    }

    /// Depth of the least common ancestor of `a` and `b` (root = depth 0).
    pub fn lca_depth(&self, a: TxnId, b: TxnId) -> usize {
        self.paths[a.index()]
            .iter()
            .zip(&self.paths[b.index()])
            .take_while(|(x, y)| x == y)
            .count()
    }

    /// Lowers the multilevel specification into a general
    /// [`AtomicitySpec`], demonstrating that \[Lyn83\] is a special case of
    /// relative atomicity.
    pub fn to_spec(&self, txns: &TxnSet) -> Result<AtomicitySpec> {
        let mut spec = AtomicitySpec::absolute(txns);
        for i in txns.txn_ids() {
            for j in txns.txn_ids() {
                if i == j {
                    continue;
                }
                let depth = self.lca_depth(i, j);
                let lvls = &self.levels[i.index()];
                if lvls.is_empty() {
                    continue; // always a single unit
                }
                let set = &lvls[depth.min(lvls.len() - 1)];
                spec.set_breakpoints(i, j, set)?;
            }
        }
        Ok(spec)
    }
}

/// Shorthand: builds the [`AtomicitySpec`] for a hierarchy + levels in one
/// call.
pub fn multilevel(
    txns: &TxnSet,
    hierarchy: &Hierarchy,
    levels: Vec<Vec<Vec<u32>>>,
) -> Result<AtomicitySpec> {
    MultilevelSpec::new(txns, hierarchy, levels)?.to_spec(txns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_txns() -> TxnSet {
        TxnSet::parse(&[
            "r1[a] w1[a] r1[b] w1[b]",
            "r2[a] w2[a]",
            "r3[c] w3[c]",
            "r4[c] w4[c] r4[d]",
        ])
        .unwrap()
    }

    #[test]
    fn compatibility_sets_free_within_absolute_across() {
        let t = four_txns();
        // Groups: {T1, T2}, {T3, T4}.
        let spec = compatibility_sets(&t, &[0, 0, 1, 1]).unwrap();
        // Within a group: every op its own unit.
        assert_eq!(spec.breakpoints(TxnId(0), TxnId(1)), &[1, 2, 3]);
        assert_eq!(spec.breakpoints(TxnId(3), TxnId(2)), &[1, 2]);
        // Across groups: single unit.
        assert_eq!(spec.breakpoints(TxnId(0), TxnId(2)), &[] as &[u32]);
        assert_eq!(spec.breakpoints(TxnId(3), TxnId(1)), &[] as &[u32]);
    }

    #[test]
    fn compatibility_sets_validates_length() {
        let t = four_txns();
        assert!(compatibility_sets(&t, &[0, 0]).is_err());
    }

    #[test]
    fn singleton_groups_reduce_to_absolute() {
        let t = four_txns();
        let spec = compatibility_sets(&t, &[0, 1, 2, 3]).unwrap();
        assert!(spec.is_absolute());
    }

    #[test]
    fn hierarchy_lca_depths() {
        let t = four_txns();
        // ((T1 T2) (T3 T4))
        let h = Hierarchy::Group(vec![
            Hierarchy::Group(vec![Hierarchy::Txn(0), Hierarchy::Txn(1)]),
            Hierarchy::Group(vec![Hierarchy::Txn(2), Hierarchy::Txn(3)]),
        ]);
        let ml = MultilevelSpec::new(&t, &h, vec![vec![]; 4]).unwrap();
        assert_eq!(ml.lca_depth(TxnId(0), TxnId(1)), 1);
        assert_eq!(ml.lca_depth(TxnId(0), TxnId(2)), 0);
        assert_eq!(ml.lca_depth(TxnId(2), TxnId(3)), 1);
    }

    #[test]
    fn multilevel_lowers_by_lca_depth() {
        let t = four_txns();
        let h = Hierarchy::Group(vec![
            Hierarchy::Group(vec![Hierarchy::Txn(0), Hierarchy::Txn(1)]),
            Hierarchy::Group(vec![Hierarchy::Txn(2), Hierarchy::Txn(3)]),
        ]);
        // T1: one unit toward strangers (depth 0), units {2} toward its
        // sibling group (depth 1).
        let levels = vec![
            vec![vec![], vec![2]], // T1
            vec![vec![], vec![1]], // T2
            vec![],                // T3: always atomic
            vec![vec![1]],         // T4: breakpoint 1 toward everyone
        ];
        let spec = multilevel(&t, &h, levels).unwrap();
        assert_eq!(spec.breakpoints(TxnId(0), TxnId(1)), &[2]); // sibling
        assert_eq!(spec.breakpoints(TxnId(0), TxnId(2)), &[] as &[u32]); // stranger
        assert_eq!(spec.breakpoints(TxnId(1), TxnId(0)), &[1]);
        assert_eq!(spec.breakpoints(TxnId(2), TxnId(3)), &[] as &[u32]);
        assert_eq!(spec.breakpoints(TxnId(3), TxnId(0)), &[1]);
        assert_eq!(spec.breakpoints(TxnId(3), TxnId(2)), &[1]);
    }

    #[test]
    fn multilevel_requires_nested_levels() {
        let t = four_txns();
        let h = Hierarchy::Group(vec![
            Hierarchy::Group(vec![Hierarchy::Txn(0), Hierarchy::Txn(1)]),
            Hierarchy::Group(vec![Hierarchy::Txn(2), Hierarchy::Txn(3)]),
        ]);
        // Level 1 {3} does not contain level 0 {2}: not nested → rejected.
        let levels = vec![vec![vec![2], vec![3]], vec![], vec![], vec![]];
        let err = MultilevelSpec::new(&t, &h, levels).unwrap_err();
        assert!(matches!(err, Error::BadSpec(_)), "{err}");
    }

    #[test]
    fn hierarchy_must_cover_each_txn_exactly_once() {
        let t = four_txns();
        let missing = Hierarchy::Group(vec![Hierarchy::Txn(0), Hierarchy::Txn(1)]);
        assert!(MultilevelSpec::new(&t, &missing, vec![vec![]; 4]).is_err());
        let duplicated = Hierarchy::Group(vec![
            Hierarchy::Txn(0),
            Hierarchy::Txn(0),
            Hierarchy::Txn(1),
            Hierarchy::Txn(2),
            Hierarchy::Txn(3),
        ]);
        assert!(MultilevelSpec::new(&t, &duplicated, vec![vec![]; 4]).is_err());
    }

    /// §4 of the paper: "It is easy to construct examples that can be
    /// specified using relative atomicity but cannot be specified using
    /// multilevel atomicity." Here is one: under any single hierarchy,
    /// `Atomicity(T1, T2)` and `Atomicity(T1, T3)` must coincide whenever
    /// depth(LCA(T1,T2)) == depth(LCA(T1,T3)); and with three transactions
    /// the possible hierarchies are so constrained that the asymmetric spec
    /// below is inexpressible. We verify inexpressibility by enumerating
    /// all hierarchies over {T1,T2,T3}.
    #[test]
    fn relative_atomicity_strictly_more_expressive_than_multilevel() {
        let t = TxnSet::parse(&["r1[a] w1[a] r1[b]", "r2[a]", "r3[b]"]).unwrap();
        // Target: T1 shows units (1|2) to T2, units (2|1) to T3, while T2
        // and T3 are atomic toward everyone.
        let mut target = AtomicitySpec::absolute(&t);
        target.set_breakpoints(TxnId(0), TxnId(1), &[1]).unwrap();
        target.set_breakpoints(TxnId(0), TxnId(2), &[2]).unwrap();

        // All shapes of hierarchies over three leaves (up to the ones that
        // matter for LCA depth): flat, and each pair nested together.
        let hierarchies = vec![
            Hierarchy::Group(vec![
                Hierarchy::Txn(0),
                Hierarchy::Txn(1),
                Hierarchy::Txn(2),
            ]),
            Hierarchy::Group(vec![
                Hierarchy::Group(vec![Hierarchy::Txn(0), Hierarchy::Txn(1)]),
                Hierarchy::Txn(2),
            ]),
            Hierarchy::Group(vec![
                Hierarchy::Group(vec![Hierarchy::Txn(0), Hierarchy::Txn(2)]),
                Hierarchy::Txn(1),
            ]),
            Hierarchy::Group(vec![
                Hierarchy::Group(vec![Hierarchy::Txn(1), Hierarchy::Txn(2)]),
                Hierarchy::Txn(0),
            ]),
        ];
        // Candidate level sets for T1 (nested families over breakpoints
        // {1, 2} of a 3-op transaction).
        let candidate_levels: Vec<Vec<Vec<u32>>> = vec![
            vec![],
            vec![vec![1]],
            vec![vec![2]],
            vec![vec![1, 2]],
            vec![vec![], vec![1]],
            vec![vec![], vec![2]],
            vec![vec![], vec![1, 2]],
            vec![vec![1], vec![1, 2]],
            vec![vec![2], vec![1, 2]],
        ];
        for h in &hierarchies {
            for lv in &candidate_levels {
                let levels = vec![lv.clone(), vec![], vec![]];
                if let Ok(spec) = multilevel(&t, h, levels) {
                    assert_ne!(
                        spec, target,
                        "target spec unexpectedly expressible: hierarchy {h:?}, levels {lv:?}"
                    );
                }
            }
        }
    }
}
