//! Error type for model construction, parsing, and validation.

use crate::ids::{OpId, TxnId};
use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong while building transactions, schedules, or
/// atomicity specifications.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A parse error in the `r1[x] w2[y]` DSL, with a human-readable reason.
    Parse(String),
    /// A transaction id referenced by a schedule or spec does not exist.
    UnknownTxn(TxnId),
    /// An operation id referenced does not exist in its transaction.
    UnknownOp(OpId),
    /// The schedule is not a permutation of all operations of the
    /// transaction set (missing, duplicated, or foreign operations).
    NotAPermutation(String),
    /// The schedule violates some transaction's program order.
    ProgramOrderViolated {
        /// Transaction whose internal order is violated.
        txn: TxnId,
        /// The operation that appeared too early.
        op: OpId,
    },
    /// An atomicity specification is malformed (bad breakpoints or units).
    BadSpec(String),
    /// An empty transaction, schedule, or unit where one is not allowed.
    Empty(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::UnknownTxn(t) => write!(f, "unknown transaction {t}"),
            Error::UnknownOp(o) => write!(f, "unknown operation {o:?}"),
            Error::NotAPermutation(msg) => {
                write!(
                    f,
                    "schedule is not a permutation of the transaction set: {msg}"
                )
            }
            Error::ProgramOrderViolated { txn, op } => {
                write!(f, "schedule violates program order of {txn} at {op:?}")
            }
            Error::BadSpec(msg) => write!(f, "bad atomicity specification: {msg}"),
            Error::Empty(what) => write!(f, "{what} must not be empty"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::Parse("unexpected token `q`".into());
        assert_eq!(e.to_string(), "parse error: unexpected token `q`");
        let e = Error::UnknownTxn(TxnId(3));
        assert!(e.to_string().contains("T4"), "{e}");
        let e = Error::Empty("transaction".into());
        assert_eq!(e.to_string(), "transaction must not be empty");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
