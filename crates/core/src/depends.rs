//! The *depends-on* relation (§2, paragraph before Definition 2).
//!
//! "We say that `o2` **directly depends on** `o1` if `o1` precedes `o2` in
//! `S` and either `o1` and `o2` are operations of the same transaction or
//! `o1` conflicts with `o2`. The **depends on** relation is the transitive
//! closure of the directly-depends-on relation."
//!
//! The paper's Figure 2 shows why the closure matters: in
//! `S1 = w1[x] w2[y] r3[y] w3[z] r1[z]`, `r1[z]` conflicts with nothing of
//! `T2`, yet is *affected by* `w2[y]` through `T3` — a conflict-only
//! relation would wrongly accept `S1`. [`DependsOn::direct`] materializes
//! that deliberately-flawed variant so the reproduction (experiment E3) can
//! demonstrate the failure.
//!
//! ## Complexity
//!
//! Direct dependencies always point forward in schedule order, so the
//! direct-dependency graph is a DAG whose node order (schedule position) is
//! already topological. We build a *reduced* generator set with O(N) edges
//! per object chain — per-transaction successor edges, write→write,
//! write→following-reads, read→next-write — whose transitive closure
//! provably equals the closure of the full direct relation, then close it
//! with one reverse pass over per-position bitsets
//! ([`relser_digraph::reach::transitive_closure_dag`]).

use crate::ids::OpId;
use crate::schedule::Schedule;
use crate::txn::TxnSet;
use relser_digraph::bitset::BitSet;
use relser_digraph::reach::transitive_closure_dag;
use relser_digraph::DiGraph;

/// A materialized dependency relation over one schedule.
///
/// `affects[p]` holds every schedule position `q` whose operation depends
/// on the operation at position `p` (for the transitive variant), or is
/// directly dependent on it (for the direct variant).
#[derive(Clone, Debug)]
pub struct DependsOn {
    affects: Vec<BitSet>,
    transitive: bool,
}

impl DependsOn {
    /// Computes the paper's depends-on relation (transitive closure of
    /// program order ∪ conflicts) for `schedule`.
    ///
    /// ```
    /// use relser_core::prelude::*;
    /// use relser_core::depends::DependsOn;
    /// // Figure 2's chain: w2[y] -> r3[y] -> w3[z] -> r1[z].
    /// let txns = TxnSet::parse(&["w1[x] r1[z]", "w2[y]", "r3[y] w3[z]"]).unwrap();
    /// let s = txns.parse_schedule("w1[x] w2[y] r3[y] w3[z] r1[z]").unwrap();
    /// let deps = DependsOn::compute(&txns, &s);
    /// let w2y = OpId::new(TxnId(1), 0);
    /// let r1z = OpId::new(TxnId(0), 1);
    /// assert!(deps.depends(&s, r1z, w2y), "transitively affected");
    /// assert!(!DependsOn::direct(&txns, &s).depends(&s, r1z, w2y));
    /// ```
    pub fn compute(txns: &TxnSet, schedule: &Schedule) -> Self {
        let g = reduced_direct_graph(txns, schedule);
        DependsOn {
            affects: transitive_closure_dag(&g),
            transitive: true,
        }
    }

    /// Computes the *direct-only* variant (no transitive closure): `b`
    /// depends on `a` iff `a` precedes `b` and they are of the same
    /// transaction or conflict. Exists to reproduce Figure 2's point that
    /// this relation is **insufficient** for correctness.
    pub fn direct(txns: &TxnSet, schedule: &Schedule) -> Self {
        let n = schedule.len();
        let mut affects = vec![BitSet::with_capacity(n); n];
        let ops: Vec<_> = schedule
            .ops()
            .iter()
            .map(|&o| (o, txns.op(o).expect("validated schedule")))
            .collect();
        for p in 0..n {
            let (a_id, a) = ops[p];
            for (q, &(b_id, b)) in ops.iter().enumerate().skip(p + 1) {
                if a_id.txn == b_id.txn || a.conflicts_with(b) {
                    affects[p].insert(q);
                }
            }
        }
        DependsOn {
            affects,
            transitive: false,
        }
    }

    /// Was this relation transitively closed (the paper's definition)?
    pub fn is_transitive(&self) -> bool {
        self.transitive
    }

    /// Does the operation at schedule position `later` depend on the one at
    /// position `earlier`?
    #[inline]
    pub fn depends_by_pos(&self, later: usize, earlier: usize) -> bool {
        self.affects[earlier].contains(later)
    }

    /// Does operation `later` depend on operation `earlier` (positions
    /// resolved through `schedule`)?
    pub fn depends(&self, schedule: &Schedule, later: OpId, earlier: OpId) -> bool {
        self.depends_by_pos(schedule.position(later), schedule.position(earlier))
    }

    /// All schedule positions affected by position `p` (i.e. that depend on
    /// it), ascending.
    pub fn affected_by(&self, p: usize) -> impl Iterator<Item = usize> + '_ {
        self.affects[p].iter()
    }

    /// Number of ordered dependent pairs.
    pub fn pair_count(&self) -> usize {
        self.affects.iter().map(BitSet::len).sum()
    }
}

/// Builds the reduced direct-dependency generator DAG over schedule
/// positions. Its transitive closure equals the closure of the full direct
/// relation (see module docs for the argument).
fn reduced_direct_graph(txns: &TxnSet, schedule: &Schedule) -> DiGraph<(), ()> {
    let n = schedule.len();
    let mut g: DiGraph<(), ()> = DiGraph::with_capacity(n, n * 2);
    for _ in 0..n {
        g.add_node(());
    }
    let node = |p: usize| relser_digraph::NodeIdx(p as u32);

    // Program-order chains: consecutive operations of each transaction.
    for t in txns.txns() {
        let mut prev: Option<usize> = None;
        for op in t.op_ids() {
            let p = schedule.position(op);
            if let Some(q) = prev {
                g.add_edge(node(q), node(p), ());
            }
            prev = Some(p);
        }
    }

    // Per-object conflict structure: write→write (when no intervening
    // read), write→each following read, read→next write.
    let num_objects = txns.objects().len();
    let mut last_write: Vec<Option<usize>> = vec![None; num_objects];
    let mut reads_since_write: Vec<Vec<usize>> = vec![Vec::new(); num_objects];
    for (p, &op_id) in schedule.ops().iter().enumerate() {
        let op = txns.op(op_id).expect("validated schedule");
        let o = op.object.index();
        if op.is_write() {
            if reads_since_write[o].is_empty() {
                if let Some(w) = last_write[o] {
                    g.add_edge(node(w), node(p), ());
                }
            } else {
                for &r in &reads_since_write[o] {
                    g.add_edge(node(r), node(p), ());
                }
                reads_since_write[o].clear();
            }
            last_write[o] = Some(p);
        } else {
            if let Some(w) = last_write[o] {
                g.add_edge(node(w), node(p), ());
            }
            reads_since_write[o].push(p);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TxnId;

    /// Brute-force oracle: full direct relation, Floyd–Warshall-style
    /// closure.
    #[allow(clippy::needless_range_loop)] // index symmetry reads clearer here
    fn oracle(txns: &TxnSet, s: &Schedule, transitive: bool) -> Vec<Vec<bool>> {
        let n = s.len();
        let mut m = vec![vec![false; n]; n];
        for p in 0..n {
            let a_id = s.op_at(p);
            let a = txns.op(a_id).unwrap();
            for q in p + 1..n {
                let b_id = s.op_at(q);
                let b = txns.op(b_id).unwrap();
                if a_id.txn == b_id.txn || a.conflicts_with(b) {
                    m[p][q] = true;
                }
            }
        }
        if transitive {
            for k in 0..n {
                for i in 0..n {
                    if m[i][k] {
                        for j in 0..n {
                            if m[k][j] {
                                m[i][j] = true;
                            }
                        }
                    }
                }
            }
        }
        m
    }

    fn check_against_oracle(sources: &[&str], schedule: &str) {
        let txns = TxnSet::parse(sources).unwrap();
        let s = txns.parse_schedule(schedule).unwrap();
        let trans = DependsOn::compute(&txns, &s);
        let direct = DependsOn::direct(&txns, &s);
        let oracle_t = oracle(&txns, &s, true);
        let oracle_d = oracle(&txns, &s, false);
        for p in 0..s.len() {
            for q in 0..s.len() {
                assert_eq!(
                    trans.depends_by_pos(q, p),
                    oracle_t[p][q],
                    "transitive mismatch at {p}->{q} in {schedule}"
                );
                assert_eq!(
                    direct.depends_by_pos(q, p),
                    oracle_d[p][q],
                    "direct mismatch at {p}->{q} in {schedule}"
                );
            }
        }
    }

    #[test]
    fn figure2_chain_dependency() {
        // S1 = w1[x] w2[y] r3[y] w3[z] r1[z]: r1[z] depends on w2[y]
        // transitively (w2[y] -> r3[y] -> w3[z] -> r1[z]) but not directly.
        let txns = TxnSet::parse(&["w1[x] r1[z]", "w2[y]", "r3[y] w3[z]"]).unwrap();
        let s1 = txns
            .parse_schedule("w1[x] w2[y] r3[y] w3[z] r1[z]")
            .unwrap();
        let trans = DependsOn::compute(&txns, &s1);
        let direct = DependsOn::direct(&txns, &s1);
        let w2y = OpId::new(TxnId(1), 0);
        let r1z = OpId::new(TxnId(0), 1);
        assert!(
            trans.depends(&s1, r1z, w2y),
            "paper: r1[z] is affected by w2[y]"
        );
        assert!(
            !direct.depends(&s1, r1z, w2y),
            "no direct conflict between them"
        );
    }

    #[test]
    fn same_transaction_ops_always_depend() {
        let txns = TxnSet::parse(&["r1[x] w1[y] r1[z]"]).unwrap();
        let s = txns.parse_schedule("r1[x] w1[y] r1[z]").unwrap();
        let d = DependsOn::compute(&txns, &s);
        // All forward same-txn pairs, including non-adjacent.
        assert!(d.depends_by_pos(2, 0));
        assert!(d.depends_by_pos(1, 0));
        assert!(d.depends_by_pos(2, 1));
        // Never backwards.
        assert!(!d.depends_by_pos(0, 2));
    }

    #[test]
    fn read_read_no_dependency() {
        let txns = TxnSet::parse(&["r1[x]", "r2[x]"]).unwrap();
        let s = txns.parse_schedule("r1[x] r2[x]").unwrap();
        let d = DependsOn::compute(&txns, &s);
        assert!(!d.depends_by_pos(1, 0));
        assert_eq!(d.pair_count(), 0);
    }

    #[test]
    fn write_read_write_chains() {
        let txns = TxnSet::parse(&["w1[x]", "r2[x]", "w3[x]"]).unwrap();
        let s = txns.parse_schedule("w1[x] r2[x] w3[x]").unwrap();
        let d = DependsOn::compute(&txns, &s);
        assert!(d.depends_by_pos(1, 0)); // r2 on w1
        assert!(d.depends_by_pos(2, 1)); // w3 on r2
        assert!(d.depends_by_pos(2, 0)); // w3 on w1 (direct conflict too)
    }

    #[test]
    fn reduced_graph_matches_oracle_on_paper_examples() {
        check_against_oracle(
            &[
                "r1[x] w1[x] w1[z] r1[y]",
                "r2[y] w2[y] r2[x]",
                "w3[x] w3[y] w3[z]",
            ],
            "r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]",
        );
        check_against_oracle(
            &[
                "r1[x] w1[x] w1[z] r1[y]",
                "r2[y] w2[y] r2[x]",
                "w3[x] w3[y] w3[z]",
            ],
            "r1[x] r2[y] w2[y] w1[x] w3[x] r2[x] w1[z] w3[y] r1[y] w3[z]",
        );
        check_against_oracle(
            &["w1[x] r1[z]", "r2[x] w2[y]", "r3[z] r3[y]"],
            "w1[x] r2[x] r3[z] w2[y] r3[y] r1[z]",
        );
        check_against_oracle(
            &["w1[x] w1[y]", "w2[z] w2[y]", "w3[t] w3[z]", "w4[x] w4[t]"],
            "w4[x] w3[t] w4[t] w1[x] w1[y] w2[z] w2[y] w3[z]",
        );
    }

    #[test]
    fn reduced_graph_matches_oracle_on_write_heavy_object() {
        // Multiple writers and readers of one object exercise every branch
        // of the per-object reduction.
        check_against_oracle(
            &["w1[x] w1[x]", "r2[x] r2[x]", "w3[x]", "r4[x]"],
            "w1[x] r2[x] r4[x] w3[x] r2[x] w1[x]",
        );
    }

    #[test]
    fn depends_is_never_reflexive_or_backward() {
        let txns = TxnSet::parse(&["w1[x] r1[z]", "w2[x] w2[z]"]).unwrap();
        let s = txns.parse_schedule("w1[x] w2[x] w2[z] r1[z]").unwrap();
        let d = DependsOn::compute(&txns, &s);
        for p in 0..s.len() {
            assert!(!d.depends_by_pos(p, p), "reflexive at {p}");
            for q in 0..p {
                assert!(!d.depends_by_pos(q, p), "backward {p}->{q}");
            }
        }
    }

    #[test]
    fn affected_by_lists_dependents() {
        let txns = TxnSet::parse(&["w1[x]", "r2[x] w2[y]", "r3[y]"]).unwrap();
        let s = txns.parse_schedule("w1[x] r2[x] w2[y] r3[y]").unwrap();
        let d = DependsOn::compute(&txns, &s);
        let affected: Vec<usize> = d.affected_by(0).collect();
        assert_eq!(affected, vec![1, 2, 3]); // everything downstream of w1[x]
        assert_eq!(d.pair_count(), 3 + 2 + 1);
    }
}
