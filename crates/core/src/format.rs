//! A plain-text document format for whole universes — transactions,
//! relative atomicity specification, and named schedules — so examples and
//! experiments can be stored, diffed, and shared as files.
//!
//! ```text
//! # Figure 1 of the paper
//! txn r1[x] w1[x] w1[z] r1[y]
//! txn r2[y] w2[y] r2[x]
//! txn w3[x] w3[y] w3[z]
//! atomicity 1 2: r1[x] w1[x] | w1[z] r1[y]
//! atomicity 2 1: r2[y] | w2[y] r2[x]
//! schedule Sra: r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]
//! ```
//!
//! * `txn` lines define transactions in order (the `k`-th line must use
//!   number `k`);
//! * `atomicity i j: units` sets `Atomicity(T_i, T_j)` (1-based ids,
//!   `|`-separated units); unspecified pairs stay absolute;
//! * `schedule name: ops` defines a named schedule;
//! * `#` starts a comment; blank lines are ignored.
//!
//! [`render`] inverts [`parse`] exactly (round-trip tested).

use crate::error::{Error, Result};
use crate::schedule::Schedule;
use crate::spec::AtomicitySpec;
use crate::txn::TxnSet;
use std::fmt::Write as _;

/// A parsed universe document.
#[derive(Clone, Debug, PartialEq)]
pub struct Document {
    /// The transactions.
    pub txns: TxnSet,
    /// The relative atomicity specification.
    pub spec: AtomicitySpec,
    /// Named schedules, in file order.
    pub schedules: Vec<(String, Schedule)>,
}

/// Parses a universe document.
pub fn parse(src: &str) -> Result<Document> {
    let mut txn_lines: Vec<&str> = Vec::new();
    let mut atomicity_lines: Vec<(usize, usize, &str)> = Vec::new();
    let mut schedule_lines: Vec<(String, &str)> = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let line = match line.find('#') {
            Some(i) => line[..i].trim(),
            None => line,
        };
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| Error::Parse(format!("line {}: {msg}", lineno + 1));
        if let Some(rest) = line.strip_prefix("txn ") {
            txn_lines.push(rest.trim());
        } else if let Some(rest) = line.strip_prefix("atomicity ") {
            let (head, units) = rest
                .split_once(':')
                .ok_or_else(|| err("`atomicity i j: units` needs a `:`".into()))?;
            let mut ids = head.split_whitespace();
            let i: usize = ids
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad first transaction number".into()))?;
            let j: usize = ids
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad second transaction number".into()))?;
            if ids.next().is_some() {
                return Err(err("too many ids before `:`".into()));
            }
            if i == 0 || j == 0 {
                return Err(err("transaction numbers are 1-based".into()));
            }
            atomicity_lines.push((i - 1, j - 1, units.trim()));
        } else if let Some(rest) = line.strip_prefix("schedule ") {
            let (name, ops) = rest
                .split_once(':')
                .ok_or_else(|| err("`schedule name: ops` needs a `:`".into()))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(err("schedule needs a name".into()));
            }
            schedule_lines.push((name.to_string(), ops.trim()));
        } else {
            return Err(err(format!("unknown directive `{line}`")));
        }
    }

    let txns = TxnSet::parse(&txn_lines)?;
    let mut spec = AtomicitySpec::absolute(&txns);
    for (i, j, units) in atomicity_lines {
        spec.set_units_str(&txns, i, j, units)?;
    }
    let mut schedules = Vec::new();
    for (name, ops) in schedule_lines {
        schedules.push((name, txns.parse_schedule(ops)?));
    }
    Ok(Document {
        txns,
        spec,
        schedules,
    })
}

/// Renders a document; `parse(render(d)) == d`.
pub fn render(doc: &Document) -> String {
    let mut out = String::new();
    for t in doc.txns.txns() {
        let ops: Vec<String> = t.op_ids().map(|o| doc.txns.display_op(o)).collect();
        let _ = writeln!(out, "txn {}", ops.join(" "));
    }
    for i in doc.txns.txn_ids() {
        for j in doc.txns.txn_ids() {
            if i != j && !doc.spec.breakpoints(i, j).is_empty() {
                let _ = writeln!(
                    out,
                    "atomicity {} {}: {}",
                    i.0 + 1,
                    j.0 + 1,
                    doc.spec.display_pair(&doc.txns, i, j)
                );
            }
        }
    }
    for (name, s) in &doc.schedules {
        let _ = writeln!(out, "schedule {name}: {}", s.display(&doc.txns));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::Figure1;

    const FIG1_DOC: &str = "\
# Figure 1 of the paper
txn r1[x] w1[x] w1[z] r1[y]
txn r2[y] w2[y] r2[x]
txn w3[x] w3[y] w3[z]

atomicity 1 2: r1[x] w1[x] | w1[z] r1[y]
atomicity 1 3: r1[x] w1[x] | w1[z] | r1[y]
atomicity 2 1: r2[y] | w2[y] r2[x]
atomicity 2 3: r2[y] w2[y] | r2[x]
atomicity 3 1: w3[x] w3[y] | w3[z]
atomicity 3 2: w3[x] w3[y] | w3[z]

schedule Sra: r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]
";

    #[test]
    fn parses_figure1_document() {
        let doc = parse(FIG1_DOC).unwrap();
        let fig = Figure1::new();
        assert_eq!(doc.txns, fig.txns);
        assert_eq!(doc.spec, fig.spec);
        assert_eq!(doc.schedules.len(), 1);
        assert_eq!(doc.schedules[0].0, "Sra");
        assert_eq!(doc.schedules[0].1, fig.s_ra());
    }

    #[test]
    fn round_trips() {
        let doc = parse(FIG1_DOC).unwrap();
        let rendered = render(&doc);
        let doc2 = parse(&rendered).unwrap();
        assert_eq!(doc, doc2);
        // Rendering is stable.
        assert_eq!(render(&doc2), rendered);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let doc = parse("# only\n\n   # comments\ntxn r1[x]   # trailing\n").unwrap();
        assert_eq!(doc.txns.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("txn r1[x]\nbogus line\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse("txn r1[x]\natomicity 1: r1[x]\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse("txn r1[x]\nschedule : r1[x]\n").unwrap_err();
        assert!(err.to_string().contains("needs a name"), "{err}");
        let err = parse("atomicity 0 1: x\n").unwrap_err();
        assert!(err.to_string().contains("1-based"), "{err}");
    }

    #[test]
    fn atomicity_for_unknown_txn_rejected() {
        let err = parse("txn r1[x]\natomicity 1 5: r1[x]\n").unwrap_err();
        assert!(matches!(err, Error::UnknownTxn(_)), "{err}");
    }

    #[test]
    fn schedule_must_be_valid() {
        let err = parse("txn r1[x] w1[y]\nschedule s: r1[x]\n").unwrap_err();
        assert!(matches!(err, Error::NotAPermutation(_)), "{err}");
    }

    #[test]
    fn absolute_spec_renders_no_atomicity_lines() {
        let doc = parse("txn r1[x]\ntxn w2[x]\n").unwrap();
        let rendered = render(&doc);
        assert!(!rendered.contains("atomicity"));
        assert!(doc.spec.is_absolute());
    }
}
