//! Schedules: interleaved total orders over a transaction set.
//!
//! §2 of the paper: "A schedule S over T = {T1,…,Tn} is an interleaved
//! sequence of all the operations of the transactions in T such that the
//! operations of transaction Ti appear in the same order in S as they do in
//! Ti." (The paper — and this crate — restrict attention to totally-ordered
//! schedules.)

use crate::error::{Error, Result};
use crate::ids::{OpId, TxnId};
use crate::txn::TxnSet;
use std::sync::Arc;

/// A validated schedule: a permutation of every operation of a [`TxnSet`]
/// preserving each transaction's program order.
///
/// Positions are 0-based indices into the schedule sequence; a precomputed
/// position table makes `position(op)` O(1).
///
/// The operation order and position table are immutable after validation
/// and shared behind an [`Arc`], so cloning a `Schedule` (e.g. to embed it
/// in an [`crate::rsg::Rsg`]) is O(1) and allocation-free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    inner: Arc<Inner>,
}

#[derive(Debug, PartialEq, Eq)]
struct Inner {
    order: Vec<OpId>,
    /// `pos[t][j]` = schedule position of operation `o_{t,j}`.
    pos: Vec<Vec<u32>>,
}

impl Schedule {
    /// Validates and wraps an operation sequence.
    ///
    /// Errors if `order` is not a permutation of all operations of `txns`
    /// or violates some transaction's program order.
    pub fn new(txns: &TxnSet, order: Vec<OpId>) -> Result<Self> {
        if order.len() != txns.total_ops() {
            return Err(Error::NotAPermutation(format!(
                "schedule has {} operations, transaction set has {}",
                order.len(),
                txns.total_ops()
            )));
        }
        let mut cursor: Vec<u32> = vec![0; txns.len()];
        let mut pos: Vec<Vec<u32>> = txns
            .txns()
            .iter()
            .map(|t| vec![u32::MAX; t.len()])
            .collect();
        for (p, &op) in order.iter().enumerate() {
            let txn = txns.get(op.txn).ok_or(Error::UnknownTxn(op.txn))?;
            if op.index as usize >= txn.len() {
                return Err(Error::UnknownOp(op));
            }
            let expected = cursor[op.txn.index()];
            if op.index != expected {
                return Err(Error::ProgramOrderViolated { txn: op.txn, op });
            }
            cursor[op.txn.index()] += 1;
            pos[op.txn.index()][op.index as usize] = p as u32;
        }
        Ok(Schedule {
            inner: Arc::new(Inner { order, pos }),
        })
    }

    /// The operations in schedule order.
    pub fn ops(&self) -> &[OpId] {
        &self.inner.order
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.inner.order.len()
    }

    /// Is the schedule empty (only possible for an empty transaction set)?
    pub fn is_empty(&self) -> bool {
        self.inner.order.is_empty()
    }

    /// Position of `op` in the schedule, O(1).
    ///
    /// # Panics
    ///
    /// Panics if `op` does not belong to the schedule's transaction set.
    pub fn position(&self, op: OpId) -> usize {
        self.inner.pos[op.txn.index()][op.index as usize] as usize
    }

    /// The operation at `position`.
    pub fn op_at(&self, position: usize) -> OpId {
        self.inner.order[position]
    }

    /// Does `a` precede `b` in the schedule?
    pub fn precedes(&self, a: OpId, b: OpId) -> bool {
        self.position(a) < self.position(b)
    }

    /// Is the schedule serial (each transaction's operations contiguous)?
    pub fn is_serial(&self) -> bool {
        let mut current: Option<TxnId> = None;
        let mut finished: Vec<bool> = vec![false; self.inner.pos.len()];
        for &op in &self.inner.order {
            match current {
                Some(t) if t == op.txn => {}
                _ => {
                    if let Some(t) = current {
                        finished[t.index()] = true;
                    }
                    if finished[op.txn.index()] {
                        return false; // transaction resumed after another ran
                    }
                    current = Some(op.txn);
                }
            }
        }
        true
    }

    /// All conflicting ordered pairs `(a, b)`: `a` precedes `b`, different
    /// transactions, same object, at least one write. This is the data on
    /// which conflict equivalence is defined.
    pub fn conflict_pairs(&self, txns: &TxnSet) -> Vec<(OpId, OpId)> {
        let mut pairs = Vec::new();
        for (p, &a) in self.inner.order.iter().enumerate() {
            let op_a = txns.op(a).expect("validated schedule");
            for &b in &self.inner.order[p + 1..] {
                if a.txn == b.txn {
                    continue;
                }
                let op_b = txns.op(b).expect("validated schedule");
                if op_a.conflicts_with(op_b) {
                    pairs.push((a, b));
                }
            }
        }
        pairs
    }

    /// Conflict equivalence (§2): both schedules order every conflicting
    /// pair the same way. The schedules must be over the same [`TxnSet`]
    /// (same operations), otherwise `false`.
    pub fn conflict_equivalent(&self, other: &Schedule, txns: &TxnSet) -> bool {
        if self.len() != other.len() {
            return false;
        }
        // Both must be schedules over `txns`; conflicting pairs must agree.
        self.conflict_pairs(txns)
            .into_iter()
            .all(|(a, b)| other.precedes(a, b))
    }

    /// Renders the schedule in the paper's inline style:
    /// `r2[y] r1[x] w1[x] …`.
    pub fn display(&self, txns: &TxnSet) -> String {
        self.inner
            .order
            .iter()
            .map(|&o| txns.display_op(o))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::OpId;

    fn fig1() -> TxnSet {
        TxnSet::parse(&[
            "r1[x] w1[x] w1[z] r1[y]",
            "r2[y] w2[y] r2[x]",
            "w3[x] w3[y] w3[z]",
        ])
        .unwrap()
    }

    #[test]
    fn position_and_precedes() {
        let t = fig1();
        let s = t
            .parse_schedule("r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]")
            .unwrap();
        let r2y = OpId::new(TxnId(1), 0);
        let w3z = OpId::new(TxnId(2), 2);
        assert_eq!(s.position(r2y), 0);
        assert_eq!(s.position(w3z), 9);
        assert!(s.precedes(r2y, w3z));
        assert!(!s.precedes(w3z, r2y));
        assert_eq!(s.op_at(0), r2y);
    }

    #[test]
    fn serial_detection() {
        let t = fig1();
        let serial = t.serial_schedule(&[TxnId(0), TxnId(1), TxnId(2)]).unwrap();
        assert!(serial.is_serial());
        let interleaved = t
            .parse_schedule("r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]")
            .unwrap();
        assert!(!interleaved.is_serial());
    }

    #[test]
    fn program_order_enforced() {
        let t = TxnSet::parse(&["r1[x] w1[y]"]).unwrap();
        let bad = vec![OpId::new(TxnId(0), 1), OpId::new(TxnId(0), 0)];
        let err = Schedule::new(&t, bad).unwrap_err();
        assert!(matches!(err, Error::ProgramOrderViolated { .. }));
    }

    #[test]
    fn permutation_enforced() {
        let t = TxnSet::parse(&["r1[x] w1[y]"]).unwrap();
        assert!(matches!(
            Schedule::new(&t, vec![OpId::new(TxnId(0), 0)]),
            Err(Error::NotAPermutation(_))
        ));
        // Duplicate op: length right but program order broken.
        let dup = vec![OpId::new(TxnId(0), 0), OpId::new(TxnId(0), 0)];
        assert!(Schedule::new(&t, dup).is_err());
    }

    #[test]
    fn foreign_ops_rejected() {
        let t = TxnSet::parse(&["r1[x]"]).unwrap();
        assert!(matches!(
            Schedule::new(&t, vec![OpId::new(TxnId(3), 0)]),
            Err(Error::UnknownTxn(_))
        ));
    }

    #[test]
    fn conflict_pairs_of_simple_schedule() {
        let t = TxnSet::parse(&["r1[x] w1[x]", "w2[x]"]).unwrap();
        let s = t.parse_schedule("r1[x] w2[x] w1[x]").unwrap();
        let pairs = s.conflict_pairs(&t);
        let shown: Vec<(String, String)> = pairs
            .iter()
            .map(|&(a, b)| (t.display_op(a), t.display_op(b)))
            .collect();
        assert_eq!(
            shown,
            vec![
                ("r1[x]".into(), "w2[x]".into()),
                ("w2[x]".into(), "w1[x]".into()),
            ]
        );
    }

    #[test]
    fn reads_do_not_generate_conflict_pairs() {
        let t = TxnSet::parse(&["r1[x]", "r2[x]"]).unwrap();
        let s = t.parse_schedule("r1[x] r2[x]").unwrap();
        assert!(s.conflict_pairs(&t).is_empty());
    }

    #[test]
    fn conflict_equivalence_positive_and_negative() {
        let t = fig1();
        // The paper: S2 is conflict-equivalent to Srs.
        let srs = t
            .parse_schedule("r1[x] r2[y] w1[x] w2[y] w3[x] w1[z] w3[y] r2[x] r1[y] w3[z]")
            .unwrap();
        let s2 = t
            .parse_schedule("r1[x] r2[y] w2[y] w1[x] w3[x] r2[x] w1[z] w3[y] r1[y] w3[z]")
            .unwrap();
        assert!(s2.conflict_equivalent(&srs, &t));
        assert!(srs.conflict_equivalent(&s2, &t));
        // A serial schedule ordering T3 first flips w1[x]/w3[x] and more.
        let serial = t.serial_schedule(&[TxnId(2), TxnId(0), TxnId(1)]).unwrap();
        assert!(!s2.conflict_equivalent(&serial, &t));
    }

    #[test]
    fn conflict_equivalence_is_reflexive() {
        let t = fig1();
        let s = t
            .parse_schedule("r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]")
            .unwrap();
        assert!(s.conflict_equivalent(&s, &t));
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let t = fig1();
        let text = "r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]";
        let s = t.parse_schedule(text).unwrap();
        assert_eq!(s.display(&t), text);
    }
}
