//! Identifier newtypes and the object-name interner.
//!
//! Internally everything is 0-based and `u32`-sized; `Display`
//! implementations use the paper's 1-based convention (`T1`, `o_{1,2}`) so
//! test output and DOT renderings can be compared against the paper
//! directly.

use std::collections::HashMap;
use std::fmt;

/// A transaction identifier (0-based index into a [`crate::txn::TxnSet`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u32);

impl TxnId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // 1-based, matching the paper's T1, T2, ...
        write!(f, "T{}", self.0 + 1)
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A database object identifier (index into an [`ObjectTable`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// An operation identifier: the `j`-th operation (0-based) of transaction
/// `txn` — the paper's `o_{ij}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId {
    /// Owning transaction.
    pub txn: TxnId,
    /// Position within the transaction's program order (0-based).
    pub index: u32,
}

impl OpId {
    /// Convenience constructor.
    #[inline]
    pub fn new(txn: TxnId, index: u32) -> Self {
        OpId { txn, index }
    }
}

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // o_{i,j}, 1-based like the paper.
        write!(f, "o{},{}", self.txn.0 + 1, self.index + 1)
    }
}

/// Interns object names so operations can carry compact [`ObjectId`]s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObjectTable {
    names: Vec<String>,
    by_name: HashMap<String, ObjectId>,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> ObjectId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = ObjectId(u32::try_from(self.names.len()).expect("too many objects"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks a name up without interning.
    pub fn get(&self, name: &str) -> Option<ObjectId> {
        self.by_name.get(name).copied()
    }

    /// The name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: ObjectId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct objects interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ObjectId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_based() {
        assert_eq!(TxnId(0).to_string(), "T1");
        assert_eq!(format!("{:?}", OpId::new(TxnId(1), 2)), "o2,3");
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = ObjectTable::new();
        let x1 = t.intern("x");
        let y = t.intern("y");
        let x2 = t.intern("x");
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(x1), "x");
        assert_eq!(t.get("y"), Some(y));
        assert_eq!(t.get("z"), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = ObjectTable::new();
        t.intern("b");
        t.intern("a");
        let pairs: Vec<(ObjectId, &str)> = t.iter().collect();
        assert_eq!(pairs, vec![(ObjectId(0), "b"), (ObjectId(1), "a")]);
    }

    #[test]
    fn opid_ordering_groups_by_txn() {
        let a = OpId::new(TxnId(0), 5);
        let b = OpId::new(TxnId(1), 0);
        assert!(a < b);
    }
}
