//! Read/write operations and the conflict relation.

use crate::ids::ObjectId;

/// Whether an operation reads or writes its object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// An atomic read.
    Read,
    /// An atomic write.
    Write,
}

impl AccessMode {
    /// The DSL letter: `r` or `w`.
    pub fn letter(self) -> char {
        match self {
            AccessMode::Read => 'r',
            AccessMode::Write => 'w',
        }
    }
}

/// One database operation: a read or a write of a single object.
///
/// The paper's model (§2): "A database is modeled as a set of objects. The
/// objects in the database can be accessed through atomic read and write
/// operations."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Operation {
    /// Read or write.
    pub mode: AccessMode,
    /// The accessed object.
    pub object: ObjectId,
}

impl Operation {
    /// A read of `object`.
    pub fn read(object: ObjectId) -> Self {
        Operation {
            mode: AccessMode::Read,
            object,
        }
    }

    /// A write of `object`.
    pub fn write(object: ObjectId) -> Self {
        Operation {
            mode: AccessMode::Write,
            object,
        }
    }

    /// Is this a write?
    pub fn is_write(self) -> bool {
        self.mode == AccessMode::Write
    }

    /// The paper's conflict relation: two operations (of *different*
    /// transactions — the caller enforces that) conflict iff they access the
    /// same object and at least one writes it.
    pub fn conflicts_with(self, other: Operation) -> bool {
        self.object == other.object && (self.is_write() || other.is_write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: ObjectId = ObjectId(0);
    const Y: ObjectId = ObjectId(1);

    #[test]
    fn reads_on_same_object_do_not_conflict() {
        assert!(!Operation::read(X).conflicts_with(Operation::read(X)));
    }

    #[test]
    fn read_write_conflicts_both_ways() {
        assert!(Operation::read(X).conflicts_with(Operation::write(X)));
        assert!(Operation::write(X).conflicts_with(Operation::read(X)));
    }

    #[test]
    fn write_write_conflicts() {
        assert!(Operation::write(X).conflicts_with(Operation::write(X)));
    }

    #[test]
    fn different_objects_never_conflict() {
        assert!(!Operation::write(X).conflicts_with(Operation::write(Y)));
        assert!(!Operation::read(X).conflicts_with(Operation::write(Y)));
    }

    #[test]
    fn mode_letters() {
        assert_eq!(AccessMode::Read.letter(), 'r');
        assert_eq!(AccessMode::Write.letter(), 'w');
    }
}
