//! Property-based verification of the paper's lemmas and Theorem 1 on
//! random universes (transactions, specifications, schedules).

use proptest::prelude::*;
use relser_core::classes::{classify, is_relatively_serial};
use relser_core::depends::DependsOn;
use relser_core::ids::TxnId;
use relser_core::op::AccessMode;
use relser_core::rsg::Rsg;
use relser_core::schedule::Schedule;
use relser_core::sg::is_conflict_serializable;
use relser_core::spec::AtomicitySpec;
use relser_core::txn::TxnSet;

const OBJECTS: [&str; 4] = ["x", "y", "z", "t"];

/// A random universe: transactions + spec + schedule, all derived from
/// plain data so proptest can shrink them.
#[derive(Debug, Clone)]
struct Universe {
    txns: TxnSet,
    spec: AtomicitySpec,
    schedule: Schedule,
}

/// Strategy for the raw data of a universe.
fn arb_universe(free_breakpoints: bool) -> impl Strategy<Value = Universe> {
    // Per transaction: 1..=4 ops, each (mode, object index).
    let txn = proptest::collection::vec((any::<bool>(), 0usize..OBJECTS.len()), 1..=4);
    let txns = proptest::collection::vec(txn, 2..=4);
    (txns, any::<u64>(), any::<u64>()).prop_map(move |(txn_data, spec_seed, sched_seed)| {
        let mut set = TxnSet::new();
        for ops in &txn_data {
            let pairs: Vec<(AccessMode, &str)> = ops
                .iter()
                .map(|&(w, o)| {
                    (
                        if w {
                            AccessMode::Write
                        } else {
                            AccessMode::Read
                        },
                        OBJECTS[o],
                    )
                })
                .collect();
            set.add(&pairs).unwrap();
        }
        let spec = if free_breakpoints {
            random_spec(&set, spec_seed)
        } else {
            AtomicitySpec::absolute(&set)
        };
        let schedule = random_schedule(&set, sched_seed);
        Universe {
            txns: set,
            spec,
            schedule,
        }
    })
}

/// Deterministic xorshift for repairable sub-choices.
fn next(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn random_spec(txns: &TxnSet, mut seed: u64) -> AtomicitySpec {
    seed |= 1;
    let mut spec = AtomicitySpec::absolute(txns);
    for i in txns.txn_ids() {
        for j in txns.txn_ids() {
            if i == j {
                continue;
            }
            let len = txns.txn(i).len() as u32;
            let breaks: Vec<u32> = (1..len)
                .filter(|_| next(&mut seed).is_multiple_of(2))
                .collect();
            spec.set_breakpoints(i, j, &breaks).unwrap();
        }
    }
    spec
}

fn random_schedule(txns: &TxnSet, mut seed: u64) -> Schedule {
    seed |= 1;
    let mut remaining: Vec<u32> = txns.txns().iter().map(|t| t.len() as u32).collect();
    let mut cursor: Vec<u32> = vec![0; txns.len()];
    let mut order = Vec::with_capacity(txns.total_ops());
    let mut left = txns.total_ops();
    while left > 0 {
        // Pick a transaction with remaining ops, repaired deterministically.
        let mut t = (next(&mut seed) as usize) % txns.len();
        while remaining[t] == 0 {
            t = (t + 1) % txns.len();
        }
        order.push(relser_core::ids::OpId::new(TxnId(t as u32), cursor[t]));
        cursor[t] += 1;
        remaining[t] -= 1;
        left -= 1;
    }
    Schedule::new(txns, order).expect("constructed schedule is valid")
}

/// A conflict-equivalent variant of `s`: a walk of adjacent swaps of
/// non-conflicting, different-transaction neighbors.
fn conflict_equivalent_variant(txns: &TxnSet, s: &Schedule, mut seed: u64) -> Schedule {
    seed |= 1;
    let mut ops = s.ops().to_vec();
    let n = ops.len();
    if n >= 2 {
        for _ in 0..4 * n {
            let i = (next(&mut seed) as usize) % (n - 1);
            let (a, b) = (ops[i], ops[i + 1]);
            if a.txn == b.txn {
                continue;
            }
            let oa = txns.op(a).unwrap();
            let ob = txns.op(b).unwrap();
            if !oa.conflicts_with(ob) {
                ops.swap(i, i + 1);
            }
        }
    }
    Schedule::new(txns, ops).expect("swaps preserve validity")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Figure 5 containments: serial ⇒ relatively atomic ⇒ relatively
    /// serial ⇒ relatively serializable, under arbitrary specs.
    #[test]
    fn containments_hold(u in arb_universe(true)) {
        let report = classify(&u.txns, &u.schedule, &u.spec);
        prop_assert!(report.containments_hold(), "{report:?}");
    }

    /// Lemma 2: a relatively serial schedule has an acyclic RSG.
    #[test]
    fn lemma2_relatively_serial_implies_acyclic_rsg(u in arb_universe(true)) {
        if is_relatively_serial(&u.txns, &u.schedule, &u.spec) {
            prop_assert!(Rsg::build(&u.txns, &u.schedule, &u.spec).is_acyclic());
        }
    }

    /// Theorem 1 (sufficiency, constructively): if the RSG is acyclic, the
    /// extracted witness is a relatively serial schedule conflict-equivalent
    /// to the original.
    #[test]
    fn theorem1_witness_is_relatively_serial_and_equivalent(u in arb_universe(true)) {
        let rsg = Rsg::build(&u.txns, &u.schedule, &u.spec);
        if let Some(w) = rsg.witness(&u.txns) {
            prop_assert!(w.conflict_equivalent(&u.schedule, &u.txns));
            prop_assert!(is_relatively_serial(&u.txns, &w, &u.spec),
                "witness {} of {} is not relatively serial",
                w.display(&u.txns), u.schedule.display(&u.txns));
        }
    }

    /// Theorem 1 (invariance): conflict-equivalent schedules have the same
    /// RSG verdict.
    #[test]
    fn theorem1_verdict_invariant_under_conflict_equivalence(
        u in arb_universe(true), seed in any::<u64>()
    ) {
        let v = conflict_equivalent_variant(&u.txns, &u.schedule, seed);
        prop_assert!(v.conflict_equivalent(&u.schedule, &u.txns));
        let a = Rsg::build(&u.txns, &u.schedule, &u.spec).is_acyclic();
        let b = Rsg::build(&u.txns, &v, &u.spec).is_acyclic();
        prop_assert_eq!(a, b);
    }

    /// Lemma 1 corollary: under absolute atomicity, relatively serializable
    /// ⇔ conflict serializable.
    #[test]
    fn lemma1_absolute_atomicity_matches_conflict_serializability(
        u in arb_universe(false)
    ) {
        let rsr = Rsg::build(&u.txns, &u.schedule, &u.spec).is_acyclic();
        let csr = is_conflict_serializable(&u.txns, &u.schedule);
        prop_assert_eq!(rsr, csr, "schedule {}", u.schedule.display(&u.txns));
    }

    /// Widening the spec (adding breakpoints) never shrinks the accepted
    /// class: if a schedule is relatively serializable under the absolute
    /// spec it stays so under any spec.
    #[test]
    fn looser_specs_accept_more(u in arb_universe(true)) {
        let absolute = AtomicitySpec::absolute(&u.txns);
        if Rsg::build(&u.txns, &u.schedule, &absolute).is_acyclic() {
            prop_assert!(Rsg::build(&u.txns, &u.schedule, &u.spec).is_acyclic());
        }
    }

    /// The free spec accepts every schedule.
    #[test]
    fn free_spec_accepts_every_schedule(u in arb_universe(true)) {
        let free = AtomicitySpec::free(&u.txns);
        prop_assert!(Rsg::build(&u.txns, &u.schedule, &free).is_acyclic());
        prop_assert!(is_relatively_serial(&u.txns, &u.schedule, &free));
    }

    /// The transitive depends-on relation contains the direct one.
    #[test]
    fn transitive_contains_direct(u in arb_universe(true)) {
        let trans = DependsOn::compute(&u.txns, &u.schedule);
        let direct = DependsOn::direct(&u.txns, &u.schedule);
        let n = u.schedule.len();
        for p in 0..n {
            for q in 0..n {
                if direct.depends_by_pos(q, p) {
                    prop_assert!(trans.depends_by_pos(q, p));
                }
            }
        }
    }

    /// Serial schedules are in every class regardless of spec.
    #[test]
    fn serial_schedules_in_every_class(u in arb_universe(true), perm_seed in any::<u64>()) {
        let mut order: Vec<TxnId> = u.txns.txn_ids().collect();
        // Deterministic shuffle.
        let mut seed = perm_seed | 1;
        for i in (1..order.len()).rev() {
            let j = (next(&mut seed) as usize) % (i + 1);
            order.swap(i, j);
        }
        let s = u.txns.serial_schedule(&order).unwrap();
        let r = classify(&u.txns, &s, &u.spec);
        prop_assert!(r.serial && r.relatively_atomic && r.relatively_serial
            && r.conflict_serializable && r.relatively_serializable);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The document format round-trips arbitrary universes exactly.
    #[test]
    fn format_round_trips(u in arb_universe(true), name in "[a-z]{1,8}") {
        let doc = relser_core::format::Document {
            txns: u.txns.clone(),
            spec: u.spec.clone(),
            schedules: vec![(name, u.schedule.clone())],
        };
        let rendered = relser_core::format::render(&doc);
        let parsed = relser_core::format::parse(&rendered).unwrap();
        prop_assert_eq!(&parsed, &doc);
        prop_assert_eq!(relser_core::format::render(&parsed), rendered);
    }

    /// Inference always makes its examples relatively atomic, and the
    /// result is minimal: every inferred breakpoint is forced by some
    /// example.
    #[test]
    fn inference_is_sound_and_minimal(u in arb_universe(false), extra in any::<u64>()) {
        let examples = vec![u.schedule.clone(), random_schedule(&u.txns, extra)];
        let spec = relser_core::infer::infer_spec(&u.txns, &examples).unwrap();
        for s in &examples {
            prop_assert!(relser_core::classes::is_relatively_atomic(&u.txns, s, &spec));
        }
        for i in u.txns.txn_ids() {
            for j in u.txns.txn_ids() {
                if i == j { continue; }
                let breaks = spec.breakpoints(i, j).to_vec();
                for drop in &breaks {
                    let mut weakened = spec.clone();
                    let remaining: Vec<u32> =
                        breaks.iter().copied().filter(|b| b != drop).collect();
                    weakened.set_breakpoints(i, j, &remaining).unwrap();
                    prop_assert!(
                        examples.iter().any(|s| !relser_core::classes::is_relatively_atomic(
                            &u.txns, s, &weakened
                        )),
                        "breakpoint {} of Atomicity({},{}) not forced", drop, i, j
                    );
                }
            }
        }
    }

    /// The explanation report never disagrees with `classify`.
    #[test]
    fn explanations_are_consistent_with_classify(u in arb_universe(true)) {
        let text = relser_core::explain::explain(&u.txns, &u.schedule, &u.spec);
        let report = classify(&u.txns, &u.schedule, &u.spec);
        prop_assert_eq!(
            text.contains("relatively serializable (Thm. 1): yes"),
            report.relatively_serializable
        );
        prop_assert_eq!(
            text.contains("relatively atomic (Def. 1): yes"),
            report.relatively_atomic
        );
        prop_assert_eq!(
            text.contains("conflict serializable: yes"),
            report.conflict_serializable
        );
    }
}

/// A regression-style deterministic test: looser specs accept a strict
/// superset on the Figure 1 universe (sanity anchor for the proptest
/// above).
#[test]
fn figure1_spec_accepts_more_than_absolute() {
    let fig = relser_core::paper::Figure1::new();
    let sra = fig.s_ra();
    let absolute = AtomicitySpec::absolute(&fig.txns);
    assert!(!Rsg::build(&fig.txns, &sra, &absolute).is_acyclic());
    assert!(Rsg::build(&fig.txns, &sra, &fig.spec).is_acyclic());
}
