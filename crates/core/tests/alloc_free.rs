//! Counting-allocator proof that the steady-state admit/rollback path of
//! [`IncrementalRsg`] performs **zero** heap allocations.
//!
//! The engine is warmed up through several admit-everything /
//! abort-everything rounds so every reusable buffer (scratch closure
//! bitset, arc merge buffer, recycled ancestor rows, recycled journals,
//! dag edge storage and DFS scratch, access rows) reaches its steady
//! capacity; allocation counting is then enabled and further rounds —
//! including full rollback-with-replay — must allocate nothing.
//!
//! This file deliberately contains a single `#[test]`: the counter is
//! process-global, and a sibling test allocating concurrently would
//! produce false positives.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use relser_core::ids::{OpId, TxnId};
use relser_core::incremental::{CompactionPolicy, IncrementalRsg};
use relser_core::spec::AtomicitySpec;
use relser_core::txn::TxnSet;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One round: admit every operation serially (a serial schedule is always
/// admissible), then abort every transaction — the first abort rolls the
/// whole prefix back and replays the survivors, exercising the rollback
/// and replay paths as hard as the admit path.
fn round(engine: &mut IncrementalRsg, txns: &TxnSet) {
    for t in txns.txns() {
        for j in 0..t.len() as u32 {
            let r = engine.try_admit(OpId::new(t.id(), j));
            assert!(r.is_ok());
        }
    }
    for t in 0..txns.len() as u32 {
        engine.abort(TxnId(t));
    }
    assert!(engine.admitted().is_empty());
}

#[test]
fn steady_state_admit_and_rollback_allocate_nothing() {
    let txns = TxnSet::parse(&[
        "r1[x] w1[x] w1[z] r1[y]",
        "r2[y] w2[y] r2[x]",
        "w3[x] w3[y] w3[z]",
        "r4[z] w4[z] r4[x] w4[y]",
    ])
    .unwrap();
    let spec = AtomicitySpec::absolute(&txns);
    let mut engine = IncrementalRsg::with_policy(&txns, &spec, CompactionPolicy::never());

    // Warm-up: grow every buffer to its steady capacity.
    for _ in 0..4 {
        round(&mut engine, &txns);
    }

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..8 {
        round(&mut engine, &txns);
    }
    COUNTING.store(false, Ordering::SeqCst);

    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "steady-state admit/rollback performed {allocs} heap allocations"
    );
}
