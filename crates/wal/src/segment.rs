//! Segmented log with checkpoint-gated compaction.
//!
//! A single append-only file grows without bound — recovery time and disk
//! usage scale with *history length*, not live state. [`SegmentedWal`]
//! bounds both: the log is a sequence of numbered segments, **every
//! segment opens with a [`Checkpoint`] record** snapshotting the core's
//! live state at rotation time, and once that checkpoint is durable every
//! older segment is deleted. Recovery therefore reads exactly one
//! segment: seed from its head checkpoint, replay its suffix.
//!
//! The rotation order is what makes crashes safe at every point:
//!
//! 1. force-sync the current segment (its acknowledged tail is durable);
//! 2. create segment `seq+1`, write header + checkpoint, **force sync**;
//! 3. only now delete segments `< seq+1`.
//!
//! A crash before step 3 leaves both generations on disk; recovery picks
//! the highest-numbered segment whose head checkpoint scans valid and
//! falls back to the previous one otherwise. A crash after step 3 leaves
//! exactly the new segment, whose checkpoint is durable by step 2.

use crate::commit_log::CommitLog;
use crate::record::{Checkpoint, WalRecord};
use crate::storage::{FileStorage, MemHandle, MemStorage, Storage};
use crate::writer::{FsyncPolicy, WalStats, WalWriter};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Where segments live: a factory for numbered [`Storage`] backends plus
/// the ability to delete a retired segment.
pub trait SegmentStore: Send {
    /// Creates (or truncates) the storage for segment `seq`.
    fn create(&mut self, seq: u64) -> io::Result<Box<dyn Storage>>;

    /// Deletes segment `seq`. Only called for segments wholly before the
    /// last durable checkpoint.
    fn delete(&mut self, seq: u64) -> io::Result<()>;
}

/// Segments as files `wal-{seq:08}.log` in one directory.
pub struct DirSegmentStore {
    dir: PathBuf,
}

impl DirSegmentStore {
    /// Opens (creating if needed) `dir` as a segment directory.
    pub fn new(dir: &Path) -> io::Result<DirSegmentStore> {
        std::fs::create_dir_all(dir)?;
        Ok(DirSegmentStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The file path of segment `seq` under `dir`.
    pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
        dir.join(format!("wal-{seq:08}.log"))
    }

    /// Lists the segments present in `dir`, ascending by sequence number.
    /// Recovery reads the contents of the last one or two of these.
    pub fn list(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut found = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
            else {
                continue;
            };
            if let Ok(seq) = stem.parse::<u64>() {
                found.push((seq, entry.path()));
            }
        }
        found.sort_unstable_by_key(|&(seq, _)| seq);
        Ok(found)
    }
}

impl SegmentStore for DirSegmentStore {
    fn create(&mut self, seq: u64) -> io::Result<Box<dyn Storage>> {
        Ok(Box::new(FileStorage::create(&Self::segment_path(
            &self.dir, seq,
        ))?))
    }

    fn delete(&mut self, seq: u64) -> io::Result<()> {
        std::fs::remove_file(Self::segment_path(&self.dir, seq))
    }
}

#[derive(Default)]
struct MemSegs {
    segs: BTreeMap<u64, MemHandle>,
    deleted: u64,
}

/// In-memory segments for tests and the crash-point sweep, with a shared
/// read handle ([`MemSegmentsHandle`]) that observes retained segments
/// after the store has been moved into the core thread.
pub struct MemSegmentStore {
    inner: Arc<Mutex<MemSegs>>,
}

/// Read side of a [`MemSegmentStore`].
#[derive(Clone)]
pub struct MemSegmentsHandle {
    inner: Arc<Mutex<MemSegs>>,
}

impl MemSegmentStore {
    /// An empty segment store plus its read handle.
    pub fn new() -> (MemSegmentStore, MemSegmentsHandle) {
        let inner = Arc::new(Mutex::new(MemSegs::default()));
        (
            MemSegmentStore {
                inner: Arc::clone(&inner),
            },
            MemSegmentsHandle { inner },
        )
    }
}

impl SegmentStore for MemSegmentStore {
    fn create(&mut self, seq: u64) -> io::Result<Box<dyn Storage>> {
        let (storage, handle) = MemStorage::new();
        self.inner
            .lock()
            .expect("segment lock")
            .segs
            .insert(seq, handle);
        Ok(Box::new(storage))
    }

    fn delete(&mut self, seq: u64) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("segment lock");
        inner.segs.remove(&seq);
        inner.deleted += 1;
        Ok(())
    }
}

impl MemSegmentsHandle {
    /// A fresh write handle over the same shared segment map — used when
    /// a supervised core resumes logging into the store it just
    /// recovered from (the original [`MemSegmentStore`] died with the
    /// crashed core thread).
    pub fn store(&self) -> MemSegmentStore {
        MemSegmentStore {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The retained segments' full contents (durable or not), ascending.
    pub fn segments(&self) -> Vec<(u64, Vec<u8>)> {
        let inner = self.inner.lock().expect("segment lock");
        inner.segs.iter().map(|(&s, h)| (s, h.bytes())).collect()
    }

    /// The retained segments' durable prefixes (what a crash right now
    /// would preserve), ascending.
    pub fn synced_segments(&self) -> Vec<(u64, Vec<u8>)> {
        let inner = self.inner.lock().expect("segment lock");
        inner
            .segs
            .iter()
            .map(|(&s, h)| (s, h.synced_bytes()))
            .collect()
    }

    /// Segments currently retained.
    pub fn segment_count(&self) -> usize {
        self.inner.lock().expect("segment lock").segs.len()
    }

    /// Segments deleted by compaction so far.
    pub fn deleted(&self) -> u64 {
        self.inner.lock().expect("segment lock").deleted
    }

    /// Bytes retained across all segments — the quantity the soak test
    /// asserts is bounded by live state, not history length.
    pub fn retained_bytes(&self) -> usize {
        let inner = self.inner.lock().expect("segment lock");
        inner.segs.values().map(|h| h.bytes().len()).sum()
    }
}

/// When the core should cut a checkpoint and rotate segments. A
/// checkpoint is due once *either* threshold of post-checkpoint suffix
/// has accumulated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Rotate after this many records since the last checkpoint.
    pub every_records: u64,
    /// Rotate after this many suffix bytes since the last checkpoint.
    pub every_bytes: u64,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_records: 1024,
            every_bytes: 64 * 1024,
        }
    }
}

impl CheckpointPolicy {
    /// Never checkpoint (a segmented log that behaves like a single one).
    pub fn never() -> Self {
        CheckpointPolicy {
            every_records: u64::MAX,
            every_bytes: u64::MAX,
        }
    }
}

/// Counters specific to the segmented log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Checkpoints installed (each one is a rotation).
    pub checkpoints: u64,
    /// Segments deleted after their state was covered by a checkpoint.
    pub segments_deleted: u64,
    /// The current (highest) segment sequence number.
    pub current_seq: u64,
}

/// A [`CommitLog`] over numbered segments; see the module docs.
pub struct SegmentedWal {
    store: Box<dyn SegmentStore>,
    writer: WalWriter,
    policy: FsyncPolicy,
    ckpt: CheckpointPolicy,
    seq: u64,
    oldest: u64,
    since_records: u64,
    since_bytes: u64,
    sealed: WalStats,
    /// Barrier timings harvested from sealed segments' writers at
    /// rotation, so [`CommitLog::take_sync_ns`] loses nothing when the
    /// inner writer is replaced.
    sealed_sync_ns: Vec<u64>,
    seg_stats: SegmentStats,
    broken: bool,
}

impl SegmentedWal {
    /// Opens segment 0 with an empty head checkpoint — the invariant that
    /// *every* segment starts with `MAGIC` + a checkpoint record holds
    /// from birth.
    pub fn new(
        mut store: Box<dyn SegmentStore>,
        policy: FsyncPolicy,
        ckpt: CheckpointPolicy,
    ) -> io::Result<SegmentedWal> {
        let storage = store.create(0)?;
        let mut writer = WalWriter::new(storage, policy)?;
        writer.append(&WalRecord::Checkpoint(Checkpoint::default()))?;
        writer.sync()?;
        Ok(SegmentedWal {
            store,
            writer,
            policy,
            ckpt,
            seq: 0,
            oldest: 0,
            since_records: 0,
            since_bytes: 0,
            sealed: WalStats::default(),
            sealed_sync_ns: Vec::new(),
            seg_stats: SegmentStats::default(),
            broken: false,
        })
    }

    /// Re-opens the log after in-place recovery: a fresh segment
    /// `next_seq` headed by `head` (the recovered live state), forced
    /// durable, after which every segment listed in `prior` is deleted —
    /// the same durability-before-deletion order as
    /// [`CommitLog::install_checkpoint`], so a crash mid-resume leaves
    /// both generations on disk and recovery prefers the newest segment
    /// whose head checkpoint scans valid.
    pub fn resume(
        mut store: Box<dyn SegmentStore>,
        policy: FsyncPolicy,
        ckpt: CheckpointPolicy,
        head: Checkpoint,
        next_seq: u64,
        prior: &[u64],
    ) -> io::Result<SegmentedWal> {
        let storage = store.create(next_seq)?;
        let mut writer = WalWriter::new(storage, policy)?;
        writer.append(&WalRecord::Checkpoint(head))?;
        writer.sync()?;
        let mut seg_stats = SegmentStats {
            checkpoints: 0,
            segments_deleted: 0,
            current_seq: next_seq,
        };
        for &s in prior {
            if s >= next_seq {
                continue;
            }
            store.delete(s)?;
            seg_stats.segments_deleted += 1;
        }
        Ok(SegmentedWal {
            store,
            writer,
            policy,
            ckpt,
            seq: next_seq,
            oldest: next_seq,
            since_records: 0,
            since_bytes: 0,
            sealed: WalStats::default(),
            sealed_sync_ns: Vec::new(),
            seg_stats,
            broken: false,
        })
    }

    /// Segment-level counters.
    pub fn segment_stats(&self) -> SegmentStats {
        self.seg_stats
    }

    fn check_broken(&self) -> io::Result<()> {
        if self.broken {
            Err(io::Error::other(
                "segmented log is broken (earlier rotation error)",
            ))
        } else {
            Ok(())
        }
    }

    /// Rotates to a fresh segment headed by `cp`, then deletes every
    /// older segment. See the module docs for why this order is safe at
    /// every crash point.
    fn rotate(&mut self, cp: Checkpoint) -> io::Result<()> {
        self.check_broken()?;
        // 1. Seal the outgoing segment: its acknowledged tail is durable.
        self.writer.sync()?;
        let new_seq = self.seq + 1;
        // 2. New segment: header + checkpoint, forced durable before any
        //    deletion may happen.
        let result = (|| -> io::Result<WalWriter> {
            let storage = self.store.create(new_seq)?;
            let mut w = WalWriter::new(storage, self.policy)?;
            w.append(&WalRecord::Checkpoint(cp))?;
            w.sync()?;
            Ok(w)
        })();
        let new_writer = match result {
            Ok(w) => w,
            Err(e) => {
                self.broken = true;
                return Err(e);
            }
        };
        let mut old = std::mem::replace(&mut self.writer, new_writer);
        let old_stats = old.stats();
        self.sealed.records += old_stats.records;
        self.sealed.bytes += old_stats.bytes;
        self.sealed.syncs += old_stats.syncs;
        self.sealed_sync_ns.append(&mut old.take_sync_ns());
        self.seq = new_seq;
        // 3. The checkpoint is durable: everything before it is garbage.
        for s in self.oldest..new_seq {
            if let Err(e) = self.store.delete(s) {
                self.broken = true;
                return Err(e);
            }
            self.seg_stats.segments_deleted += 1;
        }
        self.oldest = new_seq;
        self.since_records = 0;
        self.since_bytes = 0;
        self.seg_stats.checkpoints += 1;
        self.seg_stats.current_seq = new_seq;
        Ok(())
    }
}

impl CommitLog for SegmentedWal {
    fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        self.check_broken()?;
        self.writer.append(rec)?;
        self.since_records += 1;
        self.since_bytes += rec.frame_len() as u64;
        Ok(())
    }

    fn batch_end(&mut self) -> io::Result<()> {
        self.check_broken()?;
        self.writer.batch_end()
    }

    fn maybe_sync(&mut self) -> io::Result<()> {
        self.check_broken()?;
        self.writer.maybe_sync()
    }

    fn close(&mut self) -> io::Result<()> {
        self.check_broken()?;
        self.writer.close()
    }

    fn stats(&self) -> WalStats {
        let cur = self.writer.stats();
        WalStats {
            records: self.sealed.records + cur.records,
            bytes: self.sealed.bytes + cur.bytes,
            syncs: self.sealed.syncs + cur.syncs,
        }
    }

    fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    fn take_sync_ns(&mut self) -> Vec<u64> {
        let mut all = std::mem::take(&mut self.sealed_sync_ns);
        all.append(&mut self.writer.take_sync_ns());
        all
    }

    fn wants_checkpoints(&self) -> bool {
        true
    }

    fn checkpoint_due(&self) -> bool {
        !self.broken
            && (self.since_records >= self.ckpt.every_records
                || self.since_bytes >= self.ckpt.every_bytes)
    }

    fn install_checkpoint(&mut self, cp: Checkpoint) -> io::Result<()> {
        self.rotate(cp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan;
    use relser_core::ids::TxnId;

    fn seg(policy: CheckpointPolicy) -> (SegmentedWal, MemSegmentsHandle) {
        let (store, handle) = MemSegmentStore::new();
        let wal = SegmentedWal::new(Box::new(store), FsyncPolicy::Always, policy).unwrap();
        (wal, handle)
    }

    #[test]
    fn every_segment_opens_with_a_checkpoint() {
        let (mut wal, handle) = seg(CheckpointPolicy::never());
        wal.append(&WalRecord::Begin(TxnId(0))).unwrap();
        wal.install_checkpoint(Checkpoint {
            shard: 0,
            committed: vec![],
            events: vec![crate::record::CheckpointEvent::Begin(TxnId(0))],
            sessions: vec![],
        })
        .unwrap();
        for (_, bytes) in handle.segments() {
            let s = scan(&bytes);
            assert_eq!(s.truncation, None);
            assert!(
                matches!(s.records.first(), Some(WalRecord::Checkpoint(_))),
                "segment head must be a checkpoint"
            );
        }
    }

    #[test]
    fn rotation_deletes_older_segments_only_after_the_checkpoint_is_durable() {
        let (mut wal, handle) = seg(CheckpointPolicy::never());
        for t in 0..4 {
            wal.append(&WalRecord::Begin(TxnId(t))).unwrap();
            wal.append(&WalRecord::Commit(TxnId(t))).unwrap();
        }
        assert_eq!(handle.segment_count(), 1);
        wal.install_checkpoint(Checkpoint {
            shard: 0,
            committed: (0..4).map(TxnId).collect(),
            events: vec![],
            sessions: vec![],
        })
        .unwrap();
        assert_eq!(handle.segment_count(), 1, "old segment deleted");
        assert_eq!(handle.deleted(), 1);
        let segs = handle.synced_segments();
        assert_eq!(segs[0].0, 1, "survivor is the new segment");
        let s = scan(&segs[0].1);
        assert_eq!(s.records.len(), 1);
        let WalRecord::Checkpoint(cp) = &s.records[0] else {
            panic!("head record is the checkpoint");
        };
        assert_eq!(cp.committed.len(), 4);
        assert_eq!(
            s.valid_bytes,
            segs[0].1.len(),
            "checkpoint was forced durable at rotation"
        );
    }

    #[test]
    fn checkpoint_due_tracks_the_suffix_not_the_history() {
        let (mut wal, _handle) = seg(CheckpointPolicy {
            every_records: 3,
            every_bytes: u64::MAX,
        });
        assert!(!wal.checkpoint_due());
        for t in 0..3 {
            wal.append(&WalRecord::Begin(TxnId(t))).unwrap();
        }
        assert!(wal.checkpoint_due());
        wal.install_checkpoint(Checkpoint::default()).unwrap();
        assert!(!wal.checkpoint_due(), "rotation resets the suffix counters");
        assert_eq!(wal.segment_stats().checkpoints, 1);
    }

    #[test]
    fn retained_bytes_stay_bounded_under_rotation() {
        let (mut wal, handle) = seg(CheckpointPolicy {
            every_records: 8,
            every_bytes: u64::MAX,
        });
        let mut peak = 0usize;
        for round in 0..20u32 {
            for t in 0..8 {
                wal.append(&WalRecord::Begin(TxnId(t))).unwrap();
                wal.append(&WalRecord::Commit(TxnId(t))).unwrap();
            }
            if wal.checkpoint_due() {
                wal.install_checkpoint(Checkpoint::default()).unwrap();
            }
            peak = peak.max(handle.retained_bytes());
            let _ = round;
        }
        assert!(wal.segment_stats().checkpoints >= 10);
        // 16 appended records per round, rotation after ≥ 8: the retained
        // log never holds more than ~2 rounds of suffix + one checkpoint.
        assert!(
            peak < 16 * 13 * 4,
            "retained bytes {peak} grew with history"
        );
        assert!(wal.stats().records > 300, "total history kept flowing");
    }

    #[test]
    fn resume_opens_a_fresh_segment_and_retires_the_old_generation() {
        // First incarnation: two segments' worth of history, then the
        // core "dies" (the wal is simply dropped).
        let (mut wal, handle) = seg(CheckpointPolicy::never());
        wal.append(&WalRecord::Begin(TxnId(0))).unwrap();
        wal.append(&WalRecord::Commit(TxnId(0))).unwrap();
        drop(wal);
        let prior: Vec<u64> = handle.segments().iter().map(|&(s, _)| s).collect();
        assert_eq!(prior, vec![0]);

        // Second incarnation resumes into the same store with a head
        // checkpoint summarizing the recovered state.
        let head = Checkpoint {
            shard: 0,
            committed: vec![TxnId(0)],
            events: vec![],
            sessions: vec![],
        };
        let mut wal = SegmentedWal::resume(
            Box::new(handle.store()),
            FsyncPolicy::Always,
            CheckpointPolicy::never(),
            head,
            1,
            &prior,
        )
        .unwrap();
        wal.append(&WalRecord::Begin(TxnId(1))).unwrap();
        wal.append(&WalRecord::Commit(TxnId(1))).unwrap();
        wal.close().unwrap();

        let segs = handle.synced_segments();
        assert_eq!(segs.len(), 1, "old generation deleted after resume");
        assert_eq!(segs[0].0, 1);
        let s = scan(&segs[0].1);
        assert_eq!(s.truncation, None);
        let WalRecord::Checkpoint(cp) = &s.records[0] else {
            panic!("resumed segment opens with the recovery checkpoint");
        };
        assert_eq!(cp.committed, vec![TxnId(0)]);
        assert_eq!(s.records.len(), 3);
        // A further rotation from the resumed log only touches its own
        // generation (oldest was advanced past the deleted segments).
        wal.install_checkpoint(Checkpoint::default()).unwrap();
        assert_eq!(wal.segment_stats().current_seq, 2);
        assert_eq!(handle.segment_count(), 1);
    }

    #[test]
    fn dir_segment_store_round_trips_and_lists() {
        let dir = std::env::temp_dir().join("relser_wal_segment_dir_test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = DirSegmentStore::new(&dir).unwrap();
        let mut wal = SegmentedWal::new(
            Box::new(store),
            FsyncPolicy::Always,
            CheckpointPolicy::never(),
        )
        .unwrap();
        wal.append(&WalRecord::Begin(TxnId(0))).unwrap();
        wal.install_checkpoint(Checkpoint::default()).unwrap();
        wal.append(&WalRecord::Begin(TxnId(1))).unwrap();
        wal.close().unwrap();
        let listed = DirSegmentStore::list(&dir).unwrap();
        assert_eq!(listed.len(), 1, "segment 0 was deleted at rotation");
        assert_eq!(listed[0].0, 1);
        let bytes = std::fs::read(&listed[0].1).unwrap();
        let s = scan(&bytes);
        assert_eq!(s.truncation, None);
        assert_eq!(s.records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
