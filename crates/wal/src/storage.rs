//! Log storage backends.
//!
//! The writer talks to storage through the [`Storage`] trait — one
//! `append` call per encoded record frame plus explicit `sync` barriers —
//! so the same [`crate::WalWriter`] runs against a real file
//! ([`FileStorage`]), an in-memory buffer ([`MemStorage`], used by tests
//! and the crash-point sweep), or a fault-injecting shim (the model
//! checker's `FaultFs`). The per-record granularity is what makes
//! crash-at-record-k fault plans exact.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// An append-only byte device with an explicit durability barrier.
// `len` is a byte offset into an append-only device, not a collection
// size; an `is_empty` would have no caller and no meaning here.
#[allow(clippy::len_without_is_empty)]
pub trait Storage: Send {
    /// Appends `bytes` (one record frame, or the file header) to the log.
    /// An error means the bytes must be assumed lost; the writer treats
    /// the log as broken from this point on.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Durability barrier: on `Ok`, everything appended so far survives a
    /// crash. An error means durability is unknown — fail-stop territory.
    fn sync(&mut self) -> io::Result<()>;

    /// Bytes successfully appended so far (durable or not).
    fn len(&self) -> u64;
}

/// A real file. `sync` maps to `File::sync_data`.
pub struct FileStorage {
    file: File,
    written: u64,
}

impl FileStorage {
    /// Creates (or truncates) the log at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(FileStorage {
            file: File::create(path)?,
            written: 0,
        })
    }

    /// Reopens an existing log for appending, first truncating it to
    /// `valid_len` — the scanner's `valid_bytes` — so a torn tail left by
    /// a crash is physically cut *before* any new frame lands after it.
    /// Appending past a torn tail without this truncation would leave the
    /// damage buried mid-log, where the truncate-at-first-damage scanner
    /// would discard every record after it on the next recovery.
    pub fn reopen(path: &Path, valid_len: u64) -> io::Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        file.sync_data()?;
        file.seek(SeekFrom::End(0))?;
        Ok(FileStorage {
            file,
            written: valid_len,
        })
    }
}

impl Storage for FileStorage {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)?;
        self.written += bytes.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn len(&self) -> u64 {
        self.written
    }
}

#[derive(Default)]
struct MemInner {
    buf: Vec<u8>,
    synced: usize,
}

/// An in-memory log with an explicit durability watermark: `sync` moves
/// the watermark to the end of the buffer, modelling what a crash would
/// preserve. [`MemHandle`] (cloneable, shareable) reads the contents
/// after the writer has been moved into the core thread.
pub struct MemStorage {
    inner: Arc<Mutex<MemInner>>,
}

/// Read side of a [`MemStorage`].
#[derive(Clone)]
pub struct MemHandle {
    inner: Arc<Mutex<MemInner>>,
}

impl MemStorage {
    /// An empty in-memory log plus its read handle.
    pub fn new() -> (MemStorage, MemHandle) {
        let inner = Arc::new(Mutex::new(MemInner::default()));
        (
            MemStorage {
                inner: Arc::clone(&inner),
            },
            MemHandle { inner },
        )
    }
}

impl Storage for MemStorage {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner
            .lock()
            .expect("mem log lock")
            .buf
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("mem log lock");
        inner.synced = inner.buf.len();
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.lock().expect("mem log lock").buf.len() as u64
    }
}

impl MemHandle {
    /// Everything appended so far (durable or not).
    pub fn bytes(&self) -> Vec<u8> {
        self.inner.lock().expect("mem log lock").buf.clone()
    }

    /// The durable prefix: what a crash right now would preserve (all
    /// bytes up to the last `sync`).
    pub fn synced_bytes(&self) -> Vec<u8> {
        let inner = self.inner.lock().expect("mem log lock");
        inner.buf[..inner.synced].to_vec()
    }

    /// Length of the durable prefix in bytes.
    pub fn synced_len(&self) -> usize {
        self.inner.lock().expect("mem log lock").synced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_tracks_sync_watermark() {
        let (mut s, h) = MemStorage::new();
        s.append(b"abc").unwrap();
        assert_eq!(h.bytes(), b"abc");
        assert_eq!(h.synced_len(), 0, "nothing durable before sync");
        s.sync().unwrap();
        s.append(b"de").unwrap();
        assert_eq!(h.synced_bytes(), b"abc");
        assert_eq!(h.bytes(), b"abcde");
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn reopen_truncates_the_torn_tail_before_appending() {
        let path = std::env::temp_dir().join("relser_wal_storage_reopen_test.log");
        {
            let mut s = FileStorage::create(&path).unwrap();
            s.append(b"goodTORN").unwrap();
            s.sync().unwrap();
        }
        {
            let mut s = FileStorage::reopen(&path, 4).unwrap();
            assert_eq!(s.len(), 4);
            s.append(b"new").unwrap();
            s.sync().unwrap();
        }
        assert_eq!(std::fs::read(&path).unwrap(), b"goodnew");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_storage_roundtrips() {
        let path = std::env::temp_dir().join("relser_wal_storage_test.log");
        {
            let mut s = FileStorage::create(&path).unwrap();
            s.append(b"hello").unwrap();
            s.sync().unwrap();
            assert_eq!(s.len(), 5);
        }
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        std::fs::remove_file(&path).ok();
    }
}
