//! CRC-32 checksum, re-exported from the shared frame codec
//! ([`relser_frame`]) so the WAL and the wire protocol can never drift
//! onto different polynomials. Kept as a module so existing
//! `relser_wal::crc32::crc32` paths keep working.

pub use relser_frame::crc32::crc32;
