//! The append side: [`WalWriter`] frames records onto a [`Storage`]
//! backend under a configurable [`FsyncPolicy`].
//!
//! Group commit falls out of the admission core's existing batching: the
//! core calls [`WalWriter::append`] per state-changing command and
//! [`WalWriter::batch_end`] once per drained queue batch, so deferred
//! policies (`EveryN`, `Interval`) amortize one durability barrier over a
//! whole batch of commits — the classic group-commit trade of latency for
//! throughput. `Always` syncs inside `append`, *before* the core
//! acknowledges the command, which is what makes "zero acknowledged
//! commits lost" provable in the crash-point sweep.

use crate::record::{WalRecord, MAGIC};
use crate::storage::Storage;
use std::io;
use std::time::{Duration, Instant};

/// When the writer issues a durability barrier ([`Storage::sync`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every record, before the record is acknowledged. No
    /// acknowledged work is ever lost; slowest.
    Always,
    /// Sync once at least `n` records have accumulated since the last
    /// barrier (checked per append and at batch boundaries).
    EveryN(u64),
    /// Sync when at least this long has passed since the last barrier
    /// (checked at batch boundaries — aligned with group commit).
    Interval(Duration),
    /// Never sync mid-run; only a clean [`WalWriter::close`] syncs. A
    /// crash may lose everything since the start of the run.
    Never,
}

/// Append-side counters, surfaced through the server metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub records: u64,
    /// Bytes appended (frames + file header).
    pub bytes: u64,
    /// Durability barriers issued.
    pub syncs: u64,
}

/// Frames [`WalRecord`]s onto a storage backend; see the module docs.
pub struct WalWriter {
    storage: Box<dyn Storage>,
    policy: FsyncPolicy,
    scratch: Vec<u8>,
    unsynced: u64,
    last_sync: Instant,
    stats: WalStats,
    sync_ns: Vec<u64>,
    broken: bool,
}

impl WalWriter {
    /// Starts a fresh log on `storage`: writes the file header (and, under
    /// [`FsyncPolicy::Always`], makes it durable immediately).
    pub fn new(mut storage: Box<dyn Storage>, policy: FsyncPolicy) -> io::Result<WalWriter> {
        storage.append(MAGIC)?;
        let mut w = WalWriter {
            storage,
            policy,
            scratch: Vec::with_capacity(64),
            unsynced: 0,
            last_sync: Instant::now(),
            stats: WalStats {
                records: 0,
                bytes: MAGIC.len() as u64,
                syncs: 0,
            },
            sync_ns: Vec::new(),
            broken: false,
        };
        if policy == FsyncPolicy::Always {
            w.sync_now()?;
        }
        Ok(w)
    }

    /// Resumes appending to an existing log whose header is already on
    /// `storage` (the reopen-after-recovery path: the caller truncates the
    /// file to the scanner's `valid_bytes` first, then resumes). Writes
    /// nothing; the byte counter continues from `storage.len()`.
    pub fn resume(storage: Box<dyn Storage>, policy: FsyncPolicy) -> WalWriter {
        let bytes = storage.len();
        WalWriter {
            storage,
            policy,
            scratch: Vec::with_capacity(64),
            unsynced: 0,
            last_sync: Instant::now(),
            stats: WalStats {
                records: 0,
                bytes,
                syncs: 0,
            },
            sync_ns: Vec::new(),
            broken: false,
        }
    }

    /// The writer's fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Appends one record and applies the per-record policy. On `Ok`
    /// under [`FsyncPolicy::Always`], the record is durable.
    ///
    /// Any error marks the writer broken: the log tail is in an unknown
    /// state, so the caller must fail-stop (crash the core) and let
    /// recovery truncate at the damage.
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        self.check_broken()?;
        self.scratch.clear();
        if let Err(e) = rec.encode_into(&mut self.scratch) {
            // An unencodable record is a logic error upstream, but the log
            // itself is still intact: nothing was appended. Refuse the
            // record without poisoning the writer.
            return Err(io::Error::new(io::ErrorKind::InvalidInput, e));
        }
        if let Err(e) = self.storage.append(&self.scratch) {
            self.broken = true;
            return Err(e);
        }
        self.stats.records += 1;
        self.stats.bytes += self.scratch.len() as u64;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync_now(),
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync_now()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Interval(_) | FsyncPolicy::Never => Ok(()),
        }
    }

    /// Group-commit barrier, called once per drained queue batch. A no-op
    /// unless the policy's deferred threshold is due.
    pub fn batch_end(&mut self) -> io::Result<()> {
        self.maybe_sync()
    }

    /// Syncs if the policy's deferred threshold is due; otherwise a no-op.
    ///
    /// Called from batch boundaries *and* from the core's idle tick: an
    /// `Interval` policy whose due-check only ran after a drained batch
    /// would never sync while the queue sits idle, leaving acknowledged
    /// records in the unsynced window indefinitely. The idle tick closes
    /// that hole.
    pub fn maybe_sync(&mut self) -> io::Result<()> {
        self.check_broken()?;
        let due = match self.policy {
            FsyncPolicy::Always | FsyncPolicy::Never => false,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::Interval(d) => self.unsynced > 0 && self.last_sync.elapsed() >= d,
        };
        if due {
            self.sync_now()?;
        }
        Ok(())
    }

    /// Forced durability barrier, regardless of policy. Segment rotation
    /// uses this: a checkpoint must be durable before the segments it
    /// replaces may be deleted.
    pub fn sync(&mut self) -> io::Result<()> {
        self.check_broken()?;
        if self.unsynced > 0 || self.stats.syncs == 0 {
            self.sync_now()?;
        }
        Ok(())
    }

    /// Clean shutdown: a final durability barrier regardless of policy.
    /// (A crash is modelled by *not* calling this.)
    pub fn close(&mut self) -> io::Result<()> {
        self.check_broken()?;
        if self.unsynced > 0 || self.stats.syncs == 0 {
            self.sync_now()?;
        }
        Ok(())
    }

    /// Append-side counters so far.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Has a storage error poisoned the writer?
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    fn check_broken(&self) -> io::Result<()> {
        if self.broken {
            Err(io::Error::other(
                "write-ahead log is broken (earlier storage error)",
            ))
        } else {
            Ok(())
        }
    }

    fn sync_now(&mut self) -> io::Result<()> {
        let t0 = Instant::now();
        if let Err(e) = self.storage.sync() {
            self.broken = true;
            return Err(e);
        }
        self.sync_ns.push(t0.elapsed().as_nanos() as u64);
        self.stats.syncs += 1;
        self.unsynced = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Drains the wall-clock duration (ns) of every durability barrier
    /// issued since the last call. The admission core harvests these into
    /// the per-stage latency report; keeping raw samples (not a
    /// histogram) keeps this crate free of metrics dependencies.
    pub fn take_sync_ns(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.sync_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use relser_core::ids::TxnId;

    #[test]
    fn always_policy_syncs_every_record() {
        let (mem, handle) = MemStorage::new();
        let mut w = WalWriter::new(Box::new(mem), FsyncPolicy::Always).unwrap();
        w.append(&WalRecord::Begin(TxnId(0))).unwrap();
        w.append(&WalRecord::Commit(TxnId(0))).unwrap();
        assert_eq!(w.stats().records, 2);
        assert_eq!(w.stats().syncs, 3, "header + one per record");
        assert_eq!(
            handle.synced_len(),
            handle.bytes().len(),
            "everything appended is durable"
        );
    }

    #[test]
    fn every_n_defers_to_the_threshold() {
        let (mem, handle) = MemStorage::new();
        let mut w = WalWriter::new(Box::new(mem), FsyncPolicy::EveryN(3)).unwrap();
        w.append(&WalRecord::Begin(TxnId(0))).unwrap();
        w.append(&WalRecord::Begin(TxnId(1))).unwrap();
        assert_eq!(handle.synced_len(), 0, "below threshold: nothing durable");
        w.append(&WalRecord::Begin(TxnId(2))).unwrap();
        assert_eq!(handle.synced_len(), handle.bytes().len(), "threshold hit");
    }

    #[test]
    fn never_policy_only_syncs_on_close() {
        let (mem, handle) = MemStorage::new();
        let mut w = WalWriter::new(Box::new(mem), FsyncPolicy::Never).unwrap();
        w.append(&WalRecord::Begin(TxnId(0))).unwrap();
        w.batch_end().unwrap();
        assert_eq!(handle.synced_len(), 0);
        w.close().unwrap();
        assert_eq!(handle.synced_len(), handle.bytes().len());
    }

    #[test]
    fn interval_policy_syncs_on_idle_tick_without_a_batch() {
        let (mem, handle) = MemStorage::new();
        let mut w = WalWriter::new(Box::new(mem), FsyncPolicy::Interval(Duration::ZERO)).unwrap();
        w.append(&WalRecord::Begin(TxnId(0))).unwrap();
        assert_eq!(handle.synced_len(), 0, "append alone defers");
        // No batch boundary — the idle tick alone must flush a due interval.
        w.maybe_sync().unwrap();
        assert_eq!(handle.synced_len(), handle.bytes().len());
    }

    #[test]
    fn resume_continues_an_existing_log_without_a_second_header() {
        let (mem, handle) = MemStorage::new();
        let mut w = WalWriter::new(Box::new(mem), FsyncPolicy::Always).unwrap();
        w.append(&WalRecord::Begin(TxnId(0))).unwrap();
        w.close().unwrap();
        let before = handle.bytes();
        let (mut mem2, handle2) = MemStorage::new();
        mem2.append(&before).unwrap();
        let mut w2 = WalWriter::resume(Box::new(mem2), FsyncPolicy::Always);
        w2.append(&WalRecord::Commit(TxnId(0))).unwrap();
        let bytes = handle2.bytes();
        let scan = crate::scan(&bytes);
        assert_eq!(scan.truncation, None);
        assert_eq!(
            scan.records,
            vec![WalRecord::Begin(TxnId(0)), WalRecord::Commit(TxnId(0))]
        );
    }

    #[test]
    fn interval_policy_syncs_at_batch_end_once_due() {
        let (mem, handle) = MemStorage::new();
        let mut w = WalWriter::new(Box::new(mem), FsyncPolicy::Interval(Duration::ZERO)).unwrap();
        w.append(&WalRecord::Begin(TxnId(0))).unwrap();
        assert_eq!(handle.synced_len(), 0, "interval checks only at batch end");
        w.batch_end().unwrap();
        assert_eq!(handle.synced_len(), handle.bytes().len());
    }
}
