//! The log record vocabulary and its on-disk framing.
//!
//! The admission core is the run's serialization point, so the log is
//! simply its state-changing events in core order: `Begin`, `Grant`,
//! `Commit`, `Abort`. Blocked probes change no state and are not logged —
//! replaying the granted stream through a fresh scheduler reproduces the
//! exact scheduler state (see `relser-server`'s recovery manager). A
//! fifth record, [`WalRecord::Checkpoint`], snapshots the core's live
//! state so recovery can seed from it and replay only the suffix, and so
//! older log segments can be deleted (see `crate::segment`).
//!
//! Framing, per record:
//!
//! ```text
//! +------------+-----------+------------------+
//! | len: u32LE | crc: u32LE| payload (len B)  |
//! +------------+-----------+------------------+
//! payload = tag: u8, txn: u32LE [, index: u32LE for Grant]
//!                               [, stamp: u64LE for CommitAt]
//!                               [, stamp/session/req_id: u64LE ×3
//!                                  for CommitSession]
//! checkpoint payload = tag: u8, shard: u32LE,
//!                      committed count: u32LE, committed txns: u32LE…,
//!                      event count: u32LE,
//!                      events: kind u8, txn u32LE [, index u32LE]…,
//!                      session count: u32LE,
//!                      sessions: session u64LE, req_id u64LE, txn u32LE…
//! ```
//!
//! `crc` is the CRC-32 of the payload. A record is accepted only if the
//! whole frame is present, `len` is sane, the checksum matches, and the
//! payload parses — anything else is treated as the torn/corrupt tail of
//! a crashed write and truncated by the scanner ([`crate::scan`]).

use relser_core::ids::{OpId, TxnId};
use relser_frame::{begin_frame, finish_frame};
use std::fmt;

/// File magic: identifies a relser WAL and pins the format version.
pub const MAGIC: &[u8; 8] = b"RSWAL01\n";

/// Upper bound on a sane payload length. Event records are ≤ 9 bytes;
/// checkpoint payloads scale with the number of live (non-retired)
/// transactions, so the bound is generous — but still a bound: a length
/// prefix beyond it means the frame header itself is corrupt, and an
/// encode that would exceed it is a typed error, never a silent `u32`
/// wrap.
pub const MAX_PAYLOAD: u32 = 1 << 16;

/// Bytes of framing per record (length prefix + checksum), from the
/// shared codec.
pub const FRAME_OVERHEAD: usize = relser_frame::FRAME_OVERHEAD;

const TAG_BEGIN: u8 = 1;
const TAG_GRANT: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_CHECKPOINT: u8 = 5;
const TAG_COMMIT_AT: u8 = 6;
const TAG_COMMIT_SESSION: u8 = 7;

const EV_BEGIN: u8 = 1;
const EV_GRANT: u8 = 2;
const EV_COMMIT: u8 = 3;

/// The payload would not fit the frame format. Returned by
/// [`WalRecord::encode_into`] instead of letting the `as u32` length cast
/// wrap silently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// The encoded payload exceeds [`MAX_PAYLOAD`] bytes.
    PayloadTooLarge {
        /// The payload size that did not fit.
        len: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::PayloadTooLarge { len } => write!(
                f,
                "record payload of {len} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

/// One live-state event inside a [`Checkpoint`]: the condensed,
/// retirement-free replay stream that reconstructs the admission core's
/// scheduler state, in core order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointEvent {
    /// The incarnation started (and had not aborted by checkpoint time).
    Begin(TxnId),
    /// The operation was granted (and its incarnation survived).
    Grant(OpId),
    /// The transaction committed but was not yet retired by the
    /// scheduler, so later admissions may still order against it.
    Commit(TxnId),
}

impl CheckpointEvent {
    fn encoded_len(&self) -> usize {
        match self {
            CheckpointEvent::Grant(_) => 9,
            _ => 5,
        }
    }
}

/// One durable client-session acknowledgment: session `session` was
/// answered `Committed` for request `req_id`, which committed `txn`.
/// Carried by [`WalRecord::CommitSession`] (live appends) and inside
/// [`Checkpoint::sessions`] (so compaction cannot forget an acked
/// commit's reply). Recovery rebuilds the exactly-once retry table from
/// exactly these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionEntry {
    /// The client session id (chosen by the client at `Hello`).
    pub session: u64,
    /// The client's request id for the commit.
    pub req_id: u64,
    /// The transaction the commit acknowledged.
    pub txn: TxnId,
}

/// A snapshot of the admission core's live state, logged as the first
/// record of every segment (and whenever the checkpoint policy fires).
///
/// `committed` is the full commit-order list — bounded by the transaction
/// universe since each [`TxnId`] commits at most once — and `events` is
/// the condensed event stream of the *non-retired* transactions only.
/// Recovery replays `events` through a fresh scheduler, takes `committed`
/// as the acknowledged-commit set, then replays the post-checkpoint
/// suffix; everything before the checkpoint can be deleted. `sessions`
/// carries the client-session retry table forward across rotations the
/// same way `committed` carries the commit set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Checkpoint {
    /// The shard core that wrote this checkpoint (0 in the unsharded
    /// service). Recovery uses it to reject a segment stream that was
    /// accidentally fed to the wrong shard's recovery manager.
    pub shard: u32,
    /// Transactions committed so far, in commit order.
    pub committed: Vec<TxnId>,
    /// Condensed live-state events (non-retired transactions), core order.
    pub events: Vec<CheckpointEvent>,
    /// The client-session table at checkpoint time: every acknowledged
    /// `(session, req_id) → txn` commit reply still retained for replay.
    pub sessions: Vec<SessionEntry>,
}

/// One durable event, in admission-core order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction incarnation started.
    Begin(TxnId),
    /// An operation request was granted (the only request outcome that
    /// changes committed state; blocks are not logged, aborts log
    /// [`WalRecord::Abort`]).
    Grant(OpId),
    /// The transaction committed. Under `FsyncPolicy::Always` this record
    /// is durable before the core acknowledges the commit.
    Commit(TxnId),
    /// The transaction (incarnation) aborted — scheduler-initiated,
    /// session timeout, or injected; recovery treats them all alike.
    Abort(TxnId),
    /// The transaction committed at a global commit stamp. Written by
    /// shard cores: the stamp totally orders commits *across* per-shard
    /// segment streams, so sharded recovery can rebuild one commit order.
    /// A multi-shard transaction writes the same `(txn, stamp)` pair into
    /// every owning shard's log; it counts as committed only if the
    /// record is present on *all* of them.
    CommitAt {
        /// The committing transaction.
        txn: TxnId,
        /// Its position in the global commit order.
        stamp: u64,
    },
    /// [`WalRecord::CommitAt`] fused with a client-session acknowledgment
    /// in **one** frame: the commit and the fact that session `session`
    /// was answered for request `req_id` become durable atomically. Two
    /// separate records would open a torn window (commit durable, session
    /// entry not) in which a retried commit re-executes — the
    /// exactly-once contract hangs on this frame being indivisible.
    CommitSession {
        /// The committing transaction.
        txn: TxnId,
        /// Its position in the global commit order.
        stamp: u64,
        /// The client session the commit was acknowledged to.
        session: u64,
        /// The client's request id for the commit.
        req_id: u64,
    },
    /// A live-state snapshot; recovery seeds from the newest one and
    /// replays only the records after it.
    Checkpoint(Checkpoint),
}

impl WalRecord {
    /// The transaction this record is about; `None` for records that span
    /// the whole state (checkpoints).
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            WalRecord::Begin(t) | WalRecord::Commit(t) | WalRecord::Abort(t) => Some(*t),
            WalRecord::CommitAt { txn, .. } | WalRecord::CommitSession { txn, .. } => Some(*txn),
            WalRecord::Grant(op) => Some(op.txn),
            WalRecord::Checkpoint(_) => None,
        }
    }

    /// Serialises the payload (tag + fields, no framing) into `buf`.
    fn payload_into(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::Begin(t) => {
                buf.push(TAG_BEGIN);
                buf.extend_from_slice(&t.0.to_le_bytes());
            }
            WalRecord::Grant(op) => {
                buf.push(TAG_GRANT);
                buf.extend_from_slice(&op.txn.0.to_le_bytes());
                buf.extend_from_slice(&op.index.to_le_bytes());
            }
            WalRecord::Commit(t) => {
                buf.push(TAG_COMMIT);
                buf.extend_from_slice(&t.0.to_le_bytes());
            }
            WalRecord::Abort(t) => {
                buf.push(TAG_ABORT);
                buf.extend_from_slice(&t.0.to_le_bytes());
            }
            WalRecord::CommitAt { txn, stamp } => {
                buf.push(TAG_COMMIT_AT);
                buf.extend_from_slice(&txn.0.to_le_bytes());
                buf.extend_from_slice(&stamp.to_le_bytes());
            }
            WalRecord::CommitSession {
                txn,
                stamp,
                session,
                req_id,
            } => {
                buf.push(TAG_COMMIT_SESSION);
                buf.extend_from_slice(&txn.0.to_le_bytes());
                buf.extend_from_slice(&stamp.to_le_bytes());
                buf.extend_from_slice(&session.to_le_bytes());
                buf.extend_from_slice(&req_id.to_le_bytes());
            }
            WalRecord::Checkpoint(cp) => {
                buf.push(TAG_CHECKPOINT);
                buf.extend_from_slice(&cp.shard.to_le_bytes());
                buf.extend_from_slice(&(cp.committed.len() as u32).to_le_bytes());
                for t in &cp.committed {
                    buf.extend_from_slice(&t.0.to_le_bytes());
                }
                buf.extend_from_slice(&(cp.events.len() as u32).to_le_bytes());
                for ev in &cp.events {
                    match ev {
                        CheckpointEvent::Begin(t) => {
                            buf.push(EV_BEGIN);
                            buf.extend_from_slice(&t.0.to_le_bytes());
                        }
                        CheckpointEvent::Grant(op) => {
                            buf.push(EV_GRANT);
                            buf.extend_from_slice(&op.txn.0.to_le_bytes());
                            buf.extend_from_slice(&op.index.to_le_bytes());
                        }
                        CheckpointEvent::Commit(t) => {
                            buf.push(EV_COMMIT);
                            buf.extend_from_slice(&t.0.to_le_bytes());
                        }
                    }
                }
                buf.extend_from_slice(&(cp.sessions.len() as u32).to_le_bytes());
                for se in &cp.sessions {
                    buf.extend_from_slice(&se.session.to_le_bytes());
                    buf.extend_from_slice(&se.req_id.to_le_bytes());
                    buf.extend_from_slice(&se.txn.0.to_le_bytes());
                }
            }
        }
    }

    /// Appends the full frame (length, checksum, payload) to `buf`. On
    /// [`EncodeError`], `buf` is restored to its original length —
    /// nothing partial is ever left behind for storage to append.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<(), EncodeError> {
        let start = begin_frame(buf);
        self.payload_into(buf);
        finish_frame(buf, start, MAX_PAYLOAD)
            .map(|_| ())
            .map_err(|e| EncodeError::PayloadTooLarge { len: e.len })
    }

    /// Parses a checksum-verified payload. `None` on an unknown tag or a
    /// field/length mismatch (corruption that happened to keep a valid
    /// checksum cannot occur; this guards against truncated formats).
    pub fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let (&tag, rest) = payload.split_first()?;
        let u32_at = |b: &[u8], at: usize| -> Option<u32> {
            b.get(at..at + 4)
                .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
        };
        match tag {
            TAG_BEGIN if rest.len() == 4 => Some(WalRecord::Begin(TxnId(u32_at(rest, 0)?))),
            TAG_COMMIT if rest.len() == 4 => Some(WalRecord::Commit(TxnId(u32_at(rest, 0)?))),
            TAG_ABORT if rest.len() == 4 => Some(WalRecord::Abort(TxnId(u32_at(rest, 0)?))),
            TAG_GRANT if rest.len() == 8 => Some(WalRecord::Grant(OpId {
                txn: TxnId(u32_at(rest, 0)?),
                index: u32_at(rest, 4)?,
            })),
            TAG_COMMIT_AT if rest.len() == 12 => Some(WalRecord::CommitAt {
                txn: TxnId(u32_at(rest, 0)?),
                stamp: u64::from_le_bytes(rest.get(4..12)?.try_into().unwrap()),
            }),
            TAG_COMMIT_SESSION if rest.len() == 28 => Some(WalRecord::CommitSession {
                txn: TxnId(u32_at(rest, 0)?),
                stamp: u64::from_le_bytes(rest.get(4..12)?.try_into().unwrap()),
                session: u64::from_le_bytes(rest.get(12..20)?.try_into().unwrap()),
                req_id: u64::from_le_bytes(rest.get(20..28)?.try_into().unwrap()),
            }),
            TAG_CHECKPOINT => Self::decode_checkpoint(rest).map(WalRecord::Checkpoint),
            _ => None,
        }
    }

    /// Strict checkpoint-body parser: every byte must be consumed and
    /// every count must be exactly satisfied, so a truncated or padded
    /// body is rejected rather than silently partially accepted.
    fn decode_checkpoint(mut rest: &[u8]) -> Option<Checkpoint> {
        let take_u32 = |b: &mut &[u8]| -> Option<u32> {
            let head = b.get(..4)?;
            let v = u32::from_le_bytes(head.try_into().unwrap());
            *b = &b[4..];
            Some(v)
        };
        let shard = take_u32(&mut rest)?;
        let n_committed = take_u32(&mut rest)? as usize;
        // Counts are sanity-bounded by what could possibly fit in the
        // remaining bytes, so a corrupt count cannot drive a huge
        // pre-allocation.
        if n_committed > rest.len() / 4 {
            return None;
        }
        let mut committed = Vec::with_capacity(n_committed);
        for _ in 0..n_committed {
            committed.push(TxnId(take_u32(&mut rest)?));
        }
        let n_events = take_u32(&mut rest)? as usize;
        if n_events > rest.len() / 5 {
            return None;
        }
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let (&kind, tail) = rest.split_first()?;
            rest = tail;
            events.push(match kind {
                EV_BEGIN => CheckpointEvent::Begin(TxnId(take_u32(&mut rest)?)),
                EV_COMMIT => CheckpointEvent::Commit(TxnId(take_u32(&mut rest)?)),
                EV_GRANT => CheckpointEvent::Grant(OpId {
                    txn: TxnId(take_u32(&mut rest)?),
                    index: take_u32(&mut rest)?,
                }),
                _ => return None,
            });
        }
        let n_sessions = take_u32(&mut rest)? as usize;
        if n_sessions > rest.len() / 20 {
            return None;
        }
        let take_u64 = |b: &mut &[u8]| -> Option<u64> {
            let head = b.get(..8)?;
            let v = u64::from_le_bytes(head.try_into().unwrap());
            *b = &b[8..];
            Some(v)
        };
        let mut sessions = Vec::with_capacity(n_sessions);
        for _ in 0..n_sessions {
            sessions.push(SessionEntry {
                session: take_u64(&mut rest)?,
                req_id: take_u64(&mut rest)?,
                txn: TxnId(take_u32(&mut rest)?),
            });
        }
        if !rest.is_empty() {
            return None;
        }
        Some(Checkpoint {
            shard,
            committed,
            events,
            sessions,
        })
    }

    /// The encoded frame size of this record, in bytes.
    pub fn frame_len(&self) -> usize {
        FRAME_OVERHEAD
            + match self {
                WalRecord::Grant(_) => 9,
                WalRecord::CommitAt { .. } => 13,
                WalRecord::CommitSession { .. } => 29,
                WalRecord::Checkpoint(cp) => {
                    1 + 4
                        + 4
                        + 4 * cp.committed.len()
                        + 4
                        + cp.events.iter().map(|e| e.encoded_len()).sum::<usize>()
                        + 4
                        + 20 * cp.sessions.len()
                }
                _ => 5,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relser_frame::crc32;

    fn roundtrip(r: WalRecord) {
        let mut buf = Vec::new();
        r.encode_into(&mut buf).unwrap();
        assert_eq!(buf.len(), r.frame_len());
        let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        let payload = &buf[FRAME_OVERHEAD..FRAME_OVERHEAD + len];
        assert_eq!(crc, crc32(payload));
        assert_eq!(WalRecord::decode_payload(payload), Some(r));
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(WalRecord::Begin(TxnId(0)));
        roundtrip(WalRecord::Grant(OpId::new(TxnId(3), 17)));
        roundtrip(WalRecord::Commit(TxnId(u32::MAX)));
        roundtrip(WalRecord::Abort(TxnId(42)));
        roundtrip(WalRecord::CommitAt {
            txn: TxnId(9),
            stamp: u64::MAX - 1,
        });
        roundtrip(WalRecord::CommitSession {
            txn: TxnId(5),
            stamp: 17,
            session: u64::MAX,
            req_id: 0x1234_5678_9ABC_DEF0,
        });
        roundtrip(WalRecord::Checkpoint(Checkpoint::default()));
        roundtrip(WalRecord::Checkpoint(Checkpoint {
            shard: 3,
            committed: vec![TxnId(2), TxnId(0), TxnId(7)],
            events: vec![
                CheckpointEvent::Begin(TxnId(1)),
                CheckpointEvent::Grant(OpId::new(TxnId(1), 0)),
                CheckpointEvent::Commit(TxnId(1)),
                CheckpointEvent::Begin(TxnId(3)),
            ],
            sessions: vec![
                SessionEntry {
                    session: 11,
                    req_id: 900,
                    txn: TxnId(2),
                },
                SessionEntry {
                    session: u64::MAX,
                    req_id: 1,
                    txn: TxnId(7),
                },
            ],
        }));
    }

    #[test]
    fn oversized_payload_is_a_typed_error_not_a_wrap() {
        // Enough committed entries to push the payload past MAX_PAYLOAD.
        let huge = WalRecord::Checkpoint(Checkpoint {
            shard: 0,
            committed: (0..=(MAX_PAYLOAD / 4)).map(TxnId).collect(),
            events: Vec::new(),
            sessions: Vec::new(),
        });
        let mut buf = vec![0xAB; 3];
        let err = huge.encode_into(&mut buf).unwrap_err();
        assert!(matches!(
            err,
            EncodeError::PayloadTooLarge { len } if len > MAX_PAYLOAD as usize
        ));
        assert_eq!(buf, vec![0xAB; 3], "failed encode leaves no partial frame");
    }

    #[test]
    fn boundary_payload_still_encodes() {
        // The largest payload that fits: tag(1) + shard(4) + committed
        // count(4) + ids + event count(4) + session count(4).
        let ids = (MAX_PAYLOAD as usize - 1 - 4 - 4 - 4 - 4) / 4;
        let rec = WalRecord::Checkpoint(Checkpoint {
            shard: 0,
            committed: (0..ids as u32).map(TxnId).collect(),
            events: Vec::new(),
            sessions: Vec::new(),
        });
        assert_eq!(rec.frame_len(), FRAME_OVERHEAD + 17 + 4 * ids);
        assert!(rec.frame_len() - FRAME_OVERHEAD <= MAX_PAYLOAD as usize);
        let mut buf = Vec::new();
        rec.encode_into(&mut buf).unwrap();
        // One more id crosses the line.
        let rec = WalRecord::Checkpoint(Checkpoint {
            shard: 0,
            committed: (0..ids as u32 + 1).map(TxnId).collect(),
            events: Vec::new(),
            sessions: Vec::new(),
        });
        let mut buf = Vec::new();
        assert!(rec.encode_into(&mut buf).is_err());
    }

    #[test]
    fn bad_payloads_are_rejected() {
        assert_eq!(WalRecord::decode_payload(&[]), None);
        assert_eq!(WalRecord::decode_payload(&[99, 0, 0, 0, 0]), None);
        assert_eq!(
            WalRecord::decode_payload(&[TAG_BEGIN, 0, 0, 0]),
            None,
            "short field"
        );
        assert_eq!(
            WalRecord::decode_payload(&[TAG_BEGIN, 0, 0, 0, 0, 0]),
            None,
            "trailing garbage"
        );
        assert_eq!(WalRecord::decode_payload(&[TAG_GRANT, 1, 0, 0, 0]), None);
        assert_eq!(
            WalRecord::decode_payload(&[TAG_COMMIT_AT, 1, 0, 0, 0]),
            None,
            "commit-at missing its stamp"
        );
        let mut short = vec![TAG_COMMIT_SESSION];
        short.extend_from_slice(&[0u8; 27]);
        assert_eq!(
            WalRecord::decode_payload(&short),
            None,
            "commit-session truncated mid-field"
        );
    }

    #[test]
    fn corrupt_checkpoint_bodies_are_rejected() {
        let good = WalRecord::Checkpoint(Checkpoint {
            shard: 7,
            committed: vec![TxnId(1)],
            events: vec![CheckpointEvent::Grant(OpId::new(TxnId(0), 2))],
            sessions: vec![SessionEntry {
                session: 3,
                req_id: 12,
                txn: TxnId(1),
            }],
        });
        let mut frame = Vec::new();
        good.encode_into(&mut frame).unwrap();
        let payload = frame[FRAME_OVERHEAD..].to_vec();
        assert!(WalRecord::decode_payload(&payload).is_some());
        // Truncated anywhere inside the body: rejected.
        for cut in 1..payload.len() {
            assert_eq!(
                WalRecord::decode_payload(&payload[..cut]),
                None,
                "cut at {cut}"
            );
        }
        // Trailing garbage: rejected.
        let mut padded = payload.clone();
        padded.push(0);
        assert_eq!(WalRecord::decode_payload(&padded), None);
        // A count that claims more entries than the bytes could hold:
        // rejected without a giant allocation.
        let mut lying = vec![TAG_CHECKPOINT];
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(WalRecord::decode_payload(&lying), None);
        // An unknown event kind: rejected.
        let mut bad_kind = vec![TAG_CHECKPOINT];
        bad_kind.extend_from_slice(&0u32.to_le_bytes()); // shard
        bad_kind.extend_from_slice(&0u32.to_le_bytes()); // committed count
        bad_kind.extend_from_slice(&1u32.to_le_bytes()); // event count
        bad_kind.push(9);
        bad_kind.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(WalRecord::decode_payload(&bad_kind), None);
    }
}
