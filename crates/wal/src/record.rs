//! The log record vocabulary and its on-disk framing.
//!
//! The admission core is the run's serialization point, so the log is
//! simply its state-changing events in core order: `Begin`, `Grant`,
//! `Commit`, `Abort`. Blocked probes change no state and are not logged —
//! replaying the granted stream through a fresh scheduler reproduces the
//! exact scheduler state (see `relser-server`'s recovery manager).
//!
//! Framing, per record:
//!
//! ```text
//! +------------+-----------+------------------+
//! | len: u32LE | crc: u32LE| payload (len B)  |
//! +------------+-----------+------------------+
//! payload = tag: u8, txn: u32LE [, index: u32LE for Grant]
//! ```
//!
//! `crc` is the CRC-32 of the payload. A record is accepted only if the
//! whole frame is present, `len` is sane, the checksum matches, and the
//! payload parses — anything else is treated as the torn/corrupt tail of
//! a crashed write and truncated by the scanner ([`crate::scan`]).

use crate::crc32::crc32;
use relser_core::ids::{OpId, TxnId};

/// File magic: identifies a relser WAL and pins the format version.
pub const MAGIC: &[u8; 8] = b"RSWAL01\n";

/// Upper bound on a sane payload length. Real payloads are ≤ 9 bytes;
/// anything larger means the length prefix itself is corrupt.
pub const MAX_PAYLOAD: u32 = 64;

/// Bytes of framing per record (length prefix + checksum).
pub const FRAME_OVERHEAD: usize = 8;

const TAG_BEGIN: u8 = 1;
const TAG_GRANT: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;

/// One durable event, in admission-core order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction incarnation started.
    Begin(TxnId),
    /// An operation request was granted (the only request outcome that
    /// changes committed state; blocks are not logged, aborts log
    /// [`WalRecord::Abort`]).
    Grant(OpId),
    /// The transaction committed. Under `FsyncPolicy::Always` this record
    /// is durable before the core acknowledges the commit.
    Commit(TxnId),
    /// The transaction (incarnation) aborted — scheduler-initiated,
    /// session timeout, or injected; recovery treats them all alike.
    Abort(TxnId),
}

impl WalRecord {
    /// The transaction this record is about.
    pub fn txn(&self) -> TxnId {
        match *self {
            WalRecord::Begin(t) | WalRecord::Commit(t) | WalRecord::Abort(t) => t,
            WalRecord::Grant(op) => op.txn,
        }
    }

    /// Serialises the payload (tag + fields, no framing) into `buf`.
    fn payload_into(&self, buf: &mut Vec<u8>) {
        match *self {
            WalRecord::Begin(t) => {
                buf.push(TAG_BEGIN);
                buf.extend_from_slice(&t.0.to_le_bytes());
            }
            WalRecord::Grant(op) => {
                buf.push(TAG_GRANT);
                buf.extend_from_slice(&op.txn.0.to_le_bytes());
                buf.extend_from_slice(&op.index.to_le_bytes());
            }
            WalRecord::Commit(t) => {
                buf.push(TAG_COMMIT);
                buf.extend_from_slice(&t.0.to_le_bytes());
            }
            WalRecord::Abort(t) => {
                buf.push(TAG_ABORT);
                buf.extend_from_slice(&t.0.to_le_bytes());
            }
        }
    }

    /// Appends the full frame (length, checksum, payload) to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.extend_from_slice(&[0u8; FRAME_OVERHEAD]);
        self.payload_into(buf);
        let payload_len = (buf.len() - start - FRAME_OVERHEAD) as u32;
        let crc = crc32(&buf[start + FRAME_OVERHEAD..]);
        buf[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
        buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    }

    /// Parses a checksum-verified payload. `None` on an unknown tag or a
    /// field/length mismatch (corruption that happened to keep a valid
    /// checksum cannot occur; this guards against truncated formats).
    pub fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let (&tag, rest) = payload.split_first()?;
        let u32_at = |b: &[u8], at: usize| -> Option<u32> {
            b.get(at..at + 4)
                .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
        };
        match tag {
            TAG_BEGIN if rest.len() == 4 => Some(WalRecord::Begin(TxnId(u32_at(rest, 0)?))),
            TAG_COMMIT if rest.len() == 4 => Some(WalRecord::Commit(TxnId(u32_at(rest, 0)?))),
            TAG_ABORT if rest.len() == 4 => Some(WalRecord::Abort(TxnId(u32_at(rest, 0)?))),
            TAG_GRANT if rest.len() == 8 => Some(WalRecord::Grant(OpId {
                txn: TxnId(u32_at(rest, 0)?),
                index: u32_at(rest, 4)?,
            })),
            _ => None,
        }
    }

    /// The encoded frame size of this record, in bytes.
    pub fn frame_len(&self) -> usize {
        FRAME_OVERHEAD
            + match self {
                WalRecord::Grant(_) => 9,
                _ => 5,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(r: WalRecord) {
        let mut buf = Vec::new();
        r.encode_into(&mut buf);
        assert_eq!(buf.len(), r.frame_len());
        let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        let payload = &buf[FRAME_OVERHEAD..FRAME_OVERHEAD + len];
        assert_eq!(crc, crc32(payload));
        assert_eq!(WalRecord::decode_payload(payload), Some(r));
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(WalRecord::Begin(TxnId(0)));
        roundtrip(WalRecord::Grant(OpId::new(TxnId(3), 17)));
        roundtrip(WalRecord::Commit(TxnId(u32::MAX)));
        roundtrip(WalRecord::Abort(TxnId(42)));
    }

    #[test]
    fn bad_payloads_are_rejected() {
        assert_eq!(WalRecord::decode_payload(&[]), None);
        assert_eq!(WalRecord::decode_payload(&[99, 0, 0, 0, 0]), None);
        assert_eq!(
            WalRecord::decode_payload(&[TAG_BEGIN, 0, 0, 0]),
            None,
            "short field"
        );
        assert_eq!(
            WalRecord::decode_payload(&[TAG_BEGIN, 0, 0, 0, 0, 0]),
            None,
            "trailing garbage"
        );
        assert_eq!(WalRecord::decode_payload(&[TAG_GRANT, 1, 0, 0, 0]), None);
    }
}
