//! The read side: a torn-write-tolerant scanner.
//!
//! [`scan`] walks the byte log from the header forward, accepting each
//! record only if its whole frame is present, its length prefix is sane,
//! its checksum matches, and its payload parses. The first violation
//! *stops* the scan: everything before it is the longest valid prefix,
//! everything after is assumed to be the torn or corrupt tail of a
//! crashed write. Scanning never panics on arbitrary bytes — that is the
//! property the storage fault injector hammers on.

use crate::record::{WalRecord, MAGIC, MAX_PAYLOAD};
use relser_frame::{decode_frame, FrameError};

/// Why the scan stopped before the end of the byte log. `None` in
/// [`ScanResult::truncation`] means the log ended cleanly at a record
/// boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Truncation {
    /// The file header is missing or garbled (empty file, torn header
    /// write, or not a relser WAL at all). Zero records recoverable.
    BadMagic,
    /// The final frame is incomplete: `have` bytes present, `need`
    /// expected. The classic torn tail.
    TornFrame {
        /// Byte offset of the torn frame.
        at: usize,
        /// Bytes of the frame actually present.
        have: usize,
        /// Bytes the frame's header claims it needs.
        need: usize,
    },
    /// The length prefix is beyond [`MAX_PAYLOAD`] — the frame header
    /// itself is corrupt.
    BadLength {
        /// Byte offset of the corrupt frame.
        at: usize,
        /// The nonsensical length read.
        len: u32,
    },
    /// The payload checksum does not match (bit rot or a torn interior).
    BadCrc {
        /// Byte offset of the corrupt frame.
        at: usize,
    },
    /// The checksum held but the payload does not parse (unknown tag or
    /// field-length mismatch — a format version skew).
    BadPayload {
        /// Byte offset of the unparseable frame.
        at: usize,
    },
}

/// The longest valid prefix of a byte log.
#[derive(Clone, Debug)]
pub struct ScanResult {
    /// The decoded records of the valid prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Length in bytes of the valid prefix (header + whole records); the
    /// log should be truncated here before further appends.
    pub valid_bytes: usize,
    /// Byte offset *after* each accepted record: `boundaries[0]` is the
    /// header length, `boundaries[k]` the offset after record `k-1`.
    /// The crash-point sweep truncates at exactly these offsets.
    pub boundaries: Vec<usize>,
    /// Why the scan stopped early, or `None` for a clean end.
    pub truncation: Option<Truncation>,
}

/// Scans `bytes`, returning the longest valid record prefix; see the
/// module docs. Total, never panics.
pub fn scan(bytes: &[u8]) -> ScanResult {
    let mut result = ScanResult {
        records: Vec::new(),
        valid_bytes: 0,
        boundaries: Vec::new(),
        truncation: None,
    };
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        result.truncation = Some(Truncation::BadMagic);
        return result;
    }
    let mut at = MAGIC.len();
    result.valid_bytes = at;
    result.boundaries.push(at);
    while at < bytes.len() {
        let frame = match decode_frame(&bytes[at..], MAX_PAYLOAD) {
            Ok(frame) => frame,
            Err(FrameError::Incomplete { have, need }) => {
                result.truncation = Some(Truncation::TornFrame { at, have, need });
                return result;
            }
            Err(FrameError::BadLength { len }) => {
                result.truncation = Some(Truncation::BadLength { at, len });
                return result;
            }
            Err(FrameError::BadCrc) => {
                result.truncation = Some(Truncation::BadCrc { at });
                return result;
            }
        };
        let Some(record) = WalRecord::decode_payload(frame.payload) else {
            result.truncation = Some(Truncation::BadPayload { at });
            return result;
        };
        result.records.push(record);
        at += frame.consumed;
        result.valid_bytes = at;
        result.boundaries.push(at);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use relser_core::ids::{OpId, TxnId};

    fn sample_log() -> (Vec<u8>, Vec<WalRecord>) {
        let records = vec![
            WalRecord::Checkpoint(crate::record::Checkpoint::default()),
            WalRecord::Begin(TxnId(0)),
            WalRecord::Grant(OpId::new(TxnId(0), 0)),
            WalRecord::Grant(OpId::new(TxnId(0), 1)),
            WalRecord::Checkpoint(crate::record::Checkpoint {
                shard: 0,
                committed: vec![],
                events: vec![
                    crate::record::CheckpointEvent::Begin(TxnId(0)),
                    crate::record::CheckpointEvent::Grant(OpId::new(TxnId(0), 0)),
                    crate::record::CheckpointEvent::Grant(OpId::new(TxnId(0), 1)),
                ],
                sessions: vec![],
            }),
            WalRecord::Commit(TxnId(0)),
            WalRecord::Begin(TxnId(1)),
            WalRecord::Abort(TxnId(1)),
        ];
        let mut bytes = MAGIC.to_vec();
        for r in &records {
            r.encode_into(&mut bytes).unwrap();
        }
        (bytes, records)
    }

    #[test]
    fn clean_log_scans_fully() {
        let (bytes, records) = sample_log();
        let scan = scan(&bytes);
        assert_eq!(scan.records, records);
        assert_eq!(scan.valid_bytes, bytes.len());
        assert_eq!(scan.truncation, None);
        assert_eq!(scan.boundaries.len(), records.len() + 1);
        assert_eq!(*scan.boundaries.last().unwrap(), bytes.len());
    }

    #[test]
    fn every_byte_truncation_yields_a_valid_record_prefix() {
        let (bytes, records) = sample_log();
        let full = scan(&bytes);
        for cut in 0..bytes.len() {
            let s = scan(&bytes[..cut]);
            // The recovered records are exactly those whose boundary fits.
            let whole = full.boundaries.iter().filter(|&&b| b <= cut).count();
            let expect = whole.saturating_sub(1); // boundary[0] is the header
            assert_eq!(s.records.len(), expect, "cut at {cut}");
            assert_eq!(s.records[..], records[..expect]);
            assert!(s.valid_bytes <= cut);
            if cut < MAGIC.len() {
                assert_eq!(s.truncation, Some(Truncation::BadMagic));
            } else if !full.boundaries.contains(&cut) {
                assert!(
                    s.truncation.is_some(),
                    "mid-record cut at {cut} must be flagged"
                );
            } else {
                assert_eq!(s.truncation, None, "boundary cut at {cut} is clean");
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let (bytes, records) = sample_log();
        for byte in MAGIC.len()..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                let s = scan(&corrupt);
                // The scan must stop at or before the corrupted record and
                // every accepted record must be from the true prefix.
                assert!(
                    s.records.len() < records.len() || s.records[..] == records[..],
                    "flip at {byte}:{bit}"
                );
                for (i, r) in s.records.iter().enumerate() {
                    assert_eq!(*r, records[i], "flip at {byte}:{bit} forged record {i}");
                }
            }
        }
    }

    #[test]
    fn garbage_and_empty_inputs_are_total() {
        assert_eq!(scan(&[]).records.len(), 0);
        assert_eq!(scan(&[0xFF; 100]).truncation, Some(Truncation::BadMagic));
        let mut bad_len = MAGIC.to_vec();
        bad_len.extend_from_slice(&u32::MAX.to_le_bytes());
        bad_len.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            scan(&bad_len).truncation,
            Some(Truncation::BadLength { len: u32::MAX, .. })
        ));
    }
}
