//! The [`CommitLog`] abstraction: what the admission core needs from a
//! durable log, whether it is a single append-only file
//! ([`crate::WalWriter`]) or a checkpointed, segment-compacting one
//! ([`crate::SegmentedWal`]).
//!
//! The core drives the log with exactly five verbs — append a record
//! (WAL-before-ack), end a batch (group-commit barrier), tick while idle
//! (deferred-policy flush), close cleanly, read counters — plus the
//! checkpoint protocol: the *log* decides when a checkpoint is due
//! (`checkpoint_due`), the *core* supplies the state snapshot
//! (`install_checkpoint`), because only the core knows its live state and
//! only the log knows its segment sizes.

use crate::record::{Checkpoint, WalRecord};
use crate::writer::{FsyncPolicy, WalStats, WalWriter};
use std::io;

/// A durable commit log, from the admission core's point of view.
pub trait CommitLog: Send {
    /// Appends one record under the log's fsync policy; on `Ok` under
    /// [`FsyncPolicy::Always`] the record is durable. Any error means the
    /// caller must fail-stop.
    fn append(&mut self, rec: &WalRecord) -> io::Result<()>;

    /// Group-commit barrier, once per drained queue batch.
    fn batch_end(&mut self) -> io::Result<()>;

    /// Deferred-policy flush opportunity, called while the queue is idle
    /// so an `Interval` policy cannot strand acknowledged records in the
    /// unsynced window forever.
    fn maybe_sync(&mut self) -> io::Result<()>;

    /// Clean shutdown: a final durability barrier.
    fn close(&mut self) -> io::Result<()>;

    /// Append-side counters so far (across all segments, if any).
    fn stats(&self) -> WalStats;

    /// The log's fsync policy (the core derives its idle-tick cadence
    /// from an `Interval` policy).
    fn policy(&self) -> FsyncPolicy;

    /// Drains the wall-clock duration (ns) of every durability barrier
    /// since the last call — the fsync stage of the per-stage latency
    /// report. Logs that do not track barrier timings return empty.
    fn take_sync_ns(&mut self) -> Vec<u64> {
        Vec::new()
    }

    /// Does this log use checkpoints at all? When `false` (the plain
    /// single-file writer), the core skips live-state tracking entirely.
    fn wants_checkpoints(&self) -> bool {
        false
    }

    /// Is a checkpoint due under the log's policy? Only meaningful when
    /// [`CommitLog::wants_checkpoints`] is `true`.
    fn checkpoint_due(&self) -> bool {
        false
    }

    /// Installs a checkpoint snapshot (rotating / compacting as the
    /// implementation sees fit). The default is a no-op for logs without
    /// checkpoints.
    fn install_checkpoint(&mut self, _cp: Checkpoint) -> io::Result<()> {
        Ok(())
    }
}

impl CommitLog for WalWriter {
    fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        WalWriter::append(self, rec)
    }

    fn batch_end(&mut self) -> io::Result<()> {
        WalWriter::batch_end(self)
    }

    fn maybe_sync(&mut self) -> io::Result<()> {
        WalWriter::maybe_sync(self)
    }

    fn close(&mut self) -> io::Result<()> {
        WalWriter::close(self)
    }

    fn stats(&self) -> WalStats {
        WalWriter::stats(self)
    }

    fn policy(&self) -> FsyncPolicy {
        WalWriter::policy(self)
    }

    fn take_sync_ns(&mut self) -> Vec<u64> {
        WalWriter::take_sync_ns(self)
    }
}
