//! # relser-wal — a durable write-ahead commit log
//!
//! The concurrent service (`relser-server`) funnels every state change
//! through a single-writer admission core, which makes durability almost
//! free to specify: the core's state-changing events *in core order* are
//! already the run's serialization point, so logging exactly that stream
//! — begin / grant / commit / abort — is enough to reconstruct the
//! scheduler state and the committed history after a crash.
//!
//! The pieces:
//!
//! * [`record`] — the [`WalRecord`] vocabulary and its length-prefixed,
//!   CRC-32-checksummed frame format;
//! * [`storage`] — the [`Storage`] trait plus the real-file and
//!   in-memory backends (the model checker adds a fault-injecting one);
//! * [`writer`] — [`WalWriter`]: appends frames under a configurable
//!   [`FsyncPolicy`] with group-commit batching aligned to the core's
//!   queue batches;
//! * [`reader`] — [`scan`]: the torn-write-tolerant scanner that
//!   recovers the longest valid record prefix from arbitrary bytes;
//! * [`commit_log`] — the [`CommitLog`] trait the admission core drives,
//!   implemented by both the plain writer and the segmented log;
//! * [`segment`] — [`SegmentedWal`]: checkpoint-headed segments with
//!   rotation and deletion, bounding log size and recovery time by live
//!   state instead of history length.
//!
//! The recovery manager itself lives in `relser-server` (it needs a
//! scheduler to replay into and the RSG oracle to re-certify); this crate
//! stays a pure log so it can be hammered byte-level by the storage
//! fault injector in `relser-check`.
//!
//! ## Durability contract
//!
//! Under [`FsyncPolicy::Always`] every record is durable before the core
//! acknowledges the command that produced it, so a crash at *any* point
//! loses no acknowledged commit. Deferred policies (`EveryN`,
//! `Interval`, `Never`) trade a bounded window of recent acknowledgments
//! for throughput; the scanner's truncate-at-first-damage rule keeps the
//! recovered prefix consistent in every case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commit_log;
pub mod crc32;
pub mod reader;
pub mod record;
pub mod segment;
pub mod storage;
pub mod writer;

pub use commit_log::CommitLog;
pub use crc32::crc32;
pub use reader::{scan, ScanResult, Truncation};
pub use record::{
    Checkpoint, CheckpointEvent, EncodeError, SessionEntry, WalRecord, FRAME_OVERHEAD, MAGIC,
    MAX_PAYLOAD,
};
pub use segment::{
    CheckpointPolicy, DirSegmentStore, MemSegmentStore, MemSegmentsHandle, SegmentStats,
    SegmentStore, SegmentedWal,
};
pub use storage::{FileStorage, MemHandle, MemStorage, Storage};
pub use writer::{FsyncPolicy, WalStats, WalWriter};
