//! # relser-frame — the shared binary frame codec
//!
//! Both durable storage (`relser-wal`) and the wire protocol
//! (`relser-net`) carry self-delimiting binary payloads over media that
//! can tear and corrupt them: a file a crash truncates mid-write, a TCP
//! stream a buggy client fills with garbage. They use one framing
//! discipline, defined here, so the two implementations cannot drift:
//!
//! ```text
//! +------------+------------+------------------+
//! | len: u32LE | crc: u32LE | payload (len B)  |
//! +------------+------------+------------------+
//! ```
//!
//! `crc` is the CRC-32 (IEEE) of the payload. A frame is accepted only
//! if the whole frame is present, `len` is within the caller's bound,
//! and the checksum matches; every rejection is a typed [`FrameError`]
//! the caller maps onto its own recovery policy (the WAL truncates at
//! the damage, the wire front-end closes the one bad connection).
//!
//! Decoding is *total*: any byte slice yields either a frame or a typed
//! error, never a panic and never an allocation proportional to a
//! corrupt length prefix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;

pub use crc32::crc32;

use std::fmt;

/// Bytes of framing per frame (length prefix + checksum).
pub const FRAME_OVERHEAD: usize = 8;

/// Why a byte slice does not start with a valid frame.
///
/// The three variants deliberately distinguish *incomplete* (more bytes
/// may still arrive — a torn file tail, a partial TCP read) from
/// *corrupt* (no amount of further bytes can fix it): stream consumers
/// wait on the former and fail on the latter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The slice ends before the frame does: `have` bytes present,
    /// `need` required (header included). More input may complete it.
    Incomplete {
        /// Bytes of the frame actually present.
        have: usize,
        /// Bytes the frame needs in total (`FRAME_OVERHEAD` + payload).
        need: usize,
    },
    /// The length prefix is zero or beyond the caller's `max_payload` —
    /// the frame header itself is corrupt, and since the length can no
    /// longer be trusted there is no next-frame boundary to resume at.
    BadLength {
        /// The nonsensical length read.
        len: u32,
    },
    /// The payload checksum does not match (bit rot, a torn interior,
    /// or stream garbage that happened to have a plausible length).
    BadCrc,
}

impl FrameError {
    /// Could more input turn this into a valid frame? `true` only for
    /// [`FrameError::Incomplete`]; corrupt frames are terminal.
    pub fn is_incomplete(&self) -> bool {
        matches!(self, FrameError::Incomplete { .. })
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Incomplete { have, need } => {
                write!(f, "incomplete frame: {have} of {need} bytes")
            }
            FrameError::BadLength { len } => write!(f, "corrupt frame length prefix {len}"),
            FrameError::BadCrc => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// The payload would not fit the frame format (longer than the caller's
/// `max_payload` bound). Returned by [`finish_frame`] instead of letting
/// the `as u32` length cast wrap silently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// The payload size that did not fit.
    pub len: usize,
}

impl fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame payload of {} bytes exceeds the bound", self.len)
    }
}

impl std::error::Error for FrameTooLarge {}

/// Reserves space for a frame header at the end of `buf` and returns the
/// frame's start offset. The caller appends the payload bytes directly
/// to `buf` (no intermediate allocation), then calls [`finish_frame`].
#[inline]
pub fn begin_frame(buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    buf.extend_from_slice(&[0u8; FRAME_OVERHEAD]);
    start
}

/// Patches the length prefix and checksum of the frame begun at `start`
/// (everything appended since [`begin_frame`] is the payload). On
/// [`FrameTooLarge`], `buf` is restored to its pre-`begin_frame` length —
/// nothing partial is ever left behind. Returns the full frame length.
pub fn finish_frame(
    buf: &mut Vec<u8>,
    start: usize,
    max_payload: u32,
) -> Result<usize, FrameTooLarge> {
    debug_assert!(buf.len() >= start + FRAME_OVERHEAD, "frame not begun");
    let payload_len = buf.len() - start - FRAME_OVERHEAD;
    if payload_len == 0 || payload_len > max_payload as usize {
        buf.truncate(start);
        return Err(FrameTooLarge { len: payload_len });
    }
    let crc = crc32(&buf[start + FRAME_OVERHEAD..]);
    buf[start..start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    Ok(payload_len + FRAME_OVERHEAD)
}

/// Convenience one-shot encoder: frames `payload` onto the end of `buf`.
pub fn encode_frame(
    buf: &mut Vec<u8>,
    payload: &[u8],
    max_payload: u32,
) -> Result<usize, FrameTooLarge> {
    let start = begin_frame(buf);
    buf.extend_from_slice(payload);
    finish_frame(buf, start, max_payload)
}

/// A checksum-verified frame decoded from the head of a byte slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frame<'a> {
    /// The verified payload bytes.
    pub payload: &'a [u8],
    /// Total bytes the frame occupies (header + payload) — the offset
    /// of the next frame.
    pub consumed: usize,
}

/// Decodes the frame at the head of `bytes`, accepting payloads up to
/// `max_payload`. Total over arbitrary input: every outcome is a
/// [`Frame`] or a typed [`FrameError`]; never panics, never allocates.
pub fn decode_frame(bytes: &[u8], max_payload: u32) -> Result<Frame<'_>, FrameError> {
    if bytes.len() < FRAME_OVERHEAD {
        return Err(FrameError::Incomplete {
            have: bytes.len(),
            need: FRAME_OVERHEAD,
        });
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if len == 0 || len > max_payload {
        return Err(FrameError::BadLength { len });
    }
    let need = FRAME_OVERHEAD + len as usize;
    if bytes.len() < need {
        return Err(FrameError::Incomplete {
            have: bytes.len(),
            need,
        });
    }
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let payload = &bytes[FRAME_OVERHEAD..need];
    if crc32(payload) != crc {
        return Err(FrameError::BadCrc);
    }
    Ok(Frame {
        payload,
        consumed: need,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX: u32 = 1 << 16;

    #[test]
    fn roundtrip() {
        let mut buf = vec![0xEE; 3]; // pre-existing bytes are untouched
        let n = encode_frame(&mut buf, b"hello frame", MAX).unwrap();
        assert_eq!(n, FRAME_OVERHEAD + 11);
        assert_eq!(buf.len(), 3 + n);
        let frame = decode_frame(&buf[3..], MAX).unwrap();
        assert_eq!(frame.payload, b"hello frame");
        assert_eq!(frame.consumed, n);
    }

    #[test]
    fn incremental_build_roundtrips() {
        let mut buf = Vec::new();
        let start = begin_frame(&mut buf);
        buf.push(7);
        buf.extend_from_slice(&42u32.to_le_bytes());
        finish_frame(&mut buf, start, MAX).unwrap();
        let frame = decode_frame(&buf, MAX).unwrap();
        assert_eq!(frame.payload, &[7, 42, 0, 0, 0]);
        assert_eq!(frame.consumed, buf.len());
    }

    #[test]
    fn oversized_payload_is_refused_and_buffer_restored() {
        let mut buf = vec![0xAB; 5];
        let err = encode_frame(&mut buf, &vec![0u8; MAX as usize + 1], MAX).unwrap_err();
        assert_eq!(err.len, MAX as usize + 1);
        assert_eq!(buf, vec![0xAB; 5], "failed encode leaves no partial frame");
        // Empty payloads are refused too: len 0 is the corrupt-header
        // sentinel on the decode side.
        assert!(encode_frame(&mut buf, &[], MAX).is_err());
        assert_eq!(buf, vec![0xAB; 5]);
    }

    #[test]
    fn boundary_payload_encodes() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, &vec![9u8; MAX as usize], MAX).unwrap();
        assert_eq!(decode_frame(&buf, MAX).unwrap().payload.len(), MAX as usize);
    }

    #[test]
    fn truncations_are_incomplete_not_corrupt() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, b"payload!", MAX).unwrap();
        for cut in 0..buf.len() {
            let err = decode_frame(&buf[..cut], MAX).unwrap_err();
            assert!(err.is_incomplete(), "cut at {cut}: {err:?}");
            if let FrameError::Incomplete { have, need } = err {
                assert_eq!(have, cut);
                assert!(need > cut);
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, b"some payload bytes", MAX).unwrap();
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut corrupt = buf.clone();
                corrupt[byte] ^= 1 << bit;
                match decode_frame(&corrupt, MAX) {
                    Ok(frame) => panic!("flip at {byte}:{bit} accepted: {frame:?}"),
                    Err(
                        FrameError::BadCrc
                        | FrameError::BadLength { .. }
                        | FrameError::Incomplete { .. },
                    ) => {}
                }
            }
        }
    }

    #[test]
    fn bad_length_is_terminal_without_allocation() {
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 12]);
        assert_eq!(
            decode_frame(&bytes, MAX),
            Err(FrameError::BadLength { len: u32::MAX })
        );
        let mut zero = 0u32.to_le_bytes().to_vec();
        zero.extend_from_slice(&[0u8; 12]);
        assert_eq!(
            decode_frame(&zero, MAX),
            Err(FrameError::BadLength { len: 0 })
        );
    }
}
