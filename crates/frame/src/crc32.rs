//! CRC-32 (IEEE 802.3, the polynomial used by gzip/zlib/ethernet),
//! table-driven. The workspace has no crates.io access, so the checksum
//! is implemented here; it exists to detect torn and corrupted frames,
//! not to resist an adversary.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 of `bytes` (initial value `!0`, final xor `!0` — the
/// standard gzip convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let a = b"relative serializability".to_vec();
        let base = crc32(&a);
        for byte in 0..a.len() {
            for bit in 0..8 {
                let mut b = a.clone();
                b[byte] ^= 1 << bit;
                assert_ne!(crc32(&b), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
